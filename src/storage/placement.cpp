#include "storage/placement.h"

#include <algorithm>
#include <stdexcept>

namespace dare::storage {

namespace {

std::size_t live_count(const std::vector<bool>& alive) {
  std::size_t live = 0;
  for (bool a : alive) {
    if (a) ++live;
  }
  return live;
}

/// Draw a uniformly random live node not already in `chosen`.
/// Precondition: such a node exists.
NodeId draw_fresh_live(const std::vector<bool>& alive,
                       const std::vector<NodeId>& chosen, Rng& rng) {
  for (;;) {
    const auto cand = static_cast<NodeId>(rng.uniform_int(alive.size()));
    if (!alive[static_cast<std::size_t>(cand)]) continue;
    if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) {
      continue;
    }
    return cand;
  }
}

}  // namespace

std::vector<NodeId> RandomPlacement::place(int replication,
                                           const std::vector<bool>& alive,
                                           Rng& rng) {
  if (alive.size() != nodes_) {
    throw std::invalid_argument("RandomPlacement: alive vector size mismatch");
  }
  const std::size_t live = live_count(alive);
  if (live == 0) {
    throw std::logic_error("RandomPlacement: no live nodes");
  }
  const auto want = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(replication, 1)), live);
  std::vector<NodeId> chosen;
  chosen.reserve(want);
  while (chosen.size() < want) {
    chosen.push_back(draw_fresh_live(alive, chosen, rng));
  }
  return chosen;
}

std::vector<NodeId> RackAwarePlacement::place(int replication,
                                              const std::vector<bool>& alive,
                                              Rng& rng) {
  if (alive.size() != topology_->node_count()) {
    throw std::invalid_argument(
        "RackAwarePlacement: alive vector size mismatch");
  }
  const std::size_t live = live_count(alive);
  if (live == 0) {
    throw std::logic_error("RackAwarePlacement: no live nodes");
  }
  const auto want = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(replication, 1)), live);
  std::vector<NodeId> chosen;
  chosen.reserve(want);

  // First replica: anywhere.
  chosen.push_back(draw_fresh_live(alive, chosen, rng));

  // Second replica: prefer a different rack (bounded random search — with a
  // rack-skewed allocation an off-rack live node may not exist).
  if (chosen.size() < want) {
    NodeId second = kInvalidNode;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId cand = draw_fresh_live(alive, chosen, rng);
      if (!topology_->same_rack(chosen[0], cand)) {
        second = cand;
        break;
      }
    }
    if (second == kInvalidNode) second = draw_fresh_live(alive, chosen, rng);
    chosen.push_back(second);
  }

  // Third replica: prefer the first replica's rack (the write pipeline's
  // cheap local hop in real HDFS).
  if (chosen.size() < want) {
    NodeId third = kInvalidNode;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId cand = draw_fresh_live(alive, chosen, rng);
      if (topology_->same_rack(chosen[0], cand)) {
        third = cand;
        break;
      }
    }
    if (third == kInvalidNode) third = draw_fresh_live(alive, chosen, rng);
    chosen.push_back(third);
  }

  // Any further replicas: random.
  while (chosen.size() < want) {
    chosen.push_back(draw_fresh_live(alive, chosen, rng));
  }
  return chosen;
}

std::unique_ptr<PlacementPolicy> default_placement(
    std::size_t nodes, const net::Topology* topology) {
  if (topology != nullptr && topology->rack_count() > 1) {
    return std::make_unique<RackAwarePlacement>(*topology);
  }
  return std::make_unique<RandomPlacement>(nodes);
}

}  // namespace dare::storage
