#include "storage/datanode.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/invariant.h"
#include "net/measurement.h"
#include "obs/trace_collector.h"

namespace dare::storage {

DataNode::DataNode(NodeId id, const net::DiskProfile& disk, Rng& rng)
    : id_(id), disk_(disk), rng_(rng.fork()) {}

void DataNode::add_static_block(const BlockMeta& block) {
  if (static_index_.count(block.id)) {
    throw std::logic_error("DataNode: duplicate static block");
  }
  static_blocks_.push_back(block);
  static_index_.insert(block.id);
  static_bytes_ += block.size;
  // A fresh authoritative copy lifts a standing quarantine (re-replication
  // repaired the block here) and is clean by construction.
  quarantined_.erase(block.id);
  corrupt_.erase(block.id);
}

void DataNode::remove_static_block(BlockId block) {
  const auto it = static_index_.find(block);
  if (it == static_index_.end()) {
    throw std::logic_error("DataNode: removing a static block not held");
  }
  static_index_.erase(it);
  const auto vit = std::find_if(
      static_blocks_.begin(), static_blocks_.end(),
      [block](const BlockMeta& meta) { return meta.id == block; });
  DARE_INVARIANT(vit != static_blocks_.end(),
                 "DataNode: static index out of sync with block list for "
                 "block " + std::to_string(block));
  static_bytes_ -= vit->size;
  DARE_INVARIANT(static_bytes_ >= 0, "DataNode: static bytes went negative");
  static_blocks_.erase(vit);
  corrupt_.erase(block);
}

bool DataNode::insert_dynamic(const BlockMeta& block) {
  if (static_index_.count(block.id) || dynamic_.count(block.id) ||
      marked_.count(block.id)) {
    return false;
  }
  // Quarantined blocks are adoption-banned until a fresh authoritative copy
  // arrives (backstop; the policies check before calling).
  if (quarantined_.count(block.id)) return false;
  DARE_INVARIANT(block.size >= 0, "DataNode: dynamic block with negative size");
  dynamic_.emplace(block.id, block);
  dynamic_bytes_ += block.size;
  // No duplicate physical replica of a block, in any lifecycle state.
  DARE_INVARIANT(static_index_.count(block.id) + marked_.count(block.id) == 0,
                 "DataNode: duplicate replica of block " +
                     std::to_string(block.id));
  // The policy contract: a correctly implemented eviction scheme made room
  // *before* inserting, so live dynamic bytes never exceed the budget.
  DARE_INVARIANT(audited_budget_ < 0 || dynamic_bytes_ <= audited_budget_,
                 "DataNode: dynamic bytes " + std::to_string(dynamic_bytes_) +
                     " exceed replication budget " +
                     std::to_string(audited_budget_) + " on node " +
                     std::to_string(id_));
  pending_added_.push_back(block.id);
  ++dynamic_insertions_;
  return true;
}

bool DataNode::mark_for_deletion(BlockId block) {
  const auto it = dynamic_.find(block);
  if (it == dynamic_.end()) return false;
  dynamic_bytes_ -= it->second.size;
  DARE_INVARIANT(dynamic_bytes_ >= 0,
                 "DataNode: live dynamic bytes went negative");
  marked_.emplace(it->first, it->second);
  dynamic_.erase(it);
  pending_removed_.push_back(block);
  ++dynamic_evictions_;
  return true;
}

std::size_t DataNode::reclaim_marked() {
  const std::size_t n = marked_.size();
  // dare-lint: allow(unordered-iteration) -- erasing from an unordered set,
  // no observable order
  for (const auto& [id, _] : marked_) corrupt_.erase(id);
  marked_.clear();
  if (tracer_ != nullptr && n > 0) tracer_->disk_reclaim(id_, n);
  return n;
}

bool DataNode::corrupt_replica(BlockId block) {
  if (!has_any_copy(block)) return false;
  return corrupt_.insert(block).second;
}

bool DataNode::is_corrupt(BlockId block) const {
  return corrupt_.count(block) != 0;
}

bool DataNode::quarantine_replica(BlockId block) {
  bool dropped = false;
  if (static_index_.count(block) != 0) {
    remove_static_block(block);
    dropped = true;
  } else if (const auto it = dynamic_.find(block); it != dynamic_.end()) {
    dynamic_bytes_ -= it->second.size;
    DARE_INVARIANT(dynamic_bytes_ >= 0,
                   "DataNode: live dynamic bytes went negative");
    dynamic_.erase(it);
    dropped = true;
  } else if (marked_.erase(block) != 0) {
    dropped = true;
  }
  if (!dropped) return false;
  corrupt_.erase(block);
  quarantined_.insert(block);
  return true;
}

bool DataNode::is_quarantined(BlockId block) const {
  return quarantined_.count(block) != 0;
}

std::vector<BlockId> DataNode::corrupt_blocks() const {
  std::vector<BlockId> out(corrupt_.begin(), corrupt_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> DataNode::dynamic_blocks() const {
  std::vector<BlockId> out;
  out.reserve(dynamic_.size());
  // dare-lint: allow(unordered-iteration) -- sorted before returning
  for (const auto& [id, _] : dynamic_) out.push_back(id);
  // Sorted so downstream consumers (e.g. the popularity-index float sums in
  // Cluster::collect_results) see a platform-independent order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockMeta> DataNode::dynamic_block_metas() const {
  std::vector<BlockMeta> out;
  out.reserve(dynamic_.size());
  // dare-lint: allow(unordered-iteration) -- sorted before returning
  for (const auto& [_, meta] : dynamic_) out.push_back(meta);
  std::sort(out.begin(), out.end(),
            [](const BlockMeta& a, const BlockMeta& b) { return a.id < b.id; });
  return out;
}

void DataNode::wipe_disk() {
  static_blocks_.clear();
  static_index_.clear();
  static_bytes_ = 0;
  dynamic_.clear();
  marked_.clear();
  dynamic_bytes_ = 0;
  corrupt_.clear();
  quarantined_.clear();
  pending_added_.clear();
  pending_removed_.clear();
}

void DataNode::clear_pending_reports() {
  pending_added_.clear();
  pending_removed_.clear();
}

bool DataNode::has_visible_block(BlockId block) const {
  return static_index_.count(block) != 0 || dynamic_.count(block) != 0;
}

bool DataNode::has_static_block(BlockId block) const {
  return static_index_.count(block) != 0;
}

bool DataNode::has_dynamic_block(BlockId block) const {
  return dynamic_.count(block) != 0;
}

bool DataNode::has_any_copy(BlockId block) const {
  return static_index_.count(block) != 0 || dynamic_.count(block) != 0 ||
         marked_.count(block) != 0;
}

DataNode::Report DataNode::drain_report() {
  Report report;
  // Cancel out blocks that were both added and removed since the last
  // heartbeat: the name node never needs to learn about them.
  std::unordered_set<BlockId> removed(pending_removed_.begin(),
                                      pending_removed_.end());
  for (BlockId b : pending_added_) {
    if (removed.count(b)) {
      removed.erase(b);
    } else {
      report.added.push_back(b);
    }
  }
  report.removed.assign(removed.begin(), removed.end());
  std::sort(report.removed.begin(), report.removed.end());
  pending_added_.clear();
  pending_removed_.clear();
  return report;
}

double DataNode::sample_disk_mbps() {
  return net::sample_disk_mbps(disk_, rng_);
}

SimDuration DataNode::read_duration(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("DataNode: negative bytes");
  const double mbps = sample_disk_mbps();
  const double seconds =
      static_cast<double>(bytes) / mb_per_sec(mbps);
  return from_seconds(seconds);
}

}  // namespace dare::storage
