// A data node: block storage plus the disk model, including the
// dynamically-replicated block area that DARE manages.
//
// Lifecycle of a dynamic replica (paper Section IV):
//   insert_dynamic()          — the block just read remotely is written to
//                               the local store; counts as one disk write
//                               (the thrashing metric);
//   [next heartbeat]          — drain_report() carries the addition to the
//                               name node, which makes it schedulable;
//   mark_for_deletion()       — the eviction policy tombstones it; it stops
//                               being visible/usable immediately and its
//                               bytes stop counting against the budget;
//   reclaim_marked()          — lazy physical deletion at idle time; the
//                               next heartbeat reports the removal.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/profile.h"
#include "storage/block.h"

namespace dare::obs {
class TraceCollector;
}

namespace dare::storage {

class DataNode {
 public:
  DataNode(NodeId id, const net::DiskProfile& disk, Rng& rng);

  NodeId id() const { return id_; }

  /// Attach the structured tracer (null = disabled, the default; borrowed,
  /// must outlive the node). Emits physical-disk events (lazy reclaim).
  void set_tracer(obs::TraceCollector* tracer) { tracer_ = tracer; }

  /// --- static (placement-time) replicas -------------------------------
  void add_static_block(const BlockMeta& block);
  /// Drop an authoritative copy (rejoin reconciliation pruned it as
  /// surplus). Throws std::logic_error if the block is not held statically.
  void remove_static_block(BlockId block);
  Bytes static_bytes() const { return static_bytes_; }
  const std::vector<BlockMeta>& static_blocks() const {
    return static_blocks_;
  }

  /// --- dynamic replicas (DARE-managed) --------------------------------
  /// Declare the replication budget this node's policy enforces. Purely an
  /// auditing hook: once set, the invariant layer checks that live dynamic
  /// bytes never exceed it after any insertion. Negative clears the audit.
  void set_audited_budget(Bytes budget_bytes) { audited_budget_ = budget_bytes; }
  Bytes audited_budget() const { return audited_budget_; }

  /// Insert a dynamically replicated block. Returns false (no-op) if the
  /// block is already stored here, statically or dynamically (including
  /// marked-for-deletion dynamic replicas, which still occupy disk).
  bool insert_dynamic(const BlockMeta& block);

  /// Tombstone a dynamic replica: immediately invisible, budget released,
  /// physical bytes reclaimed later. Returns false if not a live dynamic
  /// replica.
  bool mark_for_deletion(BlockId block);

  /// Physically delete marked replicas (lazy deletion). Returns how many
  /// blocks were reclaimed.
  std::size_t reclaim_marked();

  /// Bytes held by live (unmarked) dynamic replicas — the quantity the
  /// replication budget constrains.
  Bytes dynamic_bytes() const { return dynamic_bytes_; }

  /// Live dynamic replica block ids, sorted by id (deterministic across
  /// platforms and hash-map implementations).
  std::vector<BlockId> dynamic_blocks() const;

  /// Full metadata of the live dynamic replicas, sorted by block id. Used
  /// by rejoin reconciliation and by policies rebuilding their state from
  /// the surviving disk contents.
  std::vector<BlockMeta> dynamic_block_metas() const;

  std::size_t marked_count() const { return marked_.size(); }

  /// --- data integrity ---------------------------------------------------
  /// Silently flip a physical copy (static, dynamic, or tombstoned) to
  /// corrupt; the damage surfaces when a read verifies its checksum.
  /// Returns false if no physical copy is held or it is already corrupt.
  bool corrupt_replica(BlockId block);

  /// Is the held copy of `block` corrupt? (false when not held at all)
  bool is_corrupt(BlockId block) const;

  /// Physically drop the local copy of `block` (any lifecycle state) after
  /// the NameNode quarantined the replica, and remember the quarantine so
  /// the replication policy refuses to re-adopt the block until a fresh
  /// authoritative copy arrives via add_static_block. Does NOT queue a
  /// heartbeat delta: the NameNode already removed the location when it
  /// processed the bad-block report. Returns false if no copy was held.
  bool quarantine_replica(BlockId block);

  /// Is `block` locally quarantined (dynamic adoption banned)?
  bool is_quarantined(BlockId block) const;

  /// Corrupt block ids, sorted. Used by rejoin reconciliation to surface
  /// damage that accrued while the node was offline.
  std::vector<BlockId> corrupt_blocks() const;

  /// --- failure handling -------------------------------------------------
  /// The node's disk is lost (permanent failure): every block — static,
  /// dynamic, tombstoned — and all pending report deltas vanish. The
  /// instrumentation counters survive (they describe history, not state).
  void wipe_disk();

  /// Drop the incremental heartbeat deltas without applying them; a full
  /// block report at rejoin supersedes anything queued before the crash.
  void clear_pending_reports();

  /// --- queries ---------------------------------------------------------
  /// Does a map task on this node have local access to `block`?
  /// (static replica, or live dynamic replica).
  bool has_visible_block(BlockId block) const;
  bool has_static_block(BlockId block) const;
  bool has_dynamic_block(BlockId block) const;
  /// Any physical copy at all, including tombstoned (marked) dynamic
  /// replicas — used by the re-replication pipeline to pick destinations.
  bool has_any_copy(BlockId block) const;

  /// --- heartbeat -------------------------------------------------------
  struct Report {
    std::vector<BlockId> added;    ///< dynamic replicas created since last HB
    std::vector<BlockId> removed;  ///< dynamic replicas deleted since last HB
  };
  /// Drain and return the pending report (cleared afterwards). A block
  /// inserted and deleted within one heartbeat interval cancels out.
  Report drain_report();

  /// --- disk model ------------------------------------------------------
  /// One sampled sequential-read bandwidth figure, MB/s.
  double sample_disk_mbps();
  /// Duration to read `bytes` sequentially from local disk.
  SimDuration read_duration(Bytes bytes);

  /// --- instrumentation -------------------------------------------------
  /// Total dynamic-replica insertions ever (== extra disk writes incurred;
  /// the paper's thrashing comparison metric).
  std::uint64_t dynamic_insertions() const { return dynamic_insertions_; }
  std::uint64_t dynamic_evictions() const { return dynamic_evictions_; }

 private:
  NodeId id_;
  net::DiskProfile disk_;
  Rng rng_;
  obs::TraceCollector* tracer_ = nullptr;

  std::vector<BlockMeta> static_blocks_;
  std::unordered_set<BlockId> static_index_;
  Bytes static_bytes_ = 0;

  /// Slab-backed: the DARE policies insert and evict dynamic replicas at
  /// decision rate, and the insert/evict/reclaim cycle recycles the same
  /// handful of arena nodes instead of hammering the heap.
  using ReplicaMap = std::unordered_map<
      BlockId, BlockMeta, std::hash<BlockId>, std::equal_to<BlockId>,
      common::SlabAllocator<std::pair<const BlockId, BlockMeta>>>;
  ReplicaMap dynamic_;  // live replicas
  ReplicaMap marked_;   // tombstoned, on disk
  Bytes dynamic_bytes_ = 0;
  Bytes audited_budget_ = -1;  // < 0: no budget audit installed

  std::unordered_set<BlockId> corrupt_;      // physical copies with bad checksums
  std::unordered_set<BlockId> quarantined_;  // adoption-banned after bad-block report

  std::vector<BlockId> pending_added_;
  std::vector<BlockId> pending_removed_;

  std::uint64_t dynamic_insertions_ = 0;
  std::uint64_t dynamic_evictions_ = 0;
};

}  // namespace dare::storage
