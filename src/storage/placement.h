// Pluggable static block-placement policies for the name node.
//
// HDFS chooses where the initial `replication` copies of each block live;
// the paper's evaluation runs on the default policy (random distinct nodes,
// rack-aware when the cluster spans racks). Factoring placement behind an
// interface lets experiments isolate *placement* effects from *replication*
// effects — e.g. Fig. 11's popularity-uniformity baseline is a property of
// the placement policy alone.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"

namespace dare::storage {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose distinct nodes for `replication` copies of one block.
  /// `alive(node)` filters placement targets; implementations must return
  /// between 1 and min(replication, live nodes) distinct live nodes.
  virtual std::vector<NodeId> place(int replication,
                                    const std::vector<bool>& alive,
                                    Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// Uniformly random distinct live nodes; no rack awareness.
class RandomPlacement final : public PlacementPolicy {
 public:
  explicit RandomPlacement(std::size_t nodes) : nodes_(nodes) {}

  std::vector<NodeId> place(int replication, const std::vector<bool>& alive,
                            Rng& rng) override;
  std::string name() const override { return "random"; }

 private:
  std::size_t nodes_;
};

/// HDFS's default policy, simplified to the simulator's abstractions:
/// first replica on a random node, second on a different rack when the
/// topology has one (availability against rack failure), third back in the
/// first replica's rack (cheap pipeline hop), extras random. Degenerates to
/// RandomPlacement on single-rack topologies.
class RackAwarePlacement final : public PlacementPolicy {
 public:
  /// `topology` must outlive the policy.
  explicit RackAwarePlacement(const net::Topology& topology)
      : topology_(&topology) {}

  std::vector<NodeId> place(int replication, const std::vector<bool>& alive,
                            Rng& rng) override;
  std::string name() const override { return "rack-aware"; }

 private:
  const net::Topology* topology_;
};

/// Factory used by the name node when no policy is injected.
std::unique_ptr<PlacementPolicy> default_placement(
    std::size_t nodes, const net::Topology* topology);

}  // namespace dare::storage
