// The name node: metadata-only master of the simulated HDFS.
//
// Responsibilities mirrored from HDFS + the paper's modifications:
//  * file -> blocks -> replica locations map;
//  * static placement of `replication` copies on distinct nodes, rack-aware
//    when the topology has more than one rack (at least two racks covered
//    when possible);
//  * tolerating over-replicated blocks: dynamic replicas registered via
//    heartbeat (`DNA_DYNREPL` in the paper's patch) are *added* to the block
//    map rather than scheduled for excess-replica deletion, so the scheduler
//    and all file-system users see them;
//  * removal reports drop dynamic replicas from the map.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"
#include "storage/block.h"
#include "storage/placement.h"

namespace dare::obs {
class TraceCollector;
}

namespace dare::storage {

class NameNode {
 public:
  /// `topology` may be null (placement then ignores racks); if non-null it
  /// must outlive the name node. `data_nodes` is the number of slave nodes
  /// available for placement, identified as NodeId 0..data_nodes-1.
  /// `placement` overrides the default policy (rack-aware when a multi-rack
  /// topology is given, random otherwise).
  NameNode(std::size_t data_nodes, const net::Topology* topology, Rng& rng,
           std::unique_ptr<PlacementPolicy> placement = nullptr);

  /// Name of the placement policy in effect.
  const std::string& placement_name() const { return placement_name_; }

  /// Replica-delta observer: called once per actual mutation of a block's
  /// visible location list — static placement at create time, dynamic
  /// replicas registered/evicted via heartbeat, node death dropping every
  /// replica on the node, rejoin re-adoption, and repair copies.
  /// `added` is true when `node` gained a visible replica of `block`,
  /// false when it lost one. Exactly-once: a report that changes nothing
  /// (duplicate add, missing remove) does not fire. The locality index
  /// mirrors the location map from this stream.
  using ReplicaObserver = std::function<void(BlockId, NodeId, bool added)>;

  /// Install the observer (replacing any previous one). Pass before files
  /// are created so the mirror sees the initial placements.
  void set_replica_observer(ReplicaObserver observer) {
    replica_observer_ = std::move(observer);
  }

  /// Attach the structured tracer (null = disabled, the default; borrowed,
  /// must outlive the name node). Emits heartbeat-processing, failure-
  /// declaration, rejoin, and repair events.
  void set_tracer(obs::TraceCollector* tracer) { tracer_ = tracer; }

  /// Create a file of `num_blocks` blocks and place `replication` static
  /// replicas of each. Returns the new file's id.
  FileId create_file(const std::string& name, std::size_t num_blocks,
                     Bytes block_size, int replication, SimTime now);

  const FileInfo& file(FileId id) const;
  const BlockMeta& block(BlockId id) const;
  bool has_file(FileId id) const;
  std::size_t file_count() const { return files_.size(); }
  std::size_t block_count() const { return blocks_.size(); }

  /// All nodes currently known to hold a visible replica of `block`
  /// (static placements plus heartbeat-reported dynamic replicas).
  const std::vector<NodeId>& locations(BlockId block) const;

  /// Static placements chosen at create time (stable; used by the cluster
  /// glue to populate data nodes).
  const std::vector<NodeId>& static_locations(BlockId block) const;

  /// Heartbeat processing: register / unregister dynamic replicas.
  /// Unknown blocks throw; duplicate adds and missing removes are ignored
  /// (heartbeats may legitimately repeat after races in real HDFS).
  void report_dynamic_added(NodeId node, const std::vector<BlockId>& blocks);
  void report_dynamic_removed(NodeId node, const std::vector<BlockId>& blocks);

  /// Replica count visible to the scheduler.
  std::size_t replica_count(BlockId block) const;

  /// --- failure handling --------------------------------------------------
  /// Liveness tracking input: a data node checked in at `now`. The name node
  /// never observes deaths directly — it only ever *infers* them from the
  /// heartbeats that stop arriving (see overdue_nodes).
  void heartbeat_received(NodeId node, SimTime now);

  /// Last recorded heartbeat time of a node (0 before the first one).
  SimTime last_heartbeat(NodeId node) const;

  /// Nodes currently considered alive whose last heartbeat is *strictly*
  /// older than `timeout` (a live node heartbeating every interval is never
  /// flagged at timeout == k * interval). Ascending node-id order.
  std::vector<NodeId> overdue_nodes(SimTime now, SimDuration timeout) const;

  /// A data node was declared dead: drop it from every block's location
  /// list (static and dynamic replicas alike — the disk is unreachable).
  /// Returns the blocks that are now under-replicated (fewer authoritative
  /// replicas than their file's replication factor), in block-id order.
  /// Idempotent: declaring an already-dead node returns an empty list.
  std::vector<BlockId> node_failed(NodeId node);

  /// Whether a node has been declared failed.
  bool is_node_alive(NodeId node) const;
  std::size_t live_node_count() const;

  /// Result of reconciling a rejoining node's full block report.
  struct RejoinReport {
    std::size_t adopted_static = 0;   ///< stale authoritative copies kept
    std::size_t adopted_dynamic = 0;  ///< stale DARE replicas kept
    /// Stale authoritative copies discarded because re-replication already
    /// restored the block's factor while the node was down (the node must
    /// delete these from disk).
    std::vector<BlockId> pruned_static;
  };

  /// A previously-declared-dead node re-registered and sent a full block
  /// report (`static_blocks` / `dynamic_blocks`: the ids it still holds).
  /// Marks the node alive and re-adopts each reported replica unless the
  /// block is already at (or above) its replication factor, in which case
  /// the stale copy is pruned. Throws std::logic_error if the node was
  /// never declared dead.
  RejoinReport node_rejoined(NodeId node,
                             const std::vector<BlockId>& static_blocks,
                             const std::vector<BlockId>& dynamic_blocks);

  /// Whether `block` has fewer authoritative (static) replicas than its
  /// file's replication factor, clamped to what the live cluster can hold.
  /// The re-replication pipeline uses this to skip repairs that a node
  /// rejoin has already made redundant.
  bool is_under_replicated(BlockId block) const;

  /// Register a repair copy created by the re-replication pipeline; the
  /// copy is authoritative (counted as static). Returns false if the node
  /// already holds the block.
  bool add_repair_replica(BlockId block, NodeId node);

  /// --- data integrity ----------------------------------------------------
  /// Outcome of a Hadoop-style reportBadBlock.
  enum class BadBlockResult {
    kQuarantined,  ///< replica removed from the visible location list
    kLastReplica,  ///< only copy left — kept (corrupt beats lost)
    kStaleReport,  ///< the node no longer holds a visible replica
  };

  /// A reader found `node`'s replica of `block` failing its checksum.
  /// Quarantines the replica: drops it from the visible location list (and
  /// from the authoritative set if it was a static holder), firing the
  /// replica observer so the locality index and schedulers never offer it
  /// again. Last-good-replica protection: when the corrupt copy is the
  /// block's only remaining replica, nothing is mutated and kLastReplica is
  /// returned — a corrupt copy is still better than no copy. Unknown blocks
  /// throw std::out_of_range.
  BadBlockResult report_bad_block(BlockId block, NodeId node);

  /// Blocks with no live replica at all (data loss).
  std::size_t lost_block_count() const;

  /// Total dynamic replicas currently registered (across all blocks).
  std::size_t dynamic_replica_count() const { return dynamic_replicas_; }

  /// All file ids in creation order.
  std::vector<FileId> all_files() const;

 private:
  void notify_replica(BlockId block, NodeId node, bool added) const {
    if (replica_observer_) replica_observer_(block, node, added);
  }

  ReplicaObserver replica_observer_;
  obs::TraceCollector* tracer_ = nullptr;
  std::size_t data_nodes_;
  const net::Topology* topology_;
  Rng rng_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::string placement_name_;
  /// Metadata maps are slab-backed: a hyperscale catalog holds 10^5..10^6
  /// block records, and packing their nodes into arena chunks keeps them
  /// cache-adjacent (they are created together and scanned together) while
  /// cutting a heap allocation per record.
  template <typename K, typename V>
  using MetaMap =
      std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                         common::SlabAllocator<std::pair<const K, V>>>;
  MetaMap<FileId, FileInfo> files_;
  MetaMap<BlockId, BlockMeta> blocks_;
  MetaMap<BlockId, std::vector<NodeId>> static_locations_;
  MetaMap<BlockId, std::vector<NodeId>> locations_;
  std::vector<FileId> file_order_;
  std::vector<bool> node_alive_;
  std::vector<SimTime> last_heartbeat_;
  FileId next_file_ = 0;
  BlockId next_block_ = 0;
  std::size_t dynamic_replicas_ = 0;
};

}  // namespace dare::storage
