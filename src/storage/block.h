// Block and file metadata for the simulated HDFS.
//
// As in HDFS, a file is a sequence of fixed-size blocks; the block is the
// unit of replication and of map-task input. The paper's patch adds
// file-membership information to INodes so the eviction policy can avoid
// evicting a block of the same file as the one being inserted — `BlockMeta`
// therefore always carries its owning `FileId`.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace dare::storage {

struct BlockMeta {
  BlockId id = kInvalidBlock;
  FileId file = kInvalidFile;
  Bytes size = 0;
};

struct FileInfo {
  FileId id = kInvalidFile;
  std::string name;
  std::vector<BlockId> blocks;
  Bytes block_size = 0;
  int replication = 3;
  SimTime created = 0;

  Bytes total_bytes() const {
    return block_size * static_cast<Bytes>(blocks.size());
  }
};

}  // namespace dare::storage
