#include "storage/namenode.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/invariant.h"
#include "obs/trace_collector.h"

namespace dare::storage {

NameNode::NameNode(std::size_t data_nodes, const net::Topology* topology,
                   Rng& rng, std::unique_ptr<PlacementPolicy> placement)
    : data_nodes_(data_nodes),
      topology_(topology),
      rng_(rng.fork()),
      placement_(placement ? std::move(placement)
                           : default_placement(data_nodes, topology)),
      node_alive_(data_nodes, true),
      last_heartbeat_(data_nodes, 0) {
  if (data_nodes_ == 0) {
    throw std::invalid_argument("NameNode: need at least one data node");
  }
  placement_name_ = placement_->name();
}

FileId NameNode::create_file(const std::string& name, std::size_t num_blocks,
                             Bytes block_size, int replication, SimTime now) {
  if (num_blocks == 0) {
    throw std::invalid_argument("NameNode: file needs at least one block");
  }
  if (block_size <= 0) {
    throw std::invalid_argument("NameNode: block size must be positive");
  }
  FileInfo info;
  info.id = next_file_++;
  info.name = name;
  info.block_size = block_size;
  info.replication = replication;
  info.created = now;
  info.blocks.reserve(num_blocks);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    const BlockId bid = next_block_++;
    blocks_[bid] = BlockMeta{bid, info.id, block_size};
    auto placement = placement_->place(replication, node_alive_, rng_);
    // Placement contract: distinct live nodes only.
    for (std::size_t a = 0; a < placement.size(); ++a) {
      DARE_INVARIANT(placement[a] >= 0 &&
                         static_cast<std::size_t>(placement[a]) < data_nodes_,
                     "NameNode: placement chose an out-of-range node");
      DARE_INVARIANT(node_alive_[static_cast<std::size_t>(placement[a])],
                     "NameNode: placement chose a dead node");
      for (std::size_t b = a + 1; b < placement.size(); ++b) {
        DARE_INVARIANT(placement[a] != placement[b],
                       "NameNode: placement repeated node " +
                           std::to_string(placement[a]) + " for block " +
                           std::to_string(bid));
      }
    }
    locations_[bid] = placement;
    for (NodeId n : placement) notify_replica(bid, n, /*added=*/true);
    static_locations_[bid] = std::move(placement);
    info.blocks.push_back(bid);
  }
  const FileId fid = info.id;
  file_order_.push_back(fid);
  files_[fid] = std::move(info);
  return fid;
}

const FileInfo& NameNode::file(FileId id) const {
  const auto it = files_.find(id);
  if (it == files_.end()) throw std::out_of_range("NameNode: unknown file");
  return it->second;
}

bool NameNode::has_file(FileId id) const { return files_.count(id) != 0; }

const BlockMeta& NameNode::block(BlockId id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) throw std::out_of_range("NameNode: unknown block");
  return it->second;
}

const std::vector<NodeId>& NameNode::locations(BlockId block) const {
  const auto it = locations_.find(block);
  if (it == locations_.end()) {
    throw std::out_of_range("NameNode: unknown block");
  }
  return it->second;
}

const std::vector<NodeId>& NameNode::static_locations(BlockId block) const {
  const auto it = static_locations_.find(block);
  if (it == static_locations_.end()) {
    throw std::out_of_range("NameNode: unknown block");
  }
  return it->second;
}

void NameNode::report_dynamic_added(NodeId node,
                                    const std::vector<BlockId>& blocks) {
  for (BlockId b : blocks) {
    auto it = locations_.find(b);
    if (it == locations_.end()) {
      throw std::out_of_range("NameNode: dynamic add for unknown block");
    }
    auto& locs = it->second;
    if (std::find(locs.begin(), locs.end(), node) == locs.end()) {
      locs.push_back(node);
      ++dynamic_replicas_;
      DARE_INVARIANT(
          std::count(locs.begin(), locs.end(), node) == 1,
          "NameNode: duplicate location entry after dynamic add of block " +
              std::to_string(b));
      notify_replica(b, node, /*added=*/true);
    }
  }
}

void NameNode::report_dynamic_removed(NodeId node,
                                      const std::vector<BlockId>& blocks) {
  for (BlockId b : blocks) {
    auto it = locations_.find(b);
    if (it == locations_.end()) {
      throw std::out_of_range("NameNode: dynamic remove for unknown block");
    }
    auto& locs = it->second;
    const auto pos = std::find(locs.begin(), locs.end(), node);
    if (pos == locs.end()) continue;
    // Never drop a static placement: removal reports only concern dynamic
    // replicas, and a node is a static holder iff it is in static_locations_.
    const auto& statics = static_locations_.at(b);
    if (std::find(statics.begin(), statics.end(), node) != statics.end()) {
      continue;
    }
    DARE_INVARIANT(dynamic_replicas_ > 0,
                   "NameNode: dynamic replica counter underflow removing "
                   "block " + std::to_string(b));
    locs.erase(pos);
    --dynamic_replicas_;
    notify_replica(b, node, /*added=*/false);
  }
}

std::size_t NameNode::replica_count(BlockId block) const {
  return locations(block).size();
}

std::vector<FileId> NameNode::all_files() const { return file_order_; }

bool NameNode::is_node_alive(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_alive_.size()) {
    throw std::out_of_range("NameNode: bad node id");
  }
  return node_alive_[static_cast<std::size_t>(node)];
}

std::size_t NameNode::live_node_count() const {
  std::size_t live = 0;
  for (bool alive : node_alive_) {
    if (alive) ++live;
  }
  return live;
}

void NameNode::heartbeat_received(NodeId node, SimTime now) {
  if (node < 0 || static_cast<std::size_t>(node) >= node_alive_.size()) {
    throw std::out_of_range("NameNode: bad node id");
  }
  DARE_INVARIANT(node_alive_[static_cast<std::size_t>(node)],
                 "NameNode: heartbeat from a node declared dead (" +
                     std::to_string(node) + ") without a rejoin");
  last_heartbeat_[static_cast<std::size_t>(node)] = now;
  if (tracer_ != nullptr) tracer_->heartbeat(node);
}

SimTime NameNode::last_heartbeat(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_alive_.size()) {
    throw std::out_of_range("NameNode: bad node id");
  }
  return last_heartbeat_[static_cast<std::size_t>(node)];
}

std::vector<NodeId> NameNode::overdue_nodes(SimTime now,
                                            SimDuration timeout) const {
  std::vector<NodeId> overdue;
  for (std::size_t n = 0; n < node_alive_.size(); ++n) {
    if (!node_alive_[n]) continue;
    if (now - last_heartbeat_[n] > timeout) {
      overdue.push_back(static_cast<NodeId>(n));
    }
  }
  return overdue;
}

std::vector<BlockId> NameNode::node_failed(NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= node_alive_.size()) {
    throw std::out_of_range("NameNode: bad node id");
  }
  // Idempotent: a node can be reported dead only once per life (a scripted
  // kill racing a stochastic one, or a repeated declaration, is a no-op).
  if (!node_alive_[static_cast<std::size_t>(node)]) return {};
  node_alive_[static_cast<std::size_t>(node)] = false;
  if (tracer_ != nullptr) tracer_->node_declared_dead(node);

  std::vector<BlockId> under_replicated;
  // dare-lint: allow(unordered-iteration) -- per-block updates commute and
  // the under-replicated list is sorted before returning.
  for (auto& [bid, locs] : locations_) {
    const auto pos = std::find(locs.begin(), locs.end(), node);
    if (pos == locs.end()) continue;
    locs.erase(pos);
    notify_replica(bid, node, /*added=*/false);
    auto& statics = static_locations_.at(bid);
    const auto spos = std::find(statics.begin(), statics.end(), node);
    if (spos != statics.end()) {
      statics.erase(spos);
    } else {
      DARE_INVARIANT(dynamic_replicas_ > 0,
                     "NameNode: dynamic replica counter underflow on node "
                     "failure");
      --dynamic_replicas_;  // it was a DARE replica
    }
    // Under-replicated relative to the file's configured factor (clamped to
    // what the surviving cluster can hold).
    const auto& info = files_.at(blocks_.at(bid).file);
    const auto target = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(info.replication, 1)),
        live_node_count());
    if (statics.size() < target) under_replicated.push_back(bid);
  }
  std::sort(under_replicated.begin(), under_replicated.end());
  return under_replicated;
}

bool NameNode::add_repair_replica(BlockId block, NodeId node) {
  if (!is_node_alive(node)) {
    throw std::logic_error("NameNode: repair replica on a dead node");
  }
  auto& locs = locations_.at(block);
  if (std::find(locs.begin(), locs.end(), node) != locs.end()) return false;
  locs.push_back(node);
  static_locations_.at(block).push_back(node);
  notify_replica(block, node, /*added=*/true);
  if (tracer_ != nullptr) tracer_->block_repaired(node, block);
  return true;
}

NameNode::RejoinReport NameNode::node_rejoined(
    NodeId node, const std::vector<BlockId>& static_blocks,
    const std::vector<BlockId>& dynamic_blocks) {
  if (node < 0 || static_cast<std::size_t>(node) >= node_alive_.size()) {
    throw std::out_of_range("NameNode: bad node id");
  }
  if (node_alive_[static_cast<std::size_t>(node)]) {
    throw std::logic_error("NameNode: rejoin of a node never declared dead");
  }
  node_alive_[static_cast<std::size_t>(node)] = true;
  if (tracer_ != nullptr) {
    tracer_->node_rejoined(node, /*full_reregistration=*/true);
  }

  RejoinReport report;
  for (BlockId b : static_blocks) {
    auto& locs = locations_.at(b);
    auto& statics = static_locations_.at(b);
    if (std::find(statics.begin(), statics.end(), node) != statics.end()) {
      continue;  // already authoritative here (repeated report)
    }
    const auto& info = files_.at(blocks_.at(b).file);
    const auto target =
        static_cast<std::size_t>(std::max(info.replication, 1));
    if (statics.size() < target) {
      // The stale copy is still needed: re-adopt it as authoritative. This
      // can resurrect a block whose every other replica was lost.
      statics.push_back(node);
      if (std::find(locs.begin(), locs.end(), node) == locs.end()) {
        locs.push_back(node);
        notify_replica(b, node, /*added=*/true);
      }
      ++report.adopted_static;
    } else {
      // Re-replication won the race while the node was down; the block is
      // already back at factor, so the stale copy is surplus.
      report.pruned_static.push_back(b);
    }
  }
  for (BlockId b : dynamic_blocks) {
    auto& locs = locations_.at(b);
    if (std::find(locs.begin(), locs.end(), node) == locs.end()) {
      // DARE replicas are over-replication by design: always re-adopt (the
      // policy's budget still bounds them on the node).
      locs.push_back(node);
      ++dynamic_replicas_;
      ++report.adopted_dynamic;
      notify_replica(b, node, /*added=*/true);
    }
  }
  return report;
}

bool NameNode::is_under_replicated(BlockId block) const {
  const auto it = static_locations_.find(block);
  if (it == static_locations_.end()) {
    throw std::out_of_range("NameNode: unknown block");
  }
  const auto& info = files_.at(blocks_.at(block).file);
  const auto target = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(info.replication, 1)),
      live_node_count());
  return it->second.size() < target;
}

NameNode::BadBlockResult NameNode::report_bad_block(BlockId block,
                                                    NodeId node) {
  auto it = locations_.find(block);
  if (it == locations_.end()) {
    throw std::out_of_range("NameNode: bad-block report for unknown block");
  }
  auto& locs = it->second;
  const auto pos = std::find(locs.begin(), locs.end(), node);
  if (pos == locs.end()) {
    // The location is already gone (node died, replica evicted, or a repeat
    // report) — nothing to quarantine.
    return BadBlockResult::kStaleReport;
  }
  if (locs.size() == 1) {
    // Last-replica protection: never delete the only remaining copy, corrupt
    // or not. The caller surfaces this as a data-loss event.
    return BadBlockResult::kLastReplica;
  }
  locs.erase(pos);
  auto& statics = static_locations_.at(block);
  const auto spos = std::find(statics.begin(), statics.end(), node);
  if (spos != statics.end()) {
    statics.erase(spos);
  } else {
    DARE_INVARIANT(dynamic_replicas_ > 0,
                   "NameNode: dynamic replica counter underflow quarantining "
                   "block " + std::to_string(block));
    --dynamic_replicas_;  // the corrupt copy was a DARE replica
  }
  notify_replica(block, node, /*added=*/false);
  if (tracer_ != nullptr) tracer_->replica_quarantined(node, block);
  return BadBlockResult::kQuarantined;
}

std::size_t NameNode::lost_block_count() const {
  std::size_t lost = 0;
  // dare-lint: allow(unordered-iteration) -- order-independent count
  for (const auto& [_, locs] : locations_) {
    if (locs.empty()) ++lost;
  }
  return lost;
}

}  // namespace dare::storage
