#include "metrics/availability.h"

#include <cmath>
#include <stdexcept>

namespace dare::metrics {

namespace {

/// log C(n, k) via lgamma; exact enough for probabilities of interest.
double log_choose(std::size_t n, std::size_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

double block_loss_probability(std::size_t n, std::size_t r, std::size_t k) {
  if (r == 0 || r > n) {
    throw std::invalid_argument("block_loss_probability: need 0 < r <= n");
  }
  if (k > n) {
    throw std::invalid_argument("block_loss_probability: need k <= n");
  }
  if (r > k) return 0.0;
  // Choose the k failed nodes; the block is lost iff all r replica holders
  // are among them: C(n-r, k-r) / C(n, k).
  const double log_p = log_choose(n - r, k - r) - log_choose(n, k);
  return std::exp(log_p);
}

AvailabilityReport availability_under_failures(
    std::size_t nodes, const std::vector<std::size_t>& replica_counts,
    std::size_t k) {
  AvailabilityReport report;
  report.nodes = nodes;
  report.failed = k;
  report.blocks = replica_counts.size();
  double log_all_survive = 0.0;
  for (std::size_t r : replica_counts) {
    const double p = block_loss_probability(nodes, r, k);
    report.expected_lost += p;
    log_all_survive += std::log1p(-std::min(p, 1.0 - 1e-15));
  }
  report.any_loss_probability = 1.0 - std::exp(log_all_survive);
  return report;
}

}  // namespace dare::metrics
