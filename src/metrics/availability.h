// Availability analysis (paper Section IV-B: "Replicas created by DARE are
// first-order replicas and as such they also contribute to increasing
// availability of the data in the presence of failures").
//
// Given the replica placement (how many copies each block has on how many
// distinct nodes), computes the exact probability that a block becomes
// unavailable when k uniformly-random distinct nodes fail simultaneously:
//
//   P(block with r replicas lost | k of N nodes fail) = C(N-r, k-r) / C(N, k)
//
// and aggregates the expected number of unavailable blocks. DARE replicas
// raise r for popular blocks, so the expected loss drops most where it
// hurts most.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace dare::metrics {

/// Exact P(all r replica nodes are within a uniformly-random failed set of
/// size k out of n nodes). 0 when r > k; computed in log-space so large
/// clusters do not overflow. Requires 0 < r <= n and 0 <= k <= n.
double block_loss_probability(std::size_t n, std::size_t r, std::size_t k);

struct AvailabilityReport {
  std::size_t nodes = 0;
  std::size_t failed = 0;       ///< the k this row was computed for
  std::size_t blocks = 0;
  double expected_lost = 0.0;   ///< expected unavailable blocks
  double any_loss_probability = 0.0;  ///< P(at least one block lost),
                                      ///< assuming block independence (an
                                      ///< upper-bound style approximation)
};

/// Aggregate the per-block loss probabilities for a simultaneous failure of
/// `k` random nodes. `replica_counts[i]` is the number of distinct nodes
/// holding block i.
AvailabilityReport availability_under_failures(
    std::size_t nodes, const std::vector<std::size_t>& replica_counts,
    std::size_t k);

}  // namespace dare::metrics
