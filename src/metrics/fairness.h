// Fairness metrics for comparing schedulers.
//
// The paper's wl2 was chosen *because* it favors the Fair scheduler: under
// FIFO, small jobs queue behind periodic large scans and their slowdown
// explodes. Jain's fairness index over per-job slowdowns quantifies this:
// 1.0 means every job is slowed equally; 1/n means one job absorbs all the
// suffering.
#pragma once

#include <vector>

#include "metrics/run_metrics.h"

namespace dare::metrics {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].
/// Returns 0 for empty input or all-zero values.
double jains_index(const std::vector<double>& values);

/// Jain's index over the per-job slowdowns of a run.
double slowdown_fairness(const RunResult& result);

/// Max/median slowdown ratio — an intuitive "how badly is the worst job
/// treated" complement to Jain's index. Returns 0 for empty input.
double worst_case_slowdown_ratio(const RunResult& result);

}  // namespace dare::metrics
