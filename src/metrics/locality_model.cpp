#include "metrics/locality_model.h"

#include <algorithm>
#include <stdexcept>

namespace dare::metrics {

double expected_fifo_locality(const std::vector<double>& weights,
                              const std::vector<std::size_t>& replicas,
                              std::size_t workers) {
  if (weights.size() != replicas.size()) {
    throw std::invalid_argument("expected_fifo_locality: size mismatch");
  }
  if (workers == 0) {
    throw std::invalid_argument("expected_fifo_locality: workers == 0");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("expected_fifo_locality: negative weight");
    }
    total += w;
  }
  if (total == 0.0) return 0.0;
  double expected = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0) continue;
    if (replicas[i] == 0) {
      throw std::invalid_argument(
          "expected_fifo_locality: accessed block with no replicas");
    }
    const double p = std::min(
        1.0, static_cast<double>(replicas[i]) / static_cast<double>(workers));
    expected += weights[i] / total * p;
  }
  return expected;
}

}  // namespace dare::metrics
