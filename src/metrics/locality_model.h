// First-principles model of FIFO map locality, used to cross-validate the
// simulator against arithmetic that needs no event engine at all.
//
// Under a saturated FIFO cluster, the node that next frees a slot is
// (approximately) uniform over the workers, and the head-of-line task runs
// locally iff that node holds one of its block's r replicas:
//
//     P(local | block b) = min(1, r_b / workers)
//     expected locality  = sum_b  w_b * min(1, r_b / workers)
//
// with w_b the fraction of map launches that read block b. Two bounds
// bracket a DARE run: evaluating the model with the *initial* replica
// counts (replication factor) lower-bounds measured locality, and with the
// *final* counts (after dynamic replication) upper-bounds it — the run
// itself interpolates, because replicas accumulate during it.
#pragma once

#include <cstddef>
#include <vector>

namespace dare::metrics {

/// Expected FIFO locality given per-block access weights and replica
/// counts. `weights` need not be normalized (they are internally); both
/// vectors must have equal size. Returns 0 for empty input.
/// Throws std::invalid_argument on size mismatch, workers == 0, negative
/// weights, or a zero replica count with positive weight.
double expected_fifo_locality(const std::vector<double>& weights,
                              const std::vector<std::size_t>& replicas,
                              std::size_t workers);

}  // namespace dare::metrics
