// The paper's evaluation metrics (Section V-A).
//
//  * data locality       — fraction of map tasks launched on a node holding
//                          their input block;
//  * GMTT                — geometric mean of job turnaround times (Eq. 1);
//  * slowdown            — turnaround / runtime on a dedicated cluster with
//                          100 % locality (Feitelson & Rudolph);
//  * popularity index cv — uniformity of replica placement (Fig. 11):
//                          PI_i = sum over blocks j on node i of
//                          blockSize_j * blockPopularity_j, summarized by
//                          the coefficient of variation across nodes;
//  * blocks created/job  — dynamic replication activity (Figs. 8, 9).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dare::metrics {

struct JobMetrics {
  JobId id = kInvalidJob;
  SimTime arrival = 0;
  SimTime completion = 0;
  std::size_t maps = 0;
  std::size_t local_maps = 0;
  std::size_t rack_local_maps = 0;  ///< same rack, different node
  /// Analytic runtime on a free cluster with perfect locality (slowdown
  /// denominator).
  double dedicated_runtime_s = 0.0;
  /// True when the job was killed after a task exhausted its retry budget;
  /// `completion` then records the kill time, and the job is excluded from
  /// turnaround / slowdown / locality aggregates.
  bool failed = false;

  double turnaround_s() const { return to_seconds(completion - arrival); }
  double slowdown() const {
    return dedicated_runtime_s > 0.0 ? turnaround_s() / dedicated_runtime_s
                                     : 0.0;
  }
  double locality() const {
    return maps ? static_cast<double>(local_maps) /
                      static_cast<double>(maps)
                : 0.0;
  }
};

struct RunResult {
  std::vector<JobMetrics> jobs;

  /// Cluster-wide map locality: node-local maps / all maps.
  double locality = 0.0;
  /// Node-local or rack-local maps / all maps (>= locality).
  double rack_locality = 0.0;
  /// Geometric mean turnaround time, seconds.
  double gmtt_s = 0.0;
  /// Jobs whose turnaround was non-positive (completion == arrival, e.g. a
  /// trivially-retried job under churn) and therefore could not enter the
  /// log-domain GMTT. Nonzero means gmtt_s averages fewer jobs than ran.
  std::uint64_t gmtt_skipped_jobs = 0;
  /// Mean slowdown across jobs.
  double mean_slowdown = 0.0;
  /// Mean map-task completion time, seconds (Section V-C).
  double mean_map_time_s = 0.0;

  /// Dynamic replication activity.
  std::uint64_t dynamic_replicas_created = 0;
  std::uint64_t dynamic_replica_disk_writes = 0;  ///< thrashing metric
  double blocks_created_per_job = 0.0;
  /// Bytes explicitly pushed over the network by proactive (Scarlett-style)
  /// replication; always 0 for DARE, which piggybacks on task reads.
  std::uint64_t proactive_replication_bytes = 0;

  /// Fault-tolerance accounting (only nonzero when failures are injected).
  std::uint64_t task_reexecutions = 0;   ///< tasks requeued after node loss
  std::uint64_t rereplicated_blocks = 0; ///< name-node repair copies made
  std::uint64_t blocks_lost = 0;         ///< blocks left with no live replica

  /// Node-churn accounting (only nonzero with scripted or stochastic
  /// faults; see src/faults/).
  std::uint64_t node_failures = 0;        ///< kill events that took effect
  std::uint64_t transient_failures = 0;   ///< failures that later recover
  std::uint64_t permanent_failures = 0;   ///< failures that wipe the disk
  std::uint64_t failures_detected = 0;    ///< declared via missed heartbeats
  /// Total / mean time between a node's physical death and the name node
  /// declaring it dead (heartbeat-timeout detection latency).
  double detection_latency_total_s = 0.0;
  double mean_detection_latency_s = 0.0;
  std::uint64_t node_rejoins = 0;          ///< recoveries (blip or declared)
  /// Surplus static replicas discarded when a repair raced a rejoin.
  std::uint64_t overreplication_prunes = 0;
  std::uint64_t task_attempt_failures = 0; ///< injected attempt failures
  std::uint64_t failed_jobs = 0;           ///< jobs killed after max attempts
  std::uint64_t blacklisted_nodes = 0;     ///< blacklist entries ever made

  /// Data-integrity accounting (only nonzero when corruption is injected;
  /// see src/faults/ CorruptionParams).
  std::uint64_t corrupt_reads = 0;        ///< checksum failures on read
  std::uint64_t corrupt_replicas = 0;     ///< replicas silently corrupted
  std::uint64_t replicas_quarantined = 0; ///< bad-block reports that dropped
                                          ///< a replica from the location list
  std::uint64_t data_loss_events = 0;     ///< blocks whose only remaining
                                          ///< replica is corrupt (kept, never
                                          ///< deleted)
  /// Total / mean time between a repair entering the re-replication queue
  /// and the repair copy registering at the name node.
  double repair_latency_total_s = 0.0;
  double mean_repair_latency_s = 0.0;
  /// Completed windows during which a block had zero visible replicas
  /// (opened by death/quarantine, closed by rejoin/repair or run end).
  std::uint64_t unavailability_windows = 0;
  double unavailability_total_s = 0.0;

  /// Speculative-execution accounting (only nonzero when enabled).
  std::uint64_t speculative_launched = 0;  ///< backup attempts started
  std::uint64_t speculative_wins = 0;      ///< backups that finished first
  std::uint64_t speculative_killed = 0;    ///< attempts cancelled by a winner

  /// Straggler / degraded-mode accounting (only nonzero when the straggler
  /// process or straggler detection is enabled; see faults::StragglerParams
  /// and ClusterOptions::enable_straggler_detection).
  std::uint64_t degraded_onsets = 0;       ///< degraded episodes started
  std::uint64_t degraded_recoveries = 0;   ///< episodes that ended in-run
  std::uint64_t tail_inflations = 0;       ///< attempts hit by tail inflation
  std::uint64_t stragglers_detected = 0;   ///< detected-slow declarations
  std::uint64_t straggler_readmissions = 0; ///< backoff expiries (probation)

  /// Proactive-cloning accounting (only nonzero when task cloning is
  /// enabled). Every launched clone terminally either wins or is killed.
  std::uint64_t clones_launched = 0;       ///< clone attempts started
  std::uint64_t clone_wins = 0;            ///< clones that finished first
  std::uint64_t clones_killed = 0;         ///< clones cancelled or swept
  /// Runtime burned by clones that did not win, seconds (budget overhead).
  double clone_wasted_work_s = 0.0;

  /// Network-fault accounting (only nonzero when the netfault process or
  /// scripted partitions are active; see faults::NetworkFaultParams).
  std::uint64_t partition_episodes = 0;    ///< rack partitions started
  std::uint64_t partitions_healed = 0;     ///< partitions that ended in-run
  std::uint64_t link_degrade_episodes = 0; ///< uplink degradations started
  /// Reads whose preferred replica sat behind a partitioned boundary and
  /// paid the fail-fast connect timeout before retrying elsewhere.
  std::uint64_t unreachable_reads = 0;

  /// Repair-queue ledger (nonzero in any run that queues repairs). Every
  /// first-time enqueue terminally lands or is abandoned; at all_done
  /// repairs_enqueued == repairs_landed + repairs_abandoned (the in-queue /
  /// in-flight terms of the validate() equation are zero once the event
  /// queue drains).
  std::uint64_t repairs_enqueued = 0;      ///< first-time enqueues (deduped)
  std::uint64_t repairs_landed = 0;        ///< repair copies registered
  std::uint64_t repairs_abandoned = 0;     ///< no source/dest, superseded,
                                           ///< or closed out at teardown
  std::uint64_t repair_retries = 0;        ///< re-enqueues with backoff
  std::uint64_t repair_timeouts = 0;       ///< transfers severed mid-flight
  std::uint64_t repair_preemptions = 0;    ///< bulk entries deferred behind
                                           ///< the critical class
  /// Exposure windows during which a block was down to exactly one visible
  /// replica (opened by a loss to one copy, closed by repair/rejoin/loss or
  /// run end). The tail-risk metric bench_netfault reports.
  std::uint64_t one_replica_windows = 0;
  double one_replica_total_s = 0.0;

  /// Fig. 11 uniformity: cv of node popularity indices with the initial
  /// (static) placement and with the final placement.
  double cv_before = 0.0;
  double cv_after = 0.0;

  /// Wall-clock sanity data.
  SimTime makespan = 0;
};

/// Fill the aggregate fields of `result` from its per-job entries plus the
/// provided counters. `map_times_s` holds every map task's duration.
void finalize(RunResult& result, const std::vector<double>& map_times_s);

/// Same, but with the map-time statistics already accumulated (Welford, in
/// launch order). The cluster streams durations into an OnlineStats instead
/// of storing one double per map task; the vector overload builds the same
/// accumulator in the same order, so both produce bit-identical means.
void finalize(RunResult& result, const OnlineStats& map_time_stats);

/// Popularity index of one node: sum over its blocks of size * popularity.
/// `block_sizes` and `block_popularity` are parallel arrays indexed by the
/// node's block list.
double popularity_index(const std::vector<Bytes>& block_sizes,
                        const std::vector<double>& block_popularity);

/// Order-sensitive 64-bit digest (FNV-1a) of every field of a RunResult,
/// including each per-job record and the exact bit patterns of all doubles.
/// Two runs of the same seeded configuration must produce equal
/// fingerprints — the repo's determinism guarantee (see
/// tests/test_determinism.cpp, which runs each configuration twice).
std::uint64_t fingerprint(const RunResult& result);

}  // namespace dare::metrics
