#include "metrics/fairness.h"

#include <algorithm>

#include "common/stats.h"

namespace dare::metrics {

double jains_index(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

namespace {

std::vector<double> slowdowns(const RunResult& result) {
  std::vector<double> out;
  out.reserve(result.jobs.size());
  for (const auto& job : result.jobs) out.push_back(job.slowdown());
  return out;
}

}  // namespace

double slowdown_fairness(const RunResult& result) {
  return jains_index(slowdowns(result));
}

double worst_case_slowdown_ratio(const RunResult& result) {
  auto values = slowdowns(result);
  if (values.empty()) return 0.0;
  const double median = percentile(values, 50.0);
  const double worst = *std::max_element(values.begin(), values.end());
  return median > 0.0 ? worst / median : 0.0;
}

}  // namespace dare::metrics
