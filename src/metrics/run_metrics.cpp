#include "metrics/run_metrics.h"

#include <bit>
#include <stdexcept>

#include "common/stats.h"

namespace dare::metrics {

void finalize(RunResult& result, const std::vector<double>& map_times_s) {
  OnlineStats map_stats;
  for (double t : map_times_s) map_stats.add(t);
  finalize(result, map_stats);
}

void finalize(RunResult& result, const OnlineStats& map_time_stats) {
  std::size_t total_maps = 0;
  std::size_t local_maps = 0;
  std::size_t rack_maps = 0;
  std::vector<double> turnarounds;
  turnarounds.reserve(result.jobs.size());
  double slowdown_sum = 0.0;
  std::size_t succeeded = 0;
  for (const auto& job : result.jobs) {
    // Failed jobs are terminally accounted (completion = kill time) but
    // excluded from the performance aggregates: a truncated turnaround
    // would make a churn-heavy run look artificially fast.
    if (job.failed) continue;
    ++succeeded;
    total_maps += job.maps;
    local_maps += job.local_maps;
    rack_maps += job.rack_local_maps;
    turnarounds.push_back(job.turnaround_s());
    slowdown_sum += job.slowdown();
  }
  result.locality = total_maps ? static_cast<double>(local_maps) /
                                     static_cast<double>(total_maps)
                               : 0.0;
  result.rack_locality =
      total_maps ? static_cast<double>(local_maps + rack_maps) /
                       static_cast<double>(total_maps)
                 : 0.0;
  std::size_t gmtt_skipped = 0;
  result.gmtt_s = geometric_mean(turnarounds, &gmtt_skipped);
  result.gmtt_skipped_jobs = static_cast<std::uint64_t>(gmtt_skipped);
  result.mean_slowdown =
      succeeded == 0 ? 0.0 : slowdown_sum / static_cast<double>(succeeded);
  result.mean_detection_latency_s =
      result.failures_detected == 0
          ? 0.0
          : result.detection_latency_total_s /
                static_cast<double>(result.failures_detected);
  result.mean_repair_latency_s =
      result.rereplicated_blocks == 0
          ? 0.0
          : result.repair_latency_total_s /
                static_cast<double>(result.rereplicated_blocks);
  result.mean_map_time_s = map_time_stats.mean();
  result.blocks_created_per_job =
      result.jobs.empty()
          ? 0.0
          : static_cast<double>(result.dynamic_replicas_created) /
                static_cast<double>(result.jobs.size());
}

double popularity_index(const std::vector<Bytes>& block_sizes,
                        const std::vector<double>& block_popularity) {
  if (block_sizes.size() != block_popularity.size()) {
    throw std::invalid_argument("popularity_index: size mismatch");
  }
  double pi = 0.0;
  for (std::size_t i = 0; i < block_sizes.size(); ++i) {
    pi += static_cast<double>(block_sizes[i]) * block_popularity[i];
  }
  return pi;
}

namespace {

/// FNV-1a over explicit 64-bit words: field widths are pinned here (rather
/// than hashing struct bytes) so padding and layout changes never alter the
/// digest semantics.
class Digest {
 public:
  void mix(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }
  void mix_i(std::int64_t value) {
    mix(static_cast<std::uint64_t>(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

}  // namespace

std::uint64_t fingerprint(const RunResult& result) {
  Digest d;
  d.mix(static_cast<std::uint64_t>(result.jobs.size()));
  for (const auto& job : result.jobs) {
    d.mix_i(job.id);
    d.mix_i(job.arrival);
    d.mix_i(job.completion);
    d.mix(static_cast<std::uint64_t>(job.maps));
    d.mix(static_cast<std::uint64_t>(job.local_maps));
    d.mix(static_cast<std::uint64_t>(job.rack_local_maps));
    d.mix(job.dedicated_runtime_s);
    d.mix(static_cast<std::uint64_t>(job.failed ? 1 : 0));
  }
  d.mix(result.locality);
  d.mix(result.rack_locality);
  d.mix(result.gmtt_s);
  // Mixed only when nonzero: digests recorded before this field existed
  // (BENCH_PR3.json) stay valid for runs where no turnaround is skipped,
  // while any run that does skip jobs is distinguishable.
  if (result.gmtt_skipped_jobs != 0) d.mix(result.gmtt_skipped_jobs);
  d.mix(result.mean_slowdown);
  d.mix(result.mean_map_time_s);
  d.mix(result.dynamic_replicas_created);
  d.mix(result.dynamic_replica_disk_writes);
  d.mix(result.blocks_created_per_job);
  d.mix(result.proactive_replication_bytes);
  d.mix(result.task_reexecutions);
  d.mix(result.rereplicated_blocks);
  d.mix(result.blocks_lost);
  d.mix(result.node_failures);
  d.mix(result.transient_failures);
  d.mix(result.permanent_failures);
  d.mix(result.failures_detected);
  d.mix(result.detection_latency_total_s);
  d.mix(result.mean_detection_latency_s);
  d.mix(result.node_rejoins);
  d.mix(result.overreplication_prunes);
  d.mix(result.task_attempt_failures);
  d.mix(result.failed_jobs);
  d.mix(result.blacklisted_nodes);
  // Data-integrity fields follow the gmtt_skipped_jobs convention: mixed
  // only when nonzero so the no-corruption digests committed in
  // BENCH_PR3.json stay valid, while any corrupted run is distinguishable.
  if (result.corrupt_reads != 0) d.mix(result.corrupt_reads);
  if (result.corrupt_replicas != 0) d.mix(result.corrupt_replicas);
  if (result.replicas_quarantined != 0) d.mix(result.replicas_quarantined);
  if (result.data_loss_events != 0) d.mix(result.data_loss_events);
  if (result.repair_latency_total_s != 0.0) {
    d.mix(result.repair_latency_total_s);
  }
  if (result.mean_repair_latency_s != 0.0) d.mix(result.mean_repair_latency_s);
  if (result.unavailability_windows != 0) d.mix(result.unavailability_windows);
  if (result.unavailability_total_s != 0.0) {
    d.mix(result.unavailability_total_s);
  }
  d.mix(result.speculative_launched);
  d.mix(result.speculative_wins);
  d.mix(result.speculative_killed);
  // Straggler and cloning fields follow the same only-when-nonzero rule:
  // digests committed before this subsystem existed stay valid for runs
  // that never degrade, detect, or clone.
  if (result.degraded_onsets != 0) d.mix(result.degraded_onsets);
  if (result.degraded_recoveries != 0) d.mix(result.degraded_recoveries);
  if (result.tail_inflations != 0) d.mix(result.tail_inflations);
  if (result.stragglers_detected != 0) d.mix(result.stragglers_detected);
  if (result.straggler_readmissions != 0) {
    d.mix(result.straggler_readmissions);
  }
  if (result.clones_launched != 0) d.mix(result.clones_launched);
  if (result.clone_wins != 0) d.mix(result.clone_wins);
  if (result.clones_killed != 0) d.mix(result.clones_killed);
  if (result.clone_wasted_work_s != 0.0) d.mix(result.clone_wasted_work_s);
  // Network-fault and repair-ledger fields, same only-when-nonzero rule:
  // the quiet BENCH_PR3.json configurations never partition, never degrade
  // a link, and never queue a repair, so their committed digests survive
  // both the new subsystem and the repair-queue replacement.
  if (result.partition_episodes != 0) d.mix(result.partition_episodes);
  if (result.partitions_healed != 0) d.mix(result.partitions_healed);
  if (result.link_degrade_episodes != 0) d.mix(result.link_degrade_episodes);
  if (result.unreachable_reads != 0) d.mix(result.unreachable_reads);
  if (result.repairs_enqueued != 0) d.mix(result.repairs_enqueued);
  if (result.repairs_landed != 0) d.mix(result.repairs_landed);
  if (result.repairs_abandoned != 0) d.mix(result.repairs_abandoned);
  if (result.repair_retries != 0) d.mix(result.repair_retries);
  if (result.repair_timeouts != 0) d.mix(result.repair_timeouts);
  if (result.repair_preemptions != 0) d.mix(result.repair_preemptions);
  if (result.one_replica_windows != 0) d.mix(result.one_replica_windows);
  if (result.one_replica_total_s != 0.0) d.mix(result.one_replica_total_s);
  d.mix(result.cv_before);
  d.mix(result.cv_after);
  d.mix_i(result.makespan);
  return d.value();
}

}  // namespace dare::metrics
