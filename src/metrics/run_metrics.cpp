#include "metrics/run_metrics.h"

#include <stdexcept>

#include "common/stats.h"

namespace dare::metrics {

void finalize(RunResult& result, const std::vector<double>& map_times_s) {
  std::size_t total_maps = 0;
  std::size_t local_maps = 0;
  std::size_t rack_maps = 0;
  std::vector<double> turnarounds;
  turnarounds.reserve(result.jobs.size());
  double slowdown_sum = 0.0;
  for (const auto& job : result.jobs) {
    total_maps += job.maps;
    local_maps += job.local_maps;
    rack_maps += job.rack_local_maps;
    turnarounds.push_back(job.turnaround_s());
    slowdown_sum += job.slowdown();
  }
  result.locality = total_maps ? static_cast<double>(local_maps) /
                                     static_cast<double>(total_maps)
                               : 0.0;
  result.rack_locality =
      total_maps ? static_cast<double>(local_maps + rack_maps) /
                       static_cast<double>(total_maps)
                 : 0.0;
  result.gmtt_s = geometric_mean(turnarounds);
  result.mean_slowdown =
      result.jobs.empty() ? 0.0
                          : slowdown_sum / static_cast<double>(result.jobs.size());
  OnlineStats map_stats;
  for (double t : map_times_s) map_stats.add(t);
  result.mean_map_time_s = map_stats.mean();
  result.blocks_created_per_job =
      result.jobs.empty()
          ? 0.0
          : static_cast<double>(result.dynamic_replicas_created) /
                static_cast<double>(result.jobs.size());
}

double popularity_index(const std::vector<Bytes>& block_sizes,
                        const std::vector<double>& block_popularity) {
  if (block_sizes.size() != block_popularity.size()) {
    throw std::invalid_argument("popularity_index: size mismatch");
  }
  double pi = 0.0;
  for (std::size_t i = 0; i < block_sizes.size(); ++i) {
    pi += static_cast<double>(block_sizes[i]) * block_popularity[i];
  }
  return pi;
}

}  // namespace dare::metrics
