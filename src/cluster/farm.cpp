#include "cluster/farm.h"

#include <charconv>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/csv.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace dare::cluster {

namespace {

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

/// Minimal JSON string escaping for journal fields: keys and formatted
/// numbers only ever contain printable ASCII, but a hostile config value
/// must not be able to break the line format.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Scanner for parse_journal_line: consume `expected` literally.
bool eat(const std::string& s, std::size_t& pos, const char* expected) {
  const std::size_t len = std::char_traits<char>::length(expected);
  if (s.compare(pos, len, expected) != 0) return false;
  pos += len;
  return true;
}

/// Parse a quoted, escaped JSON string starting at the opening quote.
bool eat_string(const std::string& s, std::size_t& pos, std::string* out) {
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '"') {
      ++pos;
      return true;
    }
    if (c == '\\') {
      if (pos + 1 >= s.size()) return false;
      const char e = s[pos + 1];
      if (e == '"' || e == '\\') {
        out->push_back(e);
        pos += 2;
      } else if (e == 'u' && pos + 5 < s.size()) {
        unsigned code = 0;
        const auto res = std::from_chars(s.data() + pos + 2,
                                         s.data() + pos + 6, code, 16);
        if (res.ec != std::errc() || res.ptr != s.data() + pos + 6) {
          return false;
        }
        out->push_back(static_cast<char>(code));
        pos += 6;
      } else {
        return false;
      }
    } else {
      out->push_back(c);
      ++pos;
    }
  }
  return false;  // unterminated (torn) string
}

std::string trim_spaces(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Serialized journal writer. Appends rewrite the whole journal to a temp
/// file and atomically rename it into place: a kill at any instant leaves
/// either the previous journal or the new one, never a torn line. The
/// rewrite is O(completed items) per append — grids are hundreds of items,
/// each costing a full cluster simulation, so durability wins over the
/// quadratic string copy.
struct JournalState {
  std::string path;
  Mutex mutex;
  std::vector<std::string> lines DARE_GUARDED_BY(mutex);

  void append(const JournalEntry& entry) {
    MutexLock lock(mutex);
    lines.push_back(journal_line(entry));
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        throw std::runtime_error("ExperimentFarm: cannot write journal: " +
                                 tmp);
      }
      for (const auto& line : lines) out << line << '\n';
      out.flush();
      if (!out) {
        throw std::runtime_error("ExperimentFarm: journal write failed: " +
                                 tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw std::runtime_error("ExperimentFarm: journal rename failed: " +
                               path);
    }
  }
};

}  // namespace

const std::vector<std::string>& farm_columns() {
  static const std::vector<std::string> columns = {
      "locality",
      "rack_locality",
      "gmtt_s",
      "gmtt_skipped_jobs",
      "mean_slowdown",
      "mean_map_time_s",
      "makespan_s",
      "dynamic_replicas_created",
      "dynamic_replica_disk_writes",
      "blocks_created_per_job",
      "node_failures",
      "failures_detected",
      "task_reexecutions",
      "rereplicated_blocks",
      "blocks_lost",
      "failed_jobs",
      "corrupt_reads",
      "replicas_quarantined",
      "data_loss_events",
      "unavailability_windows",
      "stragglers_detected",
      "speculative_launched",
      "speculative_wins",
      "clones_launched",
      "clone_wins",
      "cv_before",
      "cv_after",
  };
  return columns;
}

const std::vector<std::string>& farm_item_keys() {
  static const std::vector<std::string> keys = {"jobs", "wl_seed", "workload"};
  return keys;
}

std::string canonical_item_key(const Config& item) {
  std::string out;
  for (const auto& key : item.keys()) {  // Config::keys() is sorted
    if (!out.empty()) out.push_back(' ');
    out += key;
    out.push_back('=');
    out += item.get_string(key, "");
  }
  return out;
}

metrics::RunResult run_farm_item(const Config& item) {
  const ClusterOptions options = apply_overrides(
      paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      item);
  const auto jobs = static_cast<std::size_t>(item.get_int("jobs", 500));
  const std::size_t nodes = options.profile.topology.nodes;
  const std::string wl = item.get_string("workload", "wl1");
  if (wl == "wl1") {
    const auto wl_seed =
        static_cast<std::uint64_t>(item.get_int("wl_seed", 1));
    return run_once(options, standard_wl1(nodes, jobs, wl_seed));
  }
  if (wl == "wl2") {
    const auto wl_seed =
        static_cast<std::uint64_t>(item.get_int("wl_seed", 2));
    return run_once(options, standard_wl2(nodes, jobs, wl_seed));
  }
  throw std::invalid_argument("run_farm_item: unknown workload: " + wl);
}

FarmRow make_farm_row(const metrics::RunResult& r) {
  FarmRow row;
  row.values = {
      format_double(r.locality),
      format_double(r.rack_locality),
      format_double(r.gmtt_s),
      std::to_string(r.gmtt_skipped_jobs),
      format_double(r.mean_slowdown),
      format_double(r.mean_map_time_s),
      format_double(to_seconds(r.makespan)),
      std::to_string(r.dynamic_replicas_created),
      std::to_string(r.dynamic_replica_disk_writes),
      format_double(r.blocks_created_per_job),
      std::to_string(r.node_failures),
      std::to_string(r.failures_detected),
      std::to_string(r.task_reexecutions),
      std::to_string(r.rereplicated_blocks),
      std::to_string(r.blocks_lost),
      std::to_string(r.failed_jobs),
      std::to_string(r.corrupt_reads),
      std::to_string(r.replicas_quarantined),
      std::to_string(r.data_loss_events),
      std::to_string(r.unavailability_windows),
      std::to_string(r.stragglers_detected),
      std::to_string(r.speculative_launched),
      std::to_string(r.speculative_wins),
      std::to_string(r.clones_launched),
      std::to_string(r.clone_wins),
      format_double(r.cv_before),
      format_double(r.cv_after),
  };
  return row;
}

double FarmResult::metric(const std::string& column) const {
  const auto& columns = farm_columns();
  for (std::size_t i = 0; i < columns.size() && i < row.values.size(); ++i) {
    if (columns[i] != column) continue;
    const std::string& cell = row.values[i];
    double value = 0.0;
    const auto res =
        std::from_chars(cell.data(), cell.data() + cell.size(), value);
    if (res.ec != std::errc() || res.ptr != cell.data() + cell.size()) {
      throw std::invalid_argument("FarmResult: cell '" + column +
                                  "' is not numeric: " + cell);
    }
    return value;
  }
  throw std::out_of_range("FarmResult: unknown column: " + column);
}

std::vector<Config> expand_grid(const Config& spec) {
  // Axis values in written order; axes themselves in sorted key order
  // (Config::keys() is sorted), last key varying fastest.
  std::vector<std::string> axis_keys;
  std::vector<std::vector<std::string>> axis_values;
  for (const auto& key : spec.keys()) {
    const std::string raw = spec.get_string(key, "");
    std::vector<std::string> values;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = raw.find(',', start);
      values.push_back(trim_spaces(raw.substr(start, comma - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    axis_keys.push_back(key);
    axis_values.push_back(std::move(values));
  }

  std::vector<Config> items;
  std::vector<std::size_t> odometer(axis_keys.size(), 0);
  while (true) {
    Config item;
    for (std::size_t a = 0; a < axis_keys.size(); ++a) {
      item.set(axis_keys[a], axis_values[a][odometer[a]]);
    }
    items.push_back(std::move(item));
    // Advance the odometer, last axis fastest.
    std::size_t a = axis_keys.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < axis_values[a].size()) break;
      odometer[a] = 0;
      if (a == 0) return items;
    }
    if (axis_keys.empty()) return items;
  }
}

std::string journal_line(const JournalEntry& entry) {
  std::string out = "{\"v\":1,\"key\":\"" + json_escape(entry.key) +
                    "\",\"fingerprint\":\"" +
                    hex_fingerprint(entry.fingerprint) + "\",\"row\":[";
  for (std::size_t i = 0; i < entry.row.values.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    out += json_escape(entry.row.values[i]);
    out.push_back('"');
  }
  out += "]}";
  return out;
}

bool parse_journal_line(const std::string& line, JournalEntry* out) {
  std::size_t pos = 0;
  if (!eat(line, pos, "{\"v\":1,\"key\":")) return false;
  if (!eat_string(line, pos, &out->key)) return false;
  if (!eat(line, pos, ",\"fingerprint\":")) return false;
  std::string fp_hex;
  if (!eat_string(line, pos, &fp_hex)) return false;
  if (fp_hex.size() != 16) return false;
  std::uint64_t fp = 0;
  const auto res =
      std::from_chars(fp_hex.data(), fp_hex.data() + fp_hex.size(), fp, 16);
  if (res.ec != std::errc() || res.ptr != fp_hex.data() + fp_hex.size()) {
    return false;
  }
  out->fingerprint = fp;
  if (!eat(line, pos, ",\"row\":[")) return false;
  out->row.values.clear();
  if (pos < line.size() && line[pos] == ']') {
    ++pos;
  } else {
    while (true) {
      std::string cell;
      if (!eat_string(line, pos, &cell)) return false;
      out->row.values.push_back(std::move(cell));
      if (pos >= line.size()) return false;
      if (line[pos] == ',') {
        ++pos;
        continue;
      }
      if (line[pos] == ']') {
        ++pos;
        break;
      }
      return false;
    }
  }
  if (!eat(line, pos, "}")) return false;
  if (pos != line.size()) return false;
  return out->row.values.size() == farm_columns().size();
}

std::vector<JournalEntry> read_journal(const std::string& path) {
  std::vector<JournalEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;  // no journal yet: nothing to resume
  std::string line;
  while (std::getline(in, line)) {
    JournalEntry entry;
    // A malformed line means the tail was torn by an interrupted write;
    // everything after it is untrustworthy, so stop replaying there. (With
    // write-then-rename appends this should never trigger, but journals
    // edited or truncated by hand must still resume safely.)
    if (!parse_journal_line(line, &entry)) break;
    entries.push_back(std::move(entry));
  }
  return entries;
}

ExperimentFarm::ExperimentFarm(std::vector<Config> items)
    : ExperimentFarm(std::move(items), Options()) {}

ExperimentFarm::ExperimentFarm(std::vector<Config> items, Options options)
    : items_(std::move(items)), options_(std::move(options)) {
  keys_.reserve(items_.size());
  std::set<std::string> seen;
  for (const auto& item : items_) {
    std::string key = canonical_item_key(item);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("ExperimentFarm: duplicate item key: " +
                                  key);
    }
    keys_.push_back(std::move(key));
  }
}

std::vector<FarmResult> ExperimentFarm::run() {
  const std::size_t total = items_.size();
  std::vector<FarmResult> results(total);

  JournalState journal;
  journal.path = options_.journal_path;
  std::map<std::string, JournalEntry> replayable;
  if (!journal.path.empty()) {
    for (auto& entry : read_journal(journal.path)) {
      // Keep every surviving line in the rewrite image — including entries
      // this grid does not recognize (e.g. a widened sweep resuming over an
      // older journal) — so resuming never discards completed work.
      journal.lines.push_back(journal_line(entry));
      std::string key = entry.key;
      replayable[std::move(key)] = std::move(entry);
    }
  }

  std::vector<std::size_t> todo;
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < total; ++i) {
    results[i].index = i;
    results[i].key = keys_[i];
    const auto it = replayable.find(keys_[i]);
    if (it != replayable.end()) {
      results[i].fingerprint = it->second.fingerprint;
      results[i].row = it->second.row;
      results[i].from_journal = true;
      ++replayed;
    } else {
      todo.push_back(i);
    }
  }
  if (options_.progress && replayed != 0) options_.progress(replayed, total);
  if (todo.empty()) return results;

  ThreadPool pool(options_.threads);
  const std::size_t cap =
      options_.max_in_flight != 0 ? options_.max_in_flight : 2 * pool.size();

  struct Admission {
    Mutex mutex;
    std::condition_variable_any cv;
    std::size_t in_flight DARE_GUARDED_BY(mutex) = 0;
    std::size_t finished DARE_GUARDED_BY(mutex) = 0;
  } adm;
  {
    MutexLock lock(adm.mutex);
    adm.finished = replayed;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(todo.size());
  for (const std::size_t idx : todo) {
    {
      // Bounded admission: block until a slot frees up before submitting
      // the next item, so at most `cap` items are queued or running.
      UniqueMutexLock lock(adm.mutex);
      while (adm.in_flight >= cap) adm.cv.wait(lock);
      ++adm.in_flight;
    }
    futures.push_back(
        pool.submit([this, idx, total, &results, &adm, &journal] {
          try {
            const metrics::RunResult run = run_farm_item(items_[idx]);
            FarmResult result;
            result.index = idx;
            result.key = keys_[idx];
            result.fingerprint = metrics::fingerprint(run);
            result.row = make_farm_row(run);
            if (!journal.path.empty()) {
              journal.append({result.key, result.fingerprint, result.row});
            }
            // Distinct pre-sized slot per item: no lock needed, and the
            // futures' get() below synchronizes before results are read.
            results[idx] = std::move(result);
          } catch (...) {
            {
              MutexLock lock(adm.mutex);
              --adm.in_flight;
              ++adm.finished;
            }
            adm.cv.notify_all();
            throw;
          }
          std::size_t finished_now = 0;
          {
            MutexLock lock(adm.mutex);
            --adm.in_flight;
            finished_now = ++adm.finished;
          }
          adm.cv.notify_all();
          // Outside the lock; see the SweepProgress contract.
          if (options_.progress) options_.progress(finished_now, total);
        }));
  }

  // Wait for everything, then rethrow the first failure in grid order —
  // deterministic, like ThreadPool::parallel_for.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

void ExperimentFarm::write_csv(const std::vector<FarmResult>& results,
                               std::ostream& out) {
  CsvWriter csv(out);
  std::vector<std::string> header = {"key"};
  for (const auto& column : farm_columns()) header.push_back(column);
  header.push_back("fingerprint");
  csv.header(header);
  for (const auto& result : results) {
    std::vector<std::string> cells = {result.key};
    for (const auto& value : result.row.values) cells.push_back(value);
    cells.push_back(hex_fingerprint(result.fingerprint));
    csv.row(cells);
  }
}

void ExperimentFarm::write_json(const std::vector<FarmResult>& results,
                                std::ostream& out) {
  const auto& columns = farm_columns();
  out << "{\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FarmResult& result = results[i];
    out << "    {\"key\": \"" << json_escape(result.key)
        << "\", \"fingerprint\": \"" << hex_fingerprint(result.fingerprint)
        << "\", \"row\": {";
    for (std::size_t c = 0;
         c < columns.size() && c < result.row.values.size(); ++c) {
      if (c != 0) out << ", ";
      // Row cells are format_double / to_string renderings, i.e. valid
      // JSON numbers by construction — emitted unquoted.
      out << '"' << columns[c] << "\": " << result.row.values[c];
    }
    out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace dare::cluster
