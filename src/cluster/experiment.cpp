#include "cluster/experiment.h"

#include <algorithm>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace dare::cluster {

ClusterOptions paper_defaults(const net::ClusterProfile& profile,
                              SchedulerKind scheduler, PolicyKind policy,
                              std::uint64_t seed) {
  ClusterOptions options;
  options.profile = profile;
  options.scheduler = scheduler;
  options.policy = policy;
  options.budget_fraction = 0.2;
  options.trap.p = 0.3;
  options.trap.threshold = 1;
  options.seed = seed;
  return options;
}

SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "fifo" || name == "FIFO") return SchedulerKind::kFifo;
  if (name == "fair" || name == "Fair") return SchedulerKind::kFair;
  throw std::invalid_argument("unknown scheduler: " + name);
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "vanilla" || name == "none") return PolicyKind::kVanilla;
  if (name == "lru" || name == "greedy-lru") return PolicyKind::kGreedyLru;
  if (name == "lfu" || name == "greedy-lfu") return PolicyKind::kGreedyLfu;
  if (name == "elephant-trap" || name == "et" || name == "trap") {
    return PolicyKind::kElephantTrap;
  }
  throw std::invalid_argument("unknown policy: " + name);
}

const std::vector<std::string>& override_keys() {
  static const std::vector<std::string> keys = {
      "backoff_s",      "bandwidth_cut",       "bitrot_per_gb",
      "blacklist_threshold", "budget",         "clone_budget",
      "clone_max_maps", "cloning",             "compute_slowdown",
      "connect_timeout_s",   "corruption",
      "degrade_duration_s", "degrade_mtbf_s",  "degrade_rack_correlation",
      "detect_min_samples", "detect_missed",   "detect_ratio",
      "detect_stragglers",  "disk_slowdown",   "fair_delay_ms",
      "faults",         "heartbeat_s",         "latency_inflation",
      "link_duration_s",    "link_mtbf_s",     "map_slots",
      "max_attempts",   "min_live_workers",    "mtbf_s",
      "mttr_s",         "netfault",            "nodes",
      "p",              "part_duration_s",     "part_mtbf_s",
      "permanent_fraction", "policy",          "profile",
      "rack_correlation",   "reduce_slots",    "repair_backoff_s",
      "repair_policy",  "repairs_per_uplink",  "scheduler",
      "sector_mtbf_s",      "seed",            "stragglers",
      "tail_alpha",     "tail_cap",            "tail_prob",
      "task_failure_prob",  "threshold"};
  return keys;
}

ClusterOptions apply_overrides(ClusterOptions options, const Config& cfg) {
  if (cfg.contains("profile") || cfg.contains("nodes")) {
    const std::string profile =
        cfg.get_string("profile", options.profile.name);
    const auto nodes = static_cast<std::size_t>(
        cfg.get_int("nodes",
                    static_cast<std::int64_t>(options.profile.topology.nodes)));
    if (profile == "cct") {
      options.profile = net::cct_profile(nodes);
    } else if (profile == "ec2") {
      options.profile = net::ec2_profile(nodes);
    } else {
      throw std::invalid_argument("unknown profile: " + profile);
    }
  }
  if (cfg.contains("scheduler")) {
    options.scheduler = parse_scheduler(cfg.get_string("scheduler", ""));
  }
  if (cfg.contains("policy")) {
    options.policy = parse_policy(cfg.get_string("policy", ""));
  }
  options.trap.p = cfg.get_double("p", options.trap.p);
  options.trap.threshold = static_cast<std::uint32_t>(
      cfg.get_int("threshold", options.trap.threshold));
  options.budget_fraction = cfg.get_double("budget", options.budget_fraction);
  options.map_slots_per_node = static_cast<std::size_t>(cfg.get_int(
      "map_slots", static_cast<std::int64_t>(options.map_slots_per_node)));
  options.reduce_slots_per_node = static_cast<std::size_t>(
      cfg.get_int("reduce_slots",
                  static_cast<std::int64_t>(options.reduce_slots_per_node)));
  if (cfg.contains("heartbeat_s")) {
    options.heartbeat_interval =
        from_seconds(cfg.get_double("heartbeat_s", 3.0));
  }
  if (cfg.contains("fair_delay_ms")) {
    options.fair_delay = from_millis(cfg.get_double("fair_delay_ms", 500.0));
  }
  options.faults.enabled = cfg.get_bool("faults", options.faults.enabled);
  options.faults.mtbf_s = cfg.get_double("mtbf_s", options.faults.mtbf_s);
  options.faults.mttr_s = cfg.get_double("mttr_s", options.faults.mttr_s);
  options.faults.permanent_fraction =
      cfg.get_double("permanent_fraction", options.faults.permanent_fraction);
  options.faults.rack_correlation =
      cfg.get_double("rack_correlation", options.faults.rack_correlation);
  options.faults.task_failure_prob =
      cfg.get_double("task_failure_prob", options.faults.task_failure_prob);
  options.faults.min_live_workers = static_cast<std::size_t>(cfg.get_int(
      "min_live_workers",
      static_cast<std::int64_t>(options.faults.min_live_workers)));
  options.corruption.enabled =
      cfg.get_bool("corruption", options.corruption.enabled);
  options.corruption.bitrot_per_gb =
      cfg.get_double("bitrot_per_gb", options.corruption.bitrot_per_gb);
  options.corruption.sector_mtbf_s =
      cfg.get_double("sector_mtbf_s", options.corruption.sector_mtbf_s);
  options.stragglers.enabled =
      cfg.get_bool("stragglers", options.stragglers.enabled);
  options.stragglers.degrade_mtbf_s =
      cfg.get_double("degrade_mtbf_s", options.stragglers.degrade_mtbf_s);
  options.stragglers.degrade_duration_s = cfg.get_double(
      "degrade_duration_s", options.stragglers.degrade_duration_s);
  options.stragglers.compute_slowdown =
      cfg.get_double("compute_slowdown", options.stragglers.compute_slowdown);
  options.stragglers.disk_slowdown =
      cfg.get_double("disk_slowdown", options.stragglers.disk_slowdown);
  options.stragglers.rack_correlation = cfg.get_double(
      "degrade_rack_correlation", options.stragglers.rack_correlation);
  options.stragglers.tail_prob =
      cfg.get_double("tail_prob", options.stragglers.tail_prob);
  options.stragglers.tail_alpha =
      cfg.get_double("tail_alpha", options.stragglers.tail_alpha);
  options.stragglers.tail_cap =
      cfg.get_double("tail_cap", options.stragglers.tail_cap);
  options.enable_straggler_detection = cfg.get_bool(
      "detect_stragglers", options.enable_straggler_detection);
  options.straggler_detect_ratio =
      cfg.get_double("detect_ratio", options.straggler_detect_ratio);
  options.straggler_detect_min_samples = static_cast<std::size_t>(cfg.get_int(
      "detect_min_samples",
      static_cast<std::int64_t>(options.straggler_detect_min_samples)));
  if (cfg.contains("backoff_s")) {
    options.straggler_backoff =
        from_seconds(cfg.get_double("backoff_s", 30.0));
  }
  options.netfault.enabled =
      cfg.get_bool("netfault", options.netfault.enabled);
  options.netfault.partition_mtbf_s =
      cfg.get_double("part_mtbf_s", options.netfault.partition_mtbf_s);
  options.netfault.partition_duration_s =
      cfg.get_double("part_duration_s", options.netfault.partition_duration_s);
  options.netfault.link_degrade_mtbf_s =
      cfg.get_double("link_mtbf_s", options.netfault.link_degrade_mtbf_s);
  options.netfault.link_degrade_duration_s = cfg.get_double(
      "link_duration_s", options.netfault.link_degrade_duration_s);
  options.netfault.bandwidth_cut =
      cfg.get_double("bandwidth_cut", options.netfault.bandwidth_cut);
  options.netfault.latency_inflation =
      cfg.get_double("latency_inflation", options.netfault.latency_inflation);
  options.netfault.connect_timeout_s =
      cfg.get_double("connect_timeout_s", options.netfault.connect_timeout_s);
  if (cfg.contains("repair_policy")) {
    const std::string policy = cfg.get_string("repair_policy", "");
    if (policy == "fifo") {
      options.repair_policy = RepairPolicy::kFifo;
    } else if (policy == "prioritized") {
      options.repair_policy = RepairPolicy::kPrioritized;
    } else {
      throw std::invalid_argument("unknown repair_policy: " + policy);
    }
  }
  options.max_repairs_per_uplink = static_cast<std::size_t>(cfg.get_int(
      "repairs_per_uplink",
      static_cast<std::int64_t>(options.max_repairs_per_uplink)));
  if (cfg.contains("repair_backoff_s")) {
    options.repair_retry_backoff =
        from_seconds(cfg.get_double("repair_backoff_s", 5.0));
  }
  options.enable_task_cloning =
      cfg.get_bool("cloning", options.enable_task_cloning);
  options.clone_budget_fraction =
      cfg.get_double("clone_budget", options.clone_budget_fraction);
  options.clone_job_max_maps = static_cast<std::size_t>(cfg.get_int(
      "clone_max_maps",
      static_cast<std::int64_t>(options.clone_job_max_maps)));
  options.detection_missed_heartbeats = static_cast<std::size_t>(cfg.get_int(
      "detect_missed",
      static_cast<std::int64_t>(options.detection_missed_heartbeats)));
  options.max_task_attempts = static_cast<std::size_t>(cfg.get_int(
      "max_attempts", static_cast<std::int64_t>(options.max_task_attempts)));
  options.node_blacklist_threshold = static_cast<std::size_t>(cfg.get_int(
      "blacklist_threshold",
      static_cast<std::int64_t>(options.node_blacklist_threshold)));
  options.seed = static_cast<std::uint64_t>(
      cfg.get_int("seed", static_cast<std::int64_t>(options.seed)));
  return options;
}

metrics::RunResult run_once(const ClusterOptions& options,
                            const workload::Workload& workload) {
  Cluster cluster(options);
  return cluster.run(workload);
}

std::vector<metrics::RunResult> run_parallel(
    const std::vector<std::function<metrics::RunResult()>>& runs,
    std::size_t threads, SweepProgress progress) {
  // Shared only by the progress path; results flow through per-run futures.
  struct ProgressState {
    Mutex mutex;
    std::size_t completed DARE_GUARDED_BY(mutex) = 0;
  } state;
  const std::size_t total = runs.size();

  ThreadPool pool(threads);
  std::vector<std::future<metrics::RunResult>> futures;
  futures.reserve(runs.size());
  for (const auto& run : runs) {
    if (progress) {
      futures.push_back(pool.submit([&run, &progress, &state, total] {
        metrics::RunResult result = run();
        std::size_t completed = 0;
        {
          MutexLock lock(state.mutex);
          completed = ++state.completed;
        }
        // Invoked outside the lock: observer I/O must not serialize the
        // workers, and an observer exception must not leave the counter
        // mutex poisoned (see the SweepProgress contract in experiment.h).
        progress(completed, total);
        return result;
      }));
    } else {
      futures.push_back(pool.submit(run));
    }
  }
  std::vector<metrics::RunResult> results;
  results.reserve(runs.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

namespace {

workload::WorkloadOptions scaled_options(std::size_t total_nodes,
                                         std::size_t num_jobs,
                                         std::uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.num_jobs = num_jobs;
  wopts.seed = seed;
  // Keep per-worker offered load comparable across cluster sizes: a bigger
  // cluster absorbs the same job stream faster, so arrivals speed up
  // proportionally (the paper replays the same trace on both clusters; its
  // 100-node cluster is correspondingly less loaded per node, which we
  // mirror with a gentler scaling exponent). Degenerate sizes need a guard:
  // total_nodes counts the master, so a 0- or 1-node cluster has no workers
  // and the unclamped 19/(n-1) is inf (n == 1) or ~0 via size_t wraparound
  // (n == 0); both clamp to the single-worker scale.
  const double workers =
      total_nodes > 1 ? static_cast<double>(total_nodes - 1) : 1.0;
  const double scale = std::max(0.35, 19.0 / workers);
  wopts.small_interarrival_s *= scale;
  wopts.burst_interarrival_s *= scale;
  return wopts;
}

}  // namespace

workload::Workload standard_wl1(std::size_t total_nodes, std::size_t num_jobs,
                                std::uint64_t seed) {
  return workload::make_wl1(scaled_options(total_nodes, num_jobs, seed));
}

workload::Workload standard_wl2(std::size_t total_nodes, std::size_t num_jobs,
                                std::uint64_t seed) {
  auto wopts = scaled_options(total_nodes, num_jobs, seed);
  // wl2's baseline stream is calmer than wl1's, but each large job floods
  // the cluster and is followed by a burst of small jobs.
  wopts.small_interarrival_s *= 2.0;
  return workload::make_wl2(wopts);
}

}  // namespace dare::cluster
