// Struct-of-arrays task-slot bookkeeping for the scheduler sweep.
//
// The per-node free-slot counts and their cluster-wide totals are kept in
// lockstep behind one API, so the hot try_assign_all sweep can answer "is
// any launch possible anywhere?" in O(1) instead of touching per-node state
// for all N nodes. At 10k nodes the sweep runs ~200k times per workload;
// without the totals it was the dominant cost of the whole simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/invariant.h"

namespace dare::cluster {

/// Free map/reduce task slots per node plus their cluster-wide totals.
/// Every mutation goes through take/give/clear/restore so the totals can
/// never drift from the per-node truth (validate() audits the invariant).
class SlotLedger {
 public:
  /// (Re)initialize for `nodes` nodes at full per-node capacity.
  void reset(std::size_t nodes, std::size_t map_slots_per_node,
             std::size_t reduce_slots_per_node) {
    map_capacity_ = map_slots_per_node;
    reduce_capacity_ = reduce_slots_per_node;
    free_maps_.assign(nodes, map_slots_per_node);
    free_reduces_.assign(nodes, reduce_slots_per_node);
    total_free_maps_ = nodes * map_slots_per_node;
    total_free_reduces_ = nodes * reduce_slots_per_node;
  }

  std::size_t free_maps(std::size_t node) const { return free_maps_[node]; }
  std::size_t free_reduces(std::size_t node) const {
    return free_reduces_[node];
  }
  std::size_t total_free_maps() const { return total_free_maps_; }
  std::size_t total_free_reduces() const { return total_free_reduces_; }
  /// O(1) sweep gate: any slot of either kind free anywhere?
  std::size_t total_free() const {
    return total_free_maps_ + total_free_reduces_;
  }
  std::size_t map_capacity() const { return map_capacity_; }
  std::size_t reduce_capacity() const { return reduce_capacity_; }
  std::size_t nodes() const { return free_maps_.size(); }

  void take_map(std::size_t node) {
    DARE_INVARIANT(free_maps_[node] > 0, "SlotLedger: map slot underflow");
    --free_maps_[node];
    --total_free_maps_;
  }
  void give_map(std::size_t node) {
    DARE_INVARIANT(free_maps_[node] < map_capacity_,
                   "SlotLedger: map slot overflow");
    ++free_maps_[node];
    ++total_free_maps_;
  }
  void take_reduce(std::size_t node) {
    DARE_INVARIANT(free_reduces_[node] > 0,
                   "SlotLedger: reduce slot underflow");
    --free_reduces_[node];
    --total_free_reduces_;
  }
  void give_reduce(std::size_t node) {
    DARE_INVARIANT(free_reduces_[node] < reduce_capacity_,
                   "SlotLedger: reduce slot overflow");
    ++free_reduces_[node];
    ++total_free_reduces_;
  }

  /// Node death: its free slots leave the pool (busy slots are returned
  /// one-by-one as the attempt sweep cancels them — they go through
  /// give_* only if the node is alive, so a dead node's counts stay 0).
  void clear_node(std::size_t node) {
    total_free_maps_ -= free_maps_[node];
    total_free_reduces_ -= free_reduces_[node];
    free_maps_[node] = 0;
    free_reduces_[node] = 0;
  }

  /// Node rejoin: back to full capacity (a recovered tracker restarts with
  /// empty slots).
  void restore_node(std::size_t node) {
    total_free_maps_ += map_capacity_ - free_maps_[node];
    total_free_reduces_ += reduce_capacity_ - free_reduces_[node];
    free_maps_[node] = map_capacity_;
    free_reduces_[node] = reduce_capacity_;
  }

  /// Audit: totals equal the per-node sums (cluster validate()).
  bool consistent() const {
    std::size_t maps = 0;
    std::size_t reduces = 0;
    for (std::size_t w = 0; w < free_maps_.size(); ++w) {
      maps += free_maps_[w];
      reduces += free_reduces_[w];
    }
    return maps == total_free_maps_ && reduces == total_free_reduces_;
  }

 private:
  std::vector<std::size_t> free_maps_;
  std::vector<std::size_t> free_reduces_;
  std::size_t total_free_maps_ = 0;
  std::size_t total_free_reduces_ = 0;
  std::size_t map_capacity_ = 0;
  std::size_t reduce_capacity_ = 0;
};

}  // namespace dare::cluster
