// Resumable experiment farm: expands a declarative parameter grid into
// deterministic, keyed work items, runs them as shared-nothing simulations
// on the common thread pool with bounded in-flight admission, journals
// every completion durably, and merges results in grid order.
//
// The design follows the SLASH2 update scheduler (doc/upsch.xdc): work is
// keyed per item, completed items are persisted immediately so a reboot
// resumes where it left off instead of redoing work, live status is
// observable while the sweep runs, and not all work needs to be in flight
// at once.
//
// Determinism contract: every item is a self-contained `Config` (cluster
// overrides plus the workload keys below), identified by its canonical
// key — the sorted `key=value` rendering of that Config. Simulations are
// single-threaded and seeded, so an item's RunResult (and therefore its
// metrics::fingerprint and formatted result row) is a pure function of its
// key. Merged CSV/JSON output is emitted in grid order, never completion
// order, so a resumed, killed-and-restarted, or differently-threaded sweep
// produces byte-identical merged output to an uninterrupted serial one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "common/config.h"
#include "metrics/run_metrics.h"

namespace dare::cluster {

/// Column schema of a farm result row: a fixed, ordered subset of
/// RunResult's scalar fields. Doubles are rendered with format_double
/// (shortest round-trip form), counters with std::to_string, so a value
/// parsed back from a journal is bit-identical to the freshly computed one.
const std::vector<std::string>& farm_columns();

/// Item keys run_farm_item() recognizes beyond cluster::override_keys():
///   workload=wl1|wl2   jobs=<n>   wl_seed=<n>
/// (wl_seed defaults to 1 for wl1 and 2 for wl2, matching standard_wl*).
const std::vector<std::string>& farm_item_keys();

/// Canonical identity of a work item: its `key=value` pairs sorted by key
/// and joined with single spaces. Insertion order never matters.
std::string canonical_item_key(const Config& item);

/// Run one self-contained work item: paper_defaults + apply_overrides for
/// the cluster, standard_wl1/standard_wl2 for the workload, run_once for
/// the simulation. Unknown keys are ignored (same contract as
/// apply_overrides); malformed values for known keys throw.
metrics::RunResult run_farm_item(const Config& item);

/// One formatted result row, parallel to farm_columns().
struct FarmRow {
  std::vector<std::string> values;
};

FarmRow make_farm_row(const metrics::RunResult& result);

struct FarmResult {
  std::size_t index = 0;       ///< position in grid order
  std::string key;             ///< canonical_item_key of the item
  std::uint64_t fingerprint = 0;
  FarmRow row;
  bool from_journal = false;   ///< replayed, not re-run

  /// Numeric view of a row cell (std::from_chars — locale-independent and
  /// exact for round-trip forms). Throws std::out_of_range on an unknown
  /// column name.
  double metric(const std::string& column) const;
};

/// Expand a grid spec into work items. Every key whose raw value contains
/// commas is an axis (values in written order); single-valued keys are
/// constants. Axes iterate in sorted key order with the lexicographically
/// last key varying fastest — a deterministic grid order independent of
/// how the spec was written.
std::vector<Config> expand_grid(const Config& spec);

/// One journal record: `{"v":1,"key":"...","fingerprint":"%016x",
/// "row":["...",...]}` on a single line (JSONL).
struct JournalEntry {
  std::string key;
  std::uint64_t fingerprint = 0;
  FarmRow row;
};

std::string journal_line(const JournalEntry& entry);

/// Strict parse of one line; false on any malformation (wrong version,
/// truncated tail, row arity mismatch with farm_columns()).
bool parse_journal_line(const std::string& line, JournalEntry* out);

/// Replay a journal file. Tolerant of interruption artifacts: a missing
/// file yields an empty vector and parsing stops at the first malformed
/// (torn) line, discarding it and everything after.
std::vector<JournalEntry> read_journal(const std::string& path);

class ExperimentFarm {
 public:
  struct Options {
    /// Worker threads (0 -> hardware concurrency, min 1).
    std::size_t threads = 0;
    /// Bounded admission: at most this many items submitted but not yet
    /// completed (0 -> 2x the pool size). Keeps a huge grid from being
    /// enqueued all at once, upsch-style.
    std::size_t max_in_flight = 0;
    /// Completion journal. Empty disables journaling and resume. Appends
    /// are write-then-rename: the whole journal is rewritten to
    /// `<path>.tmp` and atomically renamed over `<path>`, so a kill at any
    /// instant leaves either the old or the new journal, never a torn one.
    std::string journal_path;
    /// Invoked after each item completes (journal append included) and
    /// once up front when a resume replays completed items. Same contract
    /// as run_parallel's SweepProgress (see experiment.h): may run
    /// concurrently, must not throw.
    SweepProgress progress;
  };

  /// Items run in the given (grid) order; each is canonicalized via
  /// canonical_item_key. Throws std::invalid_argument on duplicate keys —
  /// the journal could not tell such items apart.
  explicit ExperimentFarm(std::vector<Config> items);
  ExperimentFarm(std::vector<Config> items, Options options);

  const std::vector<Config>& items() const { return items_; }
  const std::vector<std::string>& keys() const { return keys_; }

  /// Run every item not already in the journal; replay the rest. Results
  /// are indexed in grid order regardless of completion order. The first
  /// exception thrown by an item (in grid order) is rethrown after all
  /// in-flight items finish.
  std::vector<FarmResult> run();

  /// Merged outputs, grid order. CSV columns: key, farm_columns...,
  /// fingerprint. JSON mirrors the same rows as an object array.
  static void write_csv(const std::vector<FarmResult>& results,
                        std::ostream& out);
  static void write_json(const std::vector<FarmResult>& results,
                         std::ostream& out);

 private:
  std::vector<Config> items_;
  std::vector<std::string> keys_;
  Options options_;
};

}  // namespace dare::cluster
