// Configuration of a simulated cluster run: hardware profile, scheduler,
// replication policy, and the three DARE knobs the paper's patch adds to
// Hadoop (p, threshold, budget).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/repair_scheduler.h"
#include "core/elephant_trap.h"
#include "core/scarlett.h"
#include "faults/fault_model.h"
#include "net/profile.h"

namespace dare::obs {
class PhaseProfiler;
class TraceCollector;
}

namespace dare::cluster {

enum class SchedulerKind { kFifo, kFair };
enum class PolicyKind { kVanilla, kGreedyLru, kGreedyLfu, kElephantTrap };

const char* scheduler_name(SchedulerKind kind);
const char* policy_name(PolicyKind kind);

struct ClusterOptions {
  /// Hardware/topology profile. `profile.topology.nodes` is the *total*
  /// cluster size, paper-style (1 master + N-1 slaves); the master does not
  /// hold blocks or run tasks and its metadata traffic is not modeled, so
  /// the simulator instantiates N-1 worker nodes.
  net::ClusterProfile profile = net::cct_profile(20);

  /// Hadoop 0.21-era slot configuration.
  std::size_t map_slots_per_node = 2;
  std::size_t reduce_slots_per_node = 1;

  /// Data-node heartbeat period (dynamic replicas become schedulable at the
  /// next heartbeat) and the idle-slot scheduler retry period.
  SimDuration heartbeat_interval = from_seconds(3.0);
  SimDuration scheduler_retry = from_seconds(1.0);

  /// Fixed per-task overhead (JVM launch, task setup).
  SimDuration map_setup = from_millis(500);
  SimDuration reduce_setup = from_millis(500);

  SchedulerKind scheduler = SchedulerKind::kFifo;
  /// Answer scheduler locality queries from the incrementally-maintained
  /// inverted index (and keep the Fair scheduler's share order in a set
  /// patched from the change journal) instead of scanning every pending map
  /// / re-sorting every active job per scheduling opportunity. Both modes
  /// produce bit-identical schedules; `false` is the A/B baseline for the
  /// equivalence oracle and the benchmarks.
  bool use_locality_index = true;
  /// Fair scheduler delay-scheduling window: how long a job waits for a
  /// local slot before accepting a non-local launch. Calibrated to the
  /// simulator's task-duration scale (the paper's Hadoop setup used ~5 s
  /// with ~10x longer tasks).
  SimDuration fair_delay = from_millis(500);

  PolicyKind policy = PolicyKind::kVanilla;
  /// Replication budget as a fraction of the mean static bytes per node.
  double budget_fraction = 0.2;
  core::ElephantTrapParams trap{};

  /// Optional Scarlett-style proactive epoch replication (ablation).
  bool enable_scarlett = false;
  core::ScarlettParams scarlett{};

  /// --- fault injection ---------------------------------------------------
  /// Kill the given workers at the given times. A permanent failure loses
  /// the node's disk; a transient one keeps it (stale) and the node rejoins
  /// after `downtime`. Running tasks on the victim are re-queued once the
  /// name node *detects* the death via missed heartbeats (no omniscient
  /// notification), and the re-replication pipeline restores the
  /// replication factor of affected blocks from the surviving copies.
  struct FailureEvent {
    SimTime at = 0;
    NodeId worker = kInvalidNode;
    faults::FaultKind kind = faults::FaultKind::kPermanent;
    /// Time until the node comes back (transient failures only; ignored for
    /// permanent ones).
    SimDuration downtime = 0;
  };
  std::vector<FailureEvent> failures;

  /// Stochastic node churn on top of (or instead of) scripted failures:
  /// per-node exponential uptime/downtime, mixed transient/permanent kinds,
  /// optional rack-correlated blast radius, and injected task-attempt
  /// failures. See faults::FaultInjectionParams for the knobs.
  faults::FaultInjectionParams faults;

  /// --- data integrity ----------------------------------------------------
  /// Stochastic silent corruption: per-GB bit rot discovered when a read
  /// verifies its checksum, plus latent whole-replica sector loss striking
  /// idle copies in the background. Like `faults`, driven by its own forked
  /// RNG stream — disabled runs are bit-identical to a build without the
  /// subsystem. See faults::CorruptionParams.
  faults::CorruptionParams corruption;

  /// Scripted corruption on top of (or instead of) the stochastic process:
  /// at `at`, silently corrupt the replica of `block` held by `node` —
  /// or every currently visible replica when `node` is kInvalidNode (the
  /// forced last-good-replica scenario). The damage surfaces when a read
  /// verifies the copy.
  struct CorruptionEvent {
    SimTime at = 0;
    BlockId block = kInvalidBlock;
    NodeId node = kInvalidNode;  ///< kInvalidNode = all current holders
  };
  std::vector<CorruptionEvent> corruption_events;

  /// A worker is declared dead after this many consecutive missed
  /// heartbeats (Hadoop's 10-minute expiry scaled to simulator time).
  std::size_t detection_missed_heartbeats = 3;

  /// A task is retried at most this many times (Hadoop's
  /// mapreduce.map.maxattempts = 4); the next *failed* (not killed)
  /// attempt past the limit fails the whole job. Attempts killed by node
  /// loss do not count.
  std::size_t max_task_attempts = 4;

  /// Blacklist a worker for new launches after this many injected task
  /// failures on it (0 = never blacklist). A node leaves the blacklist by
  /// rejoining after a failure.
  std::size_t node_blacklist_threshold = 3;

  /// Re-replication pipeline: how often the name node scans its repair
  /// queue and how many block copies it starts per scan.
  bool enable_rereplication = true;
  SimDuration rereplication_interval = from_seconds(5.0);
  std::size_t rereplication_batch = 8;

  /// Ordering discipline of the repair queue: prioritized (two classes,
  /// critical-before-bulk, the default) or plain FIFO (the A/B baseline in
  /// bench_netfault). Either way the queue dedups: a block whose replicas
  /// die in quick succession is queued once. See cluster/repair_scheduler.h.
  RepairPolicy repair_policy = RepairPolicy::kPrioritized;
  /// Bandwidth-aware admission: at most this many concurrent *repair*
  /// transfers may cross any one rack uplink (either endpoint), so a repair
  /// storm after a rack loss cannot starve task reads of uplink bandwidth.
  /// 0 = unbounded. Entries deferred by the cap stay queued with no retry
  /// penalty.
  std::size_t max_repairs_per_uplink = 2;
  /// Base re-enqueue backoff after a retryable repair failure (unreachable
  /// source, destination lost, transfer severed mid-flight); doubles per
  /// consecutive retry of the same entry (shift capped at 4 → 16x).
  SimDuration repair_retry_backoff = from_seconds(5.0);

  /// Record a file-level access event for every launched map task, exposed
  /// as a workload::AccessTrace after the run — the simulated counterpart
  /// of the HDFS audit logs the paper analyzes in Section III.
  bool record_access_trace = false;

  /// --- stragglers & degraded nodes ----------------------------------------
  /// Stochastic degraded-mode injection (persistent compute/disk slowdowns
  /// with exponential onset/recovery, optionally rack-correlated) plus
  /// per-attempt heavy-tailed service-time inflation. Like `faults` and
  /// `corruption`, driven by its own forked RNG stream — disabled runs are
  /// bit-identical to a build without the subsystem. See
  /// faults::StragglerParams.
  faults::StragglerParams stragglers;

  /// --- network faults ------------------------------------------------------
  /// Stochastic interconnect trouble: per-rack partition episodes (the
  /// top-of-rack switch cuts the rack off from the cluster *and* the
  /// master — heartbeats are lost, the missed-beat detector declares the
  /// rack dead, heal reconciles via full re-registration) and per-rack
  /// uplink-degradation episodes (cross-rack transfers limp at a fraction
  /// of their bandwidth with inflated latency). Like `faults`,
  /// `corruption`, and `stragglers`, driven by its own forked RNG stream —
  /// disabled runs are bit-identical to a build without the subsystem. See
  /// faults::NetworkFaultParams.
  faults::NetworkFaultParams netfault;

  /// Scripted partitions on top of (or instead of) the stochastic process:
  /// at `at`, cut `rack` off for `duration`. Used by the deterministic
  /// partition-heal/repair-race tests and the failure drills; the reaction
  /// machinery (lost heartbeats, reachability filtering, heal
  /// reconciliation) is identical to the stochastic path.
  struct PartitionEvent {
    SimTime at = 0;
    RackId rack = 0;
    SimDuration duration = 0;
  };
  std::vector<PartitionEvent> partition_events;

  /// Progress-rate straggler detection in the name-node heartbeat path. The
  /// name node keeps a per-node EWMA of (observed attempt duration /
  /// cluster-mean attempt duration) fed only by completed attempts — it
  /// never reads the injected degradation state. A node whose EWMA crosses
  /// `straggler_detect_ratio` after at least `straggler_detect_min_samples`
  /// observations is *detected-slow*: excluded from new task launches and
  /// deprioritized as a read/repair source until a backoff (doubling per
  /// repeat offence) expires and the node is re-admitted on probation.
  bool enable_straggler_detection = false;
  double straggler_detect_ratio = 1.8;
  std::size_t straggler_detect_min_samples = 3;
  /// EWMA smoothing factor in (0, 1]; 1 = latest sample only.
  double straggler_detect_ewma_alpha = 0.3;
  /// Base re-admission backoff; doubles per consecutive detection (capped).
  SimDuration straggler_backoff = from_seconds(30.0);

  /// --- proactive task cloning ---------------------------------------------
  /// Budgeted task cloning (arXiv 1501.02330): every map launch may
  /// immediately receive a full clone on a different node, first finisher
  /// wins and the loser is killed. Unlike speculation this needs no
  /// progress estimate, at the price of duplicated work bounded by the
  /// clone budget.
  bool enable_task_cloning = false;
  /// Clone budget as a fraction of total map slots; clones never occupy
  /// more than this share of the cluster at once.
  double clone_budget_fraction = 0.1;
  /// Only clone maps of jobs with at most this many map tasks (cloning pays
  /// off for small jobs, per the paper); 0 = clone any job.
  std::size_t clone_job_max_maps = 0;

  /// --- speculative execution ----------------------------------------------
  /// Hadoop-style backup tasks: once a job has no pending maps, a running
  /// map whose age exceeds `speculation_threshold` times the job's mean
  /// completed-map duration gets a duplicate attempt on a free slot; the
  /// first attempt to finish wins and the other is killed.
  bool enable_speculation = false;
  double speculation_threshold = 1.7;
  SimDuration speculation_check = from_seconds(1.0);

  /// --- observability ------------------------------------------------------
  /// Structured event tracer (src/obs). Borrowed pointer, must outlive the
  /// run; null (the default) disables tracing entirely — every emission
  /// site is a single `if (tracer)` branch, and the run is bit-identical
  /// (same metrics::fingerprint) with tracing on or off.
  obs::TraceCollector* tracer = nullptr;
  /// Scoped process-CPU phase profiler. Borrowed, null = disabled. CPU
  /// readings never enter events, RunResult, or fingerprints.
  obs::PhaseProfiler* profiler = nullptr;
  /// Cadence of the cluster-wide time-series sampler (queue depth, slot
  /// utilization, budget occupancy, popularity-index cv) when a tracer is
  /// attached; 0 disables sampling. The sampling event is cancelled at run
  /// finish, so it never extends the makespan.
  SimDuration trace_sample_interval = from_seconds(1.0);

  std::uint64_t seed = 42;
};

}  // namespace dare::cluster
