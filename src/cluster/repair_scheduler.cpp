#include "cluster/repair_scheduler.h"

#include <stdexcept>

namespace dare::cluster {

RepairScheduler::RepairScheduler(RepairPolicy policy)
    : policy_(policy), queue_(Cmp{policy}) {}

void RepairScheduler::insert(const Entry& entry) {
  const auto [it, inserted] = queue_.insert(entry);
  if (!inserted) {
    // Keys are unique by construction: (class, time, BlockId) collides only
    // for the same block, and the membership guard already rejected that.
    throw std::logic_error("RepairScheduler: duplicate ordering key");
  }
  queued_.emplace(entry.block, it);
}

bool RepairScheduler::enqueue(BlockId block, RepairClass cls, SimTime now) {
  const auto found = queued_.find(block);
  if (found != queued_.end()) {
    // Dedup guard. An escalation (another replica died while the block sat
    // queued as bulk) upgrades the entry in place, keeping its original
    // enqueue time and sequence so it only ever gains priority.
    if (cls == RepairClass::kCritical &&
        found->second->cls == RepairClass::kBulk) {
      Entry upgraded = *found->second;
      upgraded.cls = RepairClass::kCritical;
      queue_.erase(found->second);
      queued_.erase(found);
      insert(upgraded);
    }
    return false;
  }
  Entry entry;
  entry.block = block;
  entry.cls = cls;
  entry.enqueued = now;
  entry.seq = next_seq_++;
  entry.ready = now;
  insert(entry);
  return true;
}

bool RepairScheduler::contains(BlockId block) const {
  return queued_.find(block) != queued_.end();
}

std::optional<RepairScheduler::Entry> RepairScheduler::pop_front() {
  if (queue_.empty()) return std::nullopt;
  const auto it = queue_.begin();
  Entry entry = *it;
  queued_.erase(entry.block);
  queue_.erase(it);
  return entry;
}

void RepairScheduler::reinsert(const Entry& entry) {
  if (contains(entry.block)) {
    throw std::logic_error(
        "RepairScheduler: reinsert of a block that is already queued");
  }
  insert(entry);
}

std::vector<RepairScheduler::Entry> RepairScheduler::drain() {
  std::vector<Entry> entries(queue_.begin(), queue_.end());
  queue_.clear();
  queued_.clear();
  return entries;
}

bool RepairScheduler::consistent() const {
  if (queued_.size() != queue_.size()) return false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const auto found = queued_.find(it->block);
    if (found == queued_.end() || found->second != it) return false;
  }
  return true;
}

}  // namespace dare::cluster
