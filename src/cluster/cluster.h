// The simulated MapReduce cluster: wires the event engine, topology,
// network, HDFS (name node + data nodes), schedulers, and the DARE
// replication policies into a runnable experiment.
//
// One Cluster instance runs one workload once, single-threaded and
// deterministic for a given seed. Parameter sweeps construct many Cluster
// instances and run them on a thread pool (see experiment.h).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/options.h"
#include "cluster/repair_scheduler.h"
#include "cluster/slot_ledger.h"
#include "common/arena.h"
#include "common/invariant.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/replication_policy.h"
#include "faults/fault_model.h"
#include "metrics/run_metrics.h"
#include "net/network.h"
#include "net/topology.h"
#include "sched/locality_index.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"
#include "storage/datanode.h"
#include "storage/namenode.h"
#include "workload/workload.h"
#include "workload/yahoo_trace.h"

namespace dare::cluster {

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Load the workload's catalog into HDFS, replay its jobs, run the
  /// simulation to completion, and return the aggregated metrics.
  /// May be called once per Cluster instance.
  metrics::RunResult run(const workload::Workload& workload);

  /// Streaming variant: jobs are pulled from the spec's generator as
  /// simulated time reaches their arrivals, so the run never materializes
  /// the full job vector and per-job bookkeeping stays O(active jobs).
  /// Produces the same RunResult as run(materialize(spec)).
  metrics::RunResult run_stream(const workload::WorkloadSpec& spec);

  /// Exhaustive cross-component consistency check; throws std::logic_error
  /// with a description on the first violated invariant. Intended for tests
  /// (it walks every block): slot accounting, name-node/data-node replica
  /// agreement, no metadata pointing at dead nodes, job-table totals.
  void validate() const;

  /// The recorded audit trace (options.record_access_trace must be set;
  /// call after run()). One event per map-task launch, file granularity.
  const workload::AccessTrace& access_trace() const { return access_trace_; }

  /// Introspection for tests.
  std::size_t worker_count() const { return data_nodes_.size(); }
  const net::Topology& topology() const { return *topology_; }
  const storage::NameNode& name_node() const { return *name_node_; }
  const storage::DataNode& data_node(std::size_t i) const {
    return *data_nodes_.at(i);
  }
  Bytes node_budget_bytes() const { return node_budget_bytes_; }
  /// Residency telemetry for the O(active) regression tests.
  const sched::JobTable& job_table() const { return jobs_; }

 private:
  class Locator;

  /// Shared body of run()/run_stream(): catalog load, policy setup, the
  /// event loop, and result collection. `stream` yields the jobs in arrival
  /// order; `total_jobs` is the count it will produce.
  metrics::RunResult run_with(const std::vector<workload::FileSpec>& catalog,
                              const workload::CatalogSpec& catalog_spec,
                              const std::vector<std::size_t>& access_counts,
                              std::size_t total_jobs,
                              std::unique_ptr<workload::JobStream> stream);

  void load_files(const std::vector<workload::FileSpec>& catalog,
                  const workload::CatalogSpec& catalog_spec,
                  const std::vector<std::size_t>& access_counts);
  void create_policies();
  /// Pull-based admission: materialize the template into a JobSpec and
  /// register it with the job table (at its arrival event).
  void admit_job(const workload::JobTemplate& tmpl);
  /// Schedule the arrival event for the next job in arrivals_, if any.
  void schedule_next_arrival();
  /// Retire observer (jobs_): copy the finished job's metrics out before
  /// its runtime is released, and drop its per-job side tables.
  void on_job_retired(const sched::JobRuntime& rt);
  void start_heartbeats();
  void heartbeat(std::size_t worker);

  void try_assign_all();
  void try_assign_node(NodeId worker);
  void launch_map(NodeId worker, const sched::MapSelection& selection);
  void launch_reduce(NodeId worker, JobId job);
  void maybe_schedule_tick();

  /// Fault injection + repair. A node *failing* (fail_node) and the name
  /// node *detecting* the failure (declare_node_dead, driven by
  /// detection_tick's missed-heartbeat scan) are separate events: no call
  /// site learns of a death before the heartbeat timeout expires.
  void fail_node(NodeId worker, faults::FaultKind kind, SimDuration downtime);
  void declare_node_dead(NodeId worker);
  void detection_tick();
  void recover_node(NodeId worker, std::uint64_t epoch);
  void schedule_stochastic_failure(NodeId worker, std::uint64_t epoch);
  /// Cancel + requeue every attempt running on `worker` (its tracker died
  /// or rebooted; either way it will not report those tasks back).
  void cleanup_node_attempts(NodeId worker);
  /// Kill a job whose task exhausted max_task_attempts.
  void fail_job(JobId job);
  void note_node_task_failure(NodeId worker);
  /// Cancel dangling churn events (stochastic failures, recoveries, the
  /// detection monitor) once the run is finished, so the event queue drains
  /// without inflating the makespan.
  void cancel_pending_churn();
  void rereplication_tick();
  /// Retryable repair failure: re-enqueue `entry` with exponential backoff
  /// (kRepairRetried), or abandon it once the run has finished so the event
  /// queue is guaranteed to drain even under an unhealed partition.
  void retry_repair(RepairScheduler::Entry entry);
  /// Terminal repair outcomes (the enqueue/land/abandon ledger).
  void abandon_repair(const RepairScheduler::Entry& entry);
  void land_repair(const RepairScheduler::Entry& entry);
  /// Urgency of repairing `block` now: critical when at most one live
  /// reachable replica remains, bulk otherwise.
  RepairClass classify_repair(BlockId block) const;
  bool node_alive(std::size_t worker) const { return !dead_[worker]; }
  bool node_usable(std::size_t worker) const {
    return !dead_[worker] && !blacklisted_[worker];
  }

  /// --- network faults (partitions + degraded uplinks) ---------------------
  /// Per-rack episode chains mirroring the degrade-chain pattern: onset
  /// events sample the netfault process's forked stream, end events heal
  /// and chain the next onset unless the run already finished. A
  /// partitioned rack keeps running physically — its heartbeats are lost at
  /// the boundary, the missed-beat detector declares its nodes dead, and
  /// heal reconciles the survivors via the same full re-registration path
  /// a rebooted node uses (node_rejoined prunes surplus copies exactly
  /// once).
  void schedule_partition_onset(RackId rack);
  void begin_partition(RackId rack, SimDuration duration);
  void end_partition(RackId rack);
  void schedule_link_onset(RackId rack);
  void begin_link_degrade(RackId rack, SimDuration duration);
  void end_link_degrade(RackId rack);
  /// Full block-report reconciliation of a declared-dead node that is
  /// physically alive again (partition healed, or reboot finished): scrub
  /// corrupt copies, node_rejoined, prune surplus statics, rebuild the
  /// policy, reset the blacklist. Shared by recover_node and end_partition.
  void reregister_node(NodeId worker);
  bool node_partitioned(std::size_t worker) const {
    return netfault_active_ &&
           rack_partitioned_[static_cast<std::size_t>(node_rack_[worker])];
  }

  /// Speculative execution.
  void speculation_tick();
  void launch_speculative(NodeId worker, JobId job, std::size_t map_index);
  void on_map_attempt_finished(JobId job, std::size_t map_index,
                               NodeId worker, bool remote_flow, NodeId src,
                               double duration_s);
  bool run_finished() const;

  /// --- stragglers: injection (physical truth) -----------------------------
  /// Degraded-mode state machine, mirroring the stochastic-churn epoch
  /// pattern: each node alternates nominal/degraded on its own chain of
  /// events driven by the straggler process's forked stream. Degradation
  /// only changes task physics (compute + disk multipliers); no mitigation
  /// decision ever reads `degraded_` directly.
  void schedule_degrade_onset(NodeId worker);
  void begin_degrade(NodeId worker, SimDuration duration,
                     bool rack_correlated);
  void end_degrade(NodeId worker);
  /// Compute-side duration adjustment for an attempt launching on `worker`:
  /// the degraded-mode compute multiplier plus one heavy-tailed inflation
  /// draw (a fixed draw per launch whenever the process is enabled).
  SimDuration straggler_compute(NodeId worker, SimDuration compute);

  /// --- stragglers: detection (name-node belief) ---------------------------
  /// The name node's progress-rate view: per-node EWMA of observed attempt
  /// duration over the cluster-mean attempt duration, fed only by completed
  /// attempts (never by the injected state). Evaluated in the heartbeat
  /// path; a detected-slow node is excluded from launches and deprioritized
  /// as a read/repair source until its backoff expires.
  void note_attempt_progress(NodeId worker, double duration_s);
  void straggler_decision(NodeId worker);
  /// Launch-eligibility gate: usable, not currently detected-slow, and not
  /// cut off behind a partitioned rack uplink (the master cannot reach a
  /// partitioned tracker to hand it work, whatever it believes about it).
  bool node_open_for_launch(std::size_t worker) const {
    return node_usable(worker) && !detected_slow_[worker] &&
           !node_partitioned(worker);
  }

  /// --- proactive task cloning ---------------------------------------------
  /// Launch a budgeted clone of the map just launched on `original`, if the
  /// budget, job filter, and a free slot on another open node allow it.
  void maybe_clone(JobId job, std::size_t map_index, NodeId original);
  void launch_clone(NodeId worker, JobId job, std::size_t map_index);
  /// Exactly-once clone retirement: decrements the cluster-wide and per-job
  /// running-clone counts. Called from every path that removes a clone
  /// attempt (self-finish, winner kill, node-loss sweep, job failure).
  void retire_clone(JobId job);

  /// Pick the replica source for a remote read: same rack first, then
  /// fewest active flows, then lowest id (deterministic). Candidates behind
  /// a partitioned boundary are skipped like dead ones; when
  /// `unreachable_skipped` is non-null it receives how many such candidates
  /// were passed over (the reader's fail-fast connect timeouts).
  NodeId pick_source(NodeId reader, BlockId block,
                     std::size_t* unreachable_skipped = nullptr) const;

  /// --- data integrity (checksums, quarantine, repair accounting) ---------
  /// The read leg of a map attempt. `src` is the replica actually read
  /// (== worker for a local or archival read); `remote_flow` says whether a
  /// network flow was started and must be released on completion.
  struct ReadPlan {
    SimDuration duration = 0;
    NodeId src = kInvalidNode;
    bool remote_flow = false;
  };
  /// Compute the read duration for `block`, verifying checksums when the
  /// corruption subsystem is active. A failed local read falls back to a
  /// remote replica; failed remote reads retry from the next surviving
  /// replica (the wasted transfer time stays charged to the attempt). When
  /// no good copy remains, the archival-restore penalty applies. With the
  /// subsystem off this reproduces the pre-checksum read path draw for draw.
  ReadPlan plan_read(NodeId worker, BlockId block, Bytes bytes,
                     bool node_local);
  /// One checksum verification of `holder`'s copy of `block`. Draws exactly
  /// one corruption sample per call when the stochastic process is on,
  /// independent of the replica's current state.
  bool checksum_fails(NodeId holder, BlockId block, Bytes bytes);
  /// Hadoop-style reportBadBlock: tell the name node, quarantine the copy,
  /// and queue a repair — unless it was the last replica (data loss; the
  /// copy is never deleted).
  storage::NameNode::BadBlockResult handle_bad_block(BlockId block,
                                                     NodeId holder);
  void queue_repair(BlockId block);
  void record_data_loss(BlockId block);
  void mark_replica_corrupt(NodeId holder, BlockId block);
  /// Background sector-loss process: periodically corrupt one replica on
  /// one live node (silently — a later read discovers it).
  void schedule_latent_corruption();
  /// Single replica-delta observer: feeds the locality index (when built)
  /// and tracks block unavailability windows (when faults or corruption are
  /// configured).
  void on_replica_delta(BlockId block, NodeId node, bool added);

  double dedicated_runtime_s(const sched::JobSpec& spec) const;

  void scarlett_epoch();

  /// Time-series gauge sampler (observability): runs every
  /// options_.trace_sample_interval while a tracer is attached, cancelled
  /// via cancel_pending_churn() the moment the run finishes.
  void sample_tick();
  /// Popularity index of every live node (sum of block size x file access
  /// count), in node-id order — the quantity behind cv_after and the
  /// sampler's popularity_cv gauge.
  std::vector<double> live_node_popularity() const;
  double popularity_of(FileId file) const {
    const auto it = file_popularity_.find(file);
    return it == file_popularity_.end() ? 0.0 : it->second;
  }

  metrics::RunResult collect_results();

  ClusterOptions options_;
  sim::Simulation sim_;
  Rng rng_;

  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::NameNode> name_node_;
  std::vector<std::unique_ptr<storage::DataNode>> data_nodes_;
  std::vector<std::unique_ptr<core::ReplicationPolicy>> policies_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<Locator> locator_;
  /// Inverted locality index fed by the name node's replica deltas; null
  /// when options_.use_locality_index is off (legacy scan mode).
  std::unique_ptr<sched::LocalityIndex> locality_index_;

  sched::JobTable jobs_;
  /// SoA sweep state: per-node free slots + O(1) cluster-wide totals.
  SlotLedger slots_;
  std::vector<FileId> catalog_file_ids_;  ///< catalog index -> FileId

  Bytes node_budget_bytes_ = 0;
  bool tick_scheduled_ = false;
  std::size_t assign_rotation_ = 0;
  bool ran_ = false;

  /// Fault-injection state. `dead_` is physical truth (the node's process
  /// is down); `declared_dead_` is the name node's belief, which lags by
  /// the heartbeat-detection latency. A transient blip shorter than the
  /// detection timeout never flips `declared_dead_` at all.
  std::vector<bool> dead_;
  std::vector<bool> declared_dead_;
  std::vector<SimTime> death_time_;
  std::vector<faults::FaultKind> death_kind_;
  /// Bumped on every death *and* every recovery; pending failure/recovery
  /// events carry the epoch they were scheduled under and no-op on mismatch.
  std::vector<std::uint64_t> fault_epoch_;
  std::vector<bool> blacklisted_;
  std::vector<std::size_t> node_task_failures_;
  std::unique_ptr<faults::FaultProcess> fault_process_;
  std::vector<sim::EventHandle> heartbeat_event_;
  std::vector<sim::EventHandle> next_failure_;
  std::vector<sim::EventHandle> recover_event_;
  sim::EventHandle monitor_event_;
  /// Two-class prioritized repair queue (dedup + deterministic ordering;
  /// see cluster/repair_scheduler.h). Replaced the PR 5 FIFO deque.
  RepairScheduler repairs_;
  bool repair_tick_scheduled_ = false;
  /// Repair ledger + retry accounting. Every first-time enqueue terminally
  /// lands or is abandoned; validate() checks
  /// enqueued == landed + abandoned + queued + in-flight at all times.
  std::uint64_t repairs_enqueued_ = 0;
  std::uint64_t repairs_landed_ = 0;
  std::uint64_t repairs_abandoned_ = 0;
  std::uint64_t repairs_inflight_ = 0;
  std::uint64_t repair_retries_ = 0;
  std::uint64_t repair_timeouts_ = 0;
  std::uint64_t repair_preemptions_ = 0;
  /// Concurrent repair transfers crossing each rack's uplink (bandwidth-
  /// aware admission; bounded by options_.max_repairs_per_uplink).
  std::vector<std::size_t> repair_uplink_inflight_;
  /// Data-integrity state. `corruption_` is forked only when the stochastic
  /// process is enabled (zero draws otherwise); `verify_reads_` also covers
  /// scripted corruption events. Unavailability windows are tracked from
  /// the replica-delta observer whenever faults or corruption are in play.
  std::unique_ptr<faults::CorruptionProcess> corruption_;
  bool verify_reads_ = false;
  bool track_unavailability_ = false;
  sim::EventHandle latent_event_;
  std::uint64_t corrupt_reads_ = 0;
  std::uint64_t corrupt_replicas_injected_ = 0;
  std::uint64_t replicas_quarantined_ = 0;
  std::uint64_t data_loss_events_ = 0;
  std::unordered_set<BlockId> data_loss_blocks_;
  /// Queue-to-landing repair latency (each entry carries its first-enqueue
  /// time through retries; see RepairScheduler::Entry::enqueued).
  SimDuration repair_latency_total_ = 0;
  std::unordered_map<BlockId, SimTime> unavail_open_;
  std::uint64_t unavailability_windows_ = 0;
  SimDuration unavailability_total_ = 0;
  /// One-replica exposure windows (tail risk: the next loss is data loss).
  /// Armed only after the initial catalog placement so the 0->1->2 build-up
  /// of load_files never counts as exposure.
  std::unordered_map<BlockId, SimTime> one_replica_open_;
  std::uint64_t one_replica_windows_ = 0;
  SimDuration one_replica_total_ = 0;
  bool exposure_armed_ = false;
  std::uint64_t task_reexecutions_ = 0;
  std::uint64_t rereplicated_blocks_ = 0;
  std::uint64_t node_failures_ = 0;
  std::uint64_t transient_failures_ = 0;
  std::uint64_t permanent_failures_ = 0;
  std::uint64_t failures_detected_ = 0;
  SimDuration detection_latency_total_ = 0;
  std::uint64_t node_rejoins_ = 0;
  std::uint64_t overreplication_prunes_ = 0;
  std::uint64_t task_attempt_failures_ = 0;
  std::uint64_t failed_jobs_ = 0;
  std::uint64_t blacklisted_total_ = 0;
  /// Failed (not killed) attempts per map task / per job's reduces — the
  /// Hadoop retry budget (mapreduce.map.maxattempts).
  std::unordered_map<std::uint64_t, std::size_t> map_attempt_failures_;
  std::unordered_map<JobId, std::size_t> reduce_attempt_failures_;

  /// Static straggler model: per-node duration multiplier (>= 1.0), drawn
  /// at construction from the profile knobs.
  std::vector<double> node_slowdown_;

  /// Stochastic straggler subsystem. `degraded_` is physical truth (the
  /// node is limping); the detection state below is the name node's belief,
  /// inferred from observed attempt durations only.
  std::unique_ptr<faults::StragglerProcess> straggler_process_;
  std::vector<bool> degraded_;
  /// Pending onset *or* recovery event of each node's degrade chain (one in
  /// flight per node); cancelled wholesale once the run finishes.
  std::vector<sim::EventHandle> degrade_event_;
  std::uint64_t degraded_onsets_ = 0;
  std::uint64_t degraded_recoveries_ = 0;
  std::uint64_t tail_inflations_ = 0;

  /// Network-fault subsystem. `netfault_active_` gates every reaction path
  /// (reachability filters, heartbeat loss, the declare-partitioned
  /// relaxation) and is true when either the stochastic process or scripted
  /// partition events are configured; the forked process itself exists only
  /// when options_.netfault.enabled. `rack_partitioned_` is physical truth
  /// about the interconnect, mirrored into net::Network for transfer
  /// modeling.
  std::unique_ptr<faults::NetworkFaultProcess> netfault_process_;
  bool netfault_active_ = false;
  std::vector<RackId> node_rack_;  ///< cached topology_->rack_of per node
  std::vector<bool> rack_partitioned_;
  std::vector<SimTime> rack_partition_start_;
  /// Pending onset *or* end event of each rack's partition / link chains
  /// (one in flight per rack per chain); cancelled once the run finishes.
  std::vector<sim::EventHandle> partition_event_;
  std::vector<sim::EventHandle> link_event_;
  std::uint64_t partition_episodes_ = 0;
  std::uint64_t partitions_healed_ = 0;
  std::uint64_t link_degrade_episodes_ = 0;
  std::uint64_t unreachable_reads_ = 0;

  /// Straggler-detection state (see note_attempt_progress /
  /// straggler_decision).
  std::vector<double> progress_ewma_;
  std::vector<std::size_t> progress_samples_;
  std::vector<bool> detected_slow_;
  std::vector<SimTime> slow_until_;
  std::vector<std::size_t> slow_strikes_;
  std::uint64_t stragglers_detected_ = 0;
  std::uint64_t straggler_readmissions_ = 0;

  /// Cloning state. The budget caps how many clone attempts run at once
  /// cluster-wide; per-job counts live in JobRuntime::running_clones.
  std::size_t clone_budget_slots_ = 0;
  std::size_t running_clones_ = 0;
  std::uint64_t clones_launched_ = 0;
  std::uint64_t clone_wins_ = 0;
  std::uint64_t clones_killed_ = 0;
  SimDuration clone_wasted_work_ = 0;

  /// Speculative-execution state: one entry per map task with >= 1 running
  /// attempt. Key = (job << 20) | map_index.
  struct MapAttempt {
    NodeId node = kInvalidNode;
    SimTime started = 0;
    sim::EventHandle completion;
    bool speculative = false;
    /// Proactive clone (budgeted duplicate launched with the original);
    /// mutually exclusive with `speculative`.
    bool clone = false;
    /// Remote-read flow held by this attempt (released on completion or on
    /// kill — a cancelled completion event can no longer release it).
    bool holds_flow = false;
    NodeId flow_src = kInvalidNode;
  };
  struct MapTaskState {
    BlockId block = kInvalidBlock;
    sched::Locality original_locality = sched::Locality::kOffRack;
    std::vector<MapAttempt> attempts;
  };
  static std::uint64_t task_key(JobId job, std::size_t map_index) {
    DARE_INVARIANT(job >= 0 && map_index < (1u << 20),
                   "Cluster: task_key would collide (map index >= 2^20 or "
                   "negative job id)");
    return (static_cast<std::uint64_t>(job) << 20) |
           static_cast<std::uint64_t>(map_index);
  }
  /// Slab-backed: attempt records churn at task rate (one insert/erase per
  /// map launched anywhere in the run), so recycling their nodes through an
  /// arena removes the highest-frequency heap traffic in the simulator.
  std::unordered_map<
      std::uint64_t, MapTaskState, std::hash<std::uint64_t>,
      std::equal_to<std::uint64_t>,
      common::SlabAllocator<std::pair<const std::uint64_t, MapTaskState>>>
      running_maps_;
  /// Running reduce attempts, keyed by a monotonic attempt id (a job can
  /// run several reduces at once). std::map: iterated in key order when a
  /// node death sweeps its attempts, so requeue order is deterministic.
  struct ReduceAttempt {
    JobId job = kInvalidJob;
    NodeId node = kInvalidNode;
    bool holds_flow = false;
    NodeId flow_src = kInvalidNode;
    sim::EventHandle completion;
  };
  std::map<std::uint64_t, ReduceAttempt, std::less<std::uint64_t>,
           common::SlabAllocator<std::pair<const std::uint64_t, ReduceAttempt>>>
      running_reduces_;
  std::uint64_t next_reduce_attempt_ = 0;
  /// Per-job completed-map duration statistics (speculation estimator),
  /// with a cluster-wide fallback for jobs (e.g. single-map jobs) that have
  /// no completed sibling map to estimate from.
  std::unordered_map<
      JobId, std::pair<double, std::size_t>, std::hash<JobId>,
      std::equal_to<JobId>,
      common::SlabAllocator<
          std::pair<const JobId, std::pair<double, std::size_t>>>>
      job_map_stats_;
  std::pair<double, std::size_t> global_map_stats_{0.0, 0};
  std::uint64_t speculative_launched_ = 0;
  std::uint64_t speculative_wins_ = 0;
  std::uint64_t speculative_killed_ = 0;

  /// Map-task durations, accumulated in launch order (Welford). An
  /// accumulator instead of one double per task: O(1) memory at any scale,
  /// bit-identical mean to the vector it replaced.
  OnlineStats map_time_stats_;
  std::vector<double> cv_before_samples_;  ///< static-placement node PIs
  /// Initial-placement file popularity (accesses per file in the workload),
  /// snapshot at load time; shared by collect_results and the sampler.
  std::unordered_map<FileId, double> file_popularity_;
  workload::AccessTrace access_trace_;

  /// Observability (borrowed from options_; null = disabled).
  obs::TraceCollector* tracer_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  sim::EventHandle sampler_event_;

  // Scarlett state.
  std::unique_ptr<core::ScarlettPlanner> scarlett_;
  Bytes scarlett_budget_total_ = 0;
  Bytes scarlett_bytes_spent_ = 0;
  std::unordered_map<FileId, int> scarlett_extra_replicas_;
  std::uint64_t scarlett_bytes_moved_ = 0;

  /// Pull-based arrival state: the open job stream (null until run_with
  /// starts, and again once exhausted) and the total number of jobs it will
  /// deliver (the run-completion denominator).
  std::unique_ptr<workload::JobStream> arrivals_;
  std::size_t total_jobs_ = 0;
  /// Per-job results, filled by on_job_retired at each job's arrival_seq —
  /// the only copy of a job's metrics once its runtime is released.
  std::vector<metrics::JobMetrics> job_metrics_;
};

}  // namespace dare::cluster
