// Experiment harness helpers shared by the bench binaries: standard option
// builders for the paper's configurations and a parallel sweep runner.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/options.h"
#include "common/config.h"
#include "metrics/run_metrics.h"
#include "workload/workload.h"

namespace dare::cluster {

/// The paper's standard DARE parameters for headline experiments
/// (Figs. 7, 10): ElephantTrap with p = 0.3, threshold = 1, budget = 0.2.
ClusterOptions paper_defaults(const net::ClusterProfile& profile,
                              SchedulerKind scheduler, PolicyKind policy,
                              std::uint64_t seed = 42);

/// Apply `key=value` overrides to cluster options. Recognized keys mirror
/// the Hadoop-style knobs the paper's patch adds plus the simulator's own:
///   profile=cct|ec2          nodes=<n>           seed=<n>
///   scheduler=fifo|fair      policy=vanilla|lru|lfu|elephant-trap
///   p=<0..1>                 threshold=<n>       budget=<0..1>
///   map_slots=<n>            reduce_slots=<n>
///   heartbeat_s=<sec>        fair_delay_ms=<ms>
///   faults=0|1 mtbf_s= mttr_s= permanent_fraction= rack_correlation=
///   task_failure_prob= min_live_workers= detect_missed= max_attempts=
///   blacklist_threshold=
///   corruption=0|1           bitrot_per_gb=<rate> sector_mtbf_s=<sec>
///   stragglers=0|1 degrade_mtbf_s= degrade_duration_s= compute_slowdown=
///   disk_slowdown= degrade_rack_correlation= tail_prob= tail_alpha=
///   tail_cap=
///   detect_stragglers=0|1 detect_ratio= detect_min_samples= backoff_s=
///   cloning=0|1 clone_budget=<0..1> clone_max_maps=<n>
/// Unknown keys are ignored (they may belong to the workload or harness).
/// Throws std::invalid_argument on unparsable values for known keys.
ClusterOptions apply_overrides(ClusterOptions options, const Config& cfg);

/// Every key apply_overrides recognizes, sorted. Example binaries check
/// their command line against this (plus their own keys) so a typo'd knob
/// fails loudly instead of being silently ignored.
const std::vector<std::string>& override_keys();

/// Parse the scheduler / policy names used by apply_overrides.
SchedulerKind parse_scheduler(const std::string& name);
PolicyKind parse_policy(const std::string& name);

/// Construct a cluster and run the workload (one-shot convenience).
metrics::RunResult run_once(const ClusterOptions& options,
                            const workload::Workload& workload);

/// Progress observer for run_parallel (and the ExperimentFarm in farm.h):
/// invoked once per completed run with (completed_so_far, total). The
/// counter is snapshotted under an internal mutex, but the observer itself
/// runs *outside* that lock on a pool worker thread, so:
///   - calls arrive in completion order, which is nondeterministic, and may
///     overlap in time — observers must be thread-safe (a bare stream write
///     like the bench progress meter is fine);
///   - observers must only report progress, never feed results (result
///     order is preserved separately);
///   - exception contract: a throwing observer does not poison the internal
///     mutex or stall other workers, but the exception is captured in that
///     run's future and rethrown by run_parallel when it collects results —
///     the completed simulation result is lost. Observers should not throw.
using SweepProgress = std::function<void(std::size_t, std::size_t)>;

/// Run a batch of independent simulations on a thread pool, preserving
/// result order. Each factory must be self-contained (simulations are
/// deterministic and share no state).
std::vector<metrics::RunResult> run_parallel(
    const std::vector<std::function<metrics::RunResult()>>& runs,
    std::size_t threads = 0, SweepProgress progress = {});

/// Standard workloads at paper scale for a given cluster size: arrival
/// rates are scaled so per-worker load stays comparable between the 20-node
/// CCT and 100-node EC2 configurations.
workload::Workload standard_wl1(std::size_t total_nodes, std::size_t num_jobs,
                                std::uint64_t seed = 1);
workload::Workload standard_wl2(std::size_t total_nodes, std::size_t num_jobs,
                                std::uint64_t seed = 2);

}  // namespace dare::cluster
