// Two-class prioritized re-replication queue (replaces the PR 5 FIFO
// `std::deque<BlockId>`; modeled on SLASH2's upsch work queues, see
// ROADMAP "multi-datacenter" item).
//
// Every queued block carries a class: *critical* (down to its last live
// reachable replica — one more loss is data loss) or *bulk* (merely under
// target). Under the prioritized policy criticals drain strictly before
// bulk entries are admitted; under the FIFO policy arrival order rules and
// the class is bookkeeping only (the A/B axis of `bench_netfault`). Either
// way the queue holds each block at most once — a membership index dedups
// re-enqueues, so replicas dying in quick succession no longer burn
// `rereplication_batch` slots on no-op repairs — and ordering is fully
// deterministic: (class, first-enqueue time, BlockId) when prioritized,
// first-enqueue sequence number when FIFO.
//
// Retry state rides with the entry: a repair whose source is unreachable
// (or whose transfer is severed mid-flight) is re-inserted with an
// exponential-backoff `ready` time instead of being dropped; the tick
// skips not-ready entries without consuming its batch budget. The
// scheduler itself is pure data structure — admission (uplink caps,
// preemption, the retry policy) lives in Cluster::rereplication_tick.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dare::cluster {

/// Urgency of a queued repair. Lower enum value = drains first.
enum class RepairClass : std::uint8_t {
  kCritical = 0,  ///< one live reachable replica left; next loss is forever
  kBulk = 1,      ///< under the replication target but not in danger
};

/// Ordering discipline of the repair queue (bench A/B axis).
enum class RepairPolicy : std::uint8_t {
  kFifo,         ///< arrival order, classes recorded but ignored
  kPrioritized,  ///< (class, enqueue time, BlockId); critical preempts bulk
};

class RepairScheduler {
 public:
  struct Entry {
    BlockId block = 0;
    RepairClass cls = RepairClass::kBulk;
    /// First-enqueue time; preserved across retries so starvation is
    /// impossible (an old entry only ever gains priority).
    SimTime enqueued = 0;
    /// First-enqueue sequence number; the FIFO policy's ordering key.
    std::uint64_t seq = 0;
    /// Backoff gate: the tick defers the entry while now < ready.
    SimTime ready = 0;
    /// Retryable failures so far (drives the exponential backoff).
    std::uint32_t retries = 0;
  };

  explicit RepairScheduler(RepairPolicy policy);

  /// Queue `block` for repair. Returns true when the block was newly
  /// enqueued; false when it was already queued (the dedup guard) — in
  /// that case a critical `cls` upgrades a queued bulk entry in place
  /// (original enqueue time and sequence kept).
  bool enqueue(BlockId block, RepairClass cls, SimTime now);

  /// Is `block` currently queued? (Popped/in-flight blocks are not.)
  bool contains(BlockId block) const;

  /// Remove and return the highest-priority entry, or nullopt when empty.
  /// Readiness is the caller's concern: not-ready entries still pop (the
  /// tick re-inserts them via reinsert() without charging its batch).
  std::optional<Entry> pop_front();

  /// Put a popped entry back (defer or retry). The caller adjusts ready /
  /// retries / cls first; enqueued and seq must be preserved. Throws if
  /// the block is already queued (a popped entry has no twin by
  /// construction).
  void reinsert(const Entry& entry);

  /// Remove every entry, in priority order (run teardown closes them out
  /// as abandoned so the repair ledger balances).
  std::vector<Entry> drain();

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  RepairPolicy policy() const { return policy_; }

  /// Audit for Cluster::validate(): membership index and queue agree.
  bool consistent() const;

 private:
  struct Cmp {
    RepairPolicy policy;
    bool operator()(const Entry& a, const Entry& b) const {
      if (policy == RepairPolicy::kPrioritized) {
        if (a.cls != b.cls) return a.cls < b.cls;
        if (a.enqueued != b.enqueued) return a.enqueued < b.enqueued;
        return a.block < b.block;
      }
      return a.seq < b.seq;
    }
  };

  void insert(const Entry& entry);

  RepairPolicy policy_;
  std::uint64_t next_seq_ = 0;
  std::set<Entry, Cmp> queue_;
  std::unordered_map<BlockId, std::set<Entry, Cmp>::iterator> queued_;
};

}  // namespace dare::cluster
