#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/invariant.h"
#include "common/stats.h"
#include "core/greedy_lru.h"
#include "core/lfu.h"
#include "obs/phase_profiler.h"
#include "obs/trace_collector.h"
#include "sched/fair_scheduler.h"
#include "sched/fifo_scheduler.h"

namespace dare::cluster {

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kFair:
      return "Fair";
  }
  return "?";
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kVanilla:
      return "vanilla";
    case PolicyKind::kGreedyLru:
      return "lru";
    case PolicyKind::kGreedyLfu:
      return "lfu";
    case PolicyKind::kElephantTrap:
      return "elephant-trap";
  }
  return "?";
}

/// Adapts the name node's metadata to the scheduler's locality oracle —
/// exactly what a Hadoop scheduler sees: replica locations as of the last
/// heartbeat, not physical disk contents.
class Cluster::Locator final : public sched::BlockLocator {
 public:
  Locator(const storage::NameNode& nn, const net::Topology& topo)
      : nn_(&nn), topo_(&topo) {}
  bool is_local(NodeId node, BlockId block) const override {
    const auto& locs = nn_->locations(block);
    return std::find(locs.begin(), locs.end(), node) != locs.end();
  }
  bool is_rack_local(NodeId node, BlockId block) const override {
    for (NodeId holder : nn_->locations(block)) {
      if (topo_->same_rack(node, holder)) return true;
    }
    return false;
  }

 private:
  const storage::NameNode* nn_;
  const net::Topology* topo_;
};

// Root stream: the cluster owns the run's seed; every component stream is
// forked from rng_ below, never seeded directly.
// dare-lint: allow(rng-stream-discipline)
Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      rng_(options.seed),
      repairs_(options.repair_policy) {
  if (options_.profile.topology.nodes < 2) {
    throw std::invalid_argument("Cluster: need a master plus >= 1 worker");
  }
  const std::size_t workers = options_.profile.topology.nodes - 1;
  // Reject malformed injection knobs up front (NaN rates, fractions outside
  // [0,1], an unreachable live-worker floor) instead of letting them warp a
  // long run silently.
  faults::validate_fault_params(options_.faults, workers);
  faults::validate_corruption_params(options_.corruption);
  faults::validate_straggler_params(options_.stragglers);
  faults::validate_netfault_params(options_.netfault);
  if (options_.repair_retry_backoff <= 0) {
    throw std::invalid_argument(
        "ClusterOptions.repair_retry_backoff must be positive");
  }
  if (!(options_.clone_budget_fraction >= 0.0 &&
        options_.clone_budget_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ClusterOptions.clone_budget_fraction must be in [0, 1]");
  }
  if (!(options_.straggler_detect_ratio >= 1.0)) {
    throw std::invalid_argument(
        "ClusterOptions.straggler_detect_ratio must be at least 1");
  }
  if (!(options_.straggler_detect_ewma_alpha > 0.0 &&
        options_.straggler_detect_ewma_alpha <= 1.0)) {
    throw std::invalid_argument(
        "ClusterOptions.straggler_detect_ewma_alpha must be in (0, 1]");
  }
  if (options_.straggler_backoff <= 0) {
    throw std::invalid_argument(
        "ClusterOptions.straggler_backoff must be positive");
  }

  net::TopologyOptions topo = options_.profile.topology;
  topo.nodes = workers;
  topology_ = std::make_unique<net::Topology>(topo, rng_);
  network_ =
      std::make_unique<net::Network>(options_.profile, *topology_, rng_);
  name_node_ =
      std::make_unique<storage::NameNode>(workers, topology_.get(), rng_);
  data_nodes_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    data_nodes_.push_back(std::make_unique<storage::DataNode>(
        static_cast<NodeId>(i), options_.profile.disk, rng_));
  }
  locator_ = std::make_unique<Locator>(*name_node_, *topology_);
  node_rack_.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    node_rack_[i] = topology_->rack_of(static_cast<NodeId>(i));
  }
  const std::size_t racks = topology_->rack_count();
  rack_partitioned_.assign(racks, false);
  rack_partition_start_.assign(racks, 0);
  partition_event_.resize(racks);
  link_event_.resize(racks);
  repair_uplink_inflight_.assign(racks, 0);
  for (const auto& ev : options_.partition_events) {
    if (ev.rack < 0 || static_cast<std::size_t>(ev.rack) >= racks) {
      throw std::invalid_argument("Cluster: partition event for unknown rack");
    }
    if (ev.duration <= 0) {
      throw std::invalid_argument(
          "Cluster: partition event needs a positive duration");
    }
  }
  netfault_active_ =
      options_.netfault.enabled || !options_.partition_events.empty();
  track_unavailability_ = options_.faults.enabled ||
                          !options_.failures.empty() ||
                          options_.corruption.enabled ||
                          !options_.corruption_events.empty() ||
                          netfault_active_;
  if (options_.use_locality_index) {
    std::vector<RackId> node_rack = node_rack_;
    locality_index_ = std::make_unique<sched::LocalityIndex>(
        workers, std::move(node_rack), topology_->rack_count());
    jobs_.attach_locality_index(locality_index_.get());
  }
  // Release each job's runtime as it retires: the observer snapshots its
  // metrics (on_job_retired) and the table's residency stays O(active jobs)
  // instead of O(all jobs ever submitted).
  jobs_.set_retire_observer(
      [this](const sched::JobRuntime& rt) { on_job_retired(rt); });
  if (locality_index_ != nullptr || track_unavailability_) {
    // Attach before load_files so the mirror sees the static placements.
    // One observer serves both consumers (the name node supports a single
    // one); on_replica_delta fans out.
    name_node_->set_replica_observer(
        [this](BlockId block, NodeId node, bool added) {
          on_replica_delta(block, node, added);
        });
  }
  dead_.assign(workers, false);
  declared_dead_.assign(workers, false);
  death_time_.assign(workers, 0);
  death_kind_.assign(workers, faults::FaultKind::kTransient);
  fault_epoch_.assign(workers, 0);
  blacklisted_.assign(workers, false);
  node_task_failures_.assign(workers, 0);
  heartbeat_event_.resize(workers);
  next_failure_.resize(workers);
  recover_event_.resize(workers);
  node_slowdown_.assign(workers, 1.0);
  for (auto& factor : node_slowdown_) {
    if (rng_.bernoulli(options_.profile.straggler_fraction)) {
      factor = options_.profile.straggler_slowdown;
    }
  }
  degraded_.assign(workers, false);
  degrade_event_.resize(workers);
  progress_ewma_.assign(workers, 0.0);
  progress_samples_.assign(workers, 0);
  detected_slow_.assign(workers, false);
  slow_until_.assign(workers, 0);
  slow_strikes_.assign(workers, 0);
  if (options_.enable_task_cloning && options_.clone_budget_fraction > 0.0) {
    clone_budget_slots_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               options_.clone_budget_fraction *
               static_cast<double>(workers * options_.map_slots_per_node)));
  }

  switch (options_.scheduler) {
    case SchedulerKind::kFifo:
      scheduler_ = std::make_unique<sched::FifoScheduler>();
      break;
    case SchedulerKind::kFair:
      scheduler_ = std::make_unique<sched::FairScheduler>(
          options_.fair_delay, options_.fair_delay,
          options_.use_locality_index);
      break;
  }

  slots_.reset(workers, options_.map_slots_per_node,
               options_.reduce_slots_per_node);

  if (options_.enable_scarlett) {
    scarlett_ = std::make_unique<core::ScarlettPlanner>(options_.scarlett);
  }

  // Forked last, and only when enabled: configurations without stochastic
  // churn keep the exact RNG stream (and therefore results) they had before
  // the fault subsystem existed.
  // dare-lint: allow(rng-stream-discipline)
  if (options_.faults.enabled) {
    fault_process_ =
        std::make_unique<faults::FaultProcess>(options_.faults, rng_);
  }
  // Same contract as the fault stream, forked after it: the corruption
  // stream only exists (and only draws) when the stochastic process is on.
  // Scripted corruption events alone need checksum verification but no RNG.
  // dare-lint: allow(rng-stream-discipline)
  if (options_.corruption.enabled) {
    corruption_ = std::make_unique<faults::CorruptionProcess>(
        options_.corruption, rng_);
  }
  // Straggler stream: forked after the corruption stream, and only when the
  // process is enabled, for the same reason — disabled runs keep the exact
  // stream positions (and fingerprints) they had before stragglers existed.
  // dare-lint: allow(rng-stream-discipline)
  if (options_.stragglers.enabled) {
    straggler_process_ = std::make_unique<faults::StragglerProcess>(
        options_.stragglers, rng_);
  }
  // Network-fault stream: forked last of all, and only when the stochastic
  // process is enabled — scripted partition events need no randomness, and
  // disabled runs keep the exact stream positions (and fingerprints) they
  // had before the subsystem existed.
  // dare-lint: allow(rng-stream-discipline)
  if (options_.netfault.enabled) {
    netfault_process_ = std::make_unique<faults::NetworkFaultProcess>(
        options_.netfault, rng_);
    network_->set_degradation_factors(options_.netfault.bandwidth_cut,
                                      options_.netfault.latency_inflation);
  }
  verify_reads_ =
      corruption_ != nullptr || !options_.corruption_events.empty();

  // Observability wiring: the tracer fans out to every instrumented
  // component (policies get theirs in create_policies, after construction).
  tracer_ = options_.tracer;
  profiler_ = options_.profiler;
  if (tracer_ != nullptr) {
    tracer_->set_clock([this] { return sim_.now(); });
    name_node_->set_tracer(tracer_);
    for (auto& dn : data_nodes_) dn->set_tracer(tracer_);
    scheduler_->set_tracer(tracer_);
  }
}

Cluster::~Cluster() = default;

void Cluster::load_files(const std::vector<workload::FileSpec>& catalog,
                         const workload::CatalogSpec& catalog_spec,
                         const std::vector<std::size_t>& access_counts) {
  if (catalog.empty()) {
    throw std::invalid_argument("Cluster: workload has an empty catalog");
  }
  Bytes total_static = 0;
  for (const auto& file : catalog) {
    const FileId fid = name_node_->create_file(
        file.name, file.blocks, catalog_spec.block_size,
        /*replication=*/3, sim_.now());
    catalog_file_ids_.push_back(fid);
    for (BlockId bid : name_node_->file(fid).blocks) {
      const auto& meta = name_node_->block(bid);
      for (NodeId node : name_node_->static_locations(bid)) {
        data_nodes_[static_cast<std::size_t>(node)]->add_static_block(meta);
        total_static += meta.size;
      }
    }
  }
  node_budget_bytes_ = static_cast<Bytes>(
      options_.budget_fraction *
      (static_cast<double>(total_static) /
       static_cast<double>(data_nodes_.size())));
  scarlett_budget_total_ = static_cast<Bytes>(
      options_.scarlett.budget_fraction * static_cast<double>(total_static));

  // Snapshot the initial-placement popularity indices now: repair copies
  // created after failures later mutate the static block sets.
  file_popularity_.clear();
  for (std::size_t i = 0; i < catalog_file_ids_.size(); ++i) {
    file_popularity_[catalog_file_ids_[i]] =
        static_cast<double>(access_counts[i]);
  }
  cv_before_samples_.clear();
  for (const auto& dn : data_nodes_) {
    double pi = 0.0;
    for (const auto& meta : dn->static_blocks()) {
      pi += static_cast<double>(meta.size) * popularity_of(meta.file);
    }
    cv_before_samples_.push_back(pi);
  }
}

void Cluster::create_policies() {
  policies_.clear();
  policies_.reserve(data_nodes_.size());
  for (auto& dn : data_nodes_) {
    // Install the budget audit: the data node itself verifies (in
    // invariant-enabled builds) that no policy ever overshoots its budget.
    if (options_.policy != PolicyKind::kVanilla) {
      dn->set_audited_budget(node_budget_bytes_);
    }
    switch (options_.policy) {
      case PolicyKind::kVanilla:
        policies_.push_back(std::make_unique<core::NullPolicy>());
        break;
      case PolicyKind::kGreedyLru:
        policies_.push_back(
            std::make_unique<core::GreedyLruPolicy>(*dn, node_budget_bytes_));
        break;
      case PolicyKind::kGreedyLfu:
        policies_.push_back(
            std::make_unique<core::GreedyLfuPolicy>(*dn, node_budget_bytes_));
        break;
      case PolicyKind::kElephantTrap:
        policies_.push_back(std::make_unique<core::ElephantTrapPolicy>(
            *dn, node_budget_bytes_, options_.trap, rng_));
        break;
    }
  }
  if (tracer_ != nullptr) {
    for (auto& policy : policies_) policy->set_tracer(tracer_);
  }
}

void Cluster::admit_job(const workload::JobTemplate& tmpl) {
  if (tmpl.file_index >= catalog_file_ids_.size()) {
    throw std::invalid_argument("Cluster: job references unknown file");
  }
  sched::JobSpec spec;
  // Jobs admit in arrival order, so the submission count is the dense id
  // the up-front loop used to assign.
  spec.id = static_cast<JobId>(jobs_.all_jobs().size());
  spec.arrival = tmpl.arrival;
  spec.input_file = catalog_file_ids_[tmpl.file_index];
  const auto& file = name_node_->file(spec.input_file);
  spec.maps.reserve(file.blocks.size());
  for (BlockId bid : file.blocks) {
    spec.maps.push_back(
        sched::MapTaskSpec{bid, file.block_size, tmpl.map_cpu});
  }
  spec.reduces = tmpl.reduces;
  spec.reduce_cpu = tmpl.reduce_cpu;
  spec.shuffle_bytes = tmpl.shuffle_bytes;
  if (tracer_ != nullptr) {
    tracer_->job_submitted(spec.id, spec.maps.size(), spec.reduces);
  }
  jobs_.add_job(spec);
}

void Cluster::schedule_next_arrival() {
  if (arrivals_ == nullptr) return;
  const auto tmpl = arrivals_->next();
  if (!tmpl) {
    arrivals_.reset();  // stream exhausted; nothing more to admit
    return;
  }
  // Pull one job ahead: each arrival event admits its job, then schedules
  // the next one. At any instant at most one un-admitted template is
  // buffered, regardless of the workload's total size.
  sim_.at(tmpl->arrival, [this, tmpl = *tmpl] {
    admit_job(tmpl);
    schedule_next_arrival();
    try_assign_all();
  });
}

void Cluster::start_heartbeats() {
  const std::size_t workers = data_nodes_.size();
  for (std::size_t w = 0; w < workers; ++w) {
    // Stagger heartbeats across the interval like real data nodes do.
    const SimDuration phase =
        options_.heartbeat_interval * static_cast<SimDuration>(w + 1) /
        static_cast<SimDuration>(workers);
    heartbeat_event_[w] = sim_.after(phase, [this, w] { heartbeat(w); });
  }
}

void Cluster::heartbeat(std::size_t worker) {
  if (dead_[worker]) return;  // a dead node heartbeats no more
  if (node_partitioned(worker)) {
    // Lost at the partitioned boundary: the tracker keeps beating but the
    // master never hears it, so the missed-beat detector will declare the
    // node dead. Only the periodic chain is re-armed; pending block reports
    // stay queued until the heal reconciles (or the next delivered beat
    // drains them, for a blip shorter than the detection timeout).
    if (!run_finished()) {
      heartbeat_event_[worker] =
          sim_.after(options_.heartbeat_interval, [this, worker] {
            heartbeat(worker);
          });
    }
    return;
  }
  obs::PhaseScope prof(profiler_, obs::Phase::kHeartbeat);
  name_node_->heartbeat_received(static_cast<NodeId>(worker), sim_.now());
  auto& dn = *data_nodes_[worker];
  const auto report = dn.drain_report();
  if (!report.added.empty()) {
    name_node_->report_dynamic_added(static_cast<NodeId>(worker),
                                     report.added);
  }
  if (!report.removed.empty()) {
    name_node_->report_dynamic_removed(static_cast<NodeId>(worker),
                                       report.removed);
  }
#if DARE_INVARIANTS_ENABLED
  // Cross-component audit: after the heartbeat is applied, the name node's
  // replica-location map must agree with this data node's actual contents
  // for every block the report touched.
  for (BlockId b : report.added) {
    const auto& locs = name_node_->locations(b);
    DARE_INVARIANT(dn.has_dynamic_block(b),
                   "heartbeat: reported-added block " + std::to_string(b) +
                       " is not on data node " + std::to_string(worker));
    DARE_INVARIANT(std::find(locs.begin(), locs.end(),
                             static_cast<NodeId>(worker)) != locs.end(),
                   "heartbeat: name node missing location for added block " +
                       std::to_string(b));
  }
  for (BlockId b : report.removed) {
    const auto& locs = name_node_->locations(b);
    DARE_INVARIANT(!dn.has_dynamic_block(b),
                   "heartbeat: reported-removed block " + std::to_string(b) +
                       " is still live on data node " + std::to_string(worker));
    DARE_INVARIANT(dn.has_static_block(b) ||
                       std::find(locs.begin(), locs.end(),
                                 static_cast<NodeId>(worker)) == locs.end(),
                   "heartbeat: name node kept stale location for removed "
                   "block " + std::to_string(b));
  }
#endif
  // Lazy physical deletion happens at idle time; the heartbeat is our proxy.
  dn.reclaim_marked();

  // Straggler verdicts ride the heartbeat, mirroring how a real JobTracker
  // folds slow-node bookkeeping into tracker reports.
  if (options_.enable_straggler_detection) {
    straggler_decision(static_cast<NodeId>(worker));
  }

  if (!run_finished()) {
    heartbeat_event_[worker] =
        sim_.after(options_.heartbeat_interval, [this, worker] {
          heartbeat(worker);
        });
  }
}

void Cluster::maybe_schedule_tick() {
  if (tick_scheduled_) return;
  tick_scheduled_ = true;
  sim_.after(options_.scheduler_retry, [this] {
    tick_scheduled_ = false;
    if (!jobs_.all_done()) try_assign_all();
  });
}

void Cluster::try_assign_all() {
  // Profiled per sweep, not per node: this is the hottest path in the
  // simulator and a per-node scope would dominate the cost it measures.
  obs::PhaseScope prof(profiler_, obs::Phase::kSchedule);
  const std::size_t n = data_nodes_.size();
  const std::size_t start = assign_rotation_++ % n;
  for (std::size_t k = 0; k < n; ++k) {
    // SoA early exits — both behavior-preserving:
    //  * no pending work of either kind: every remaining select_map /
    //    select_reduce call would return nullopt without mutating any
    //    scheduler state (the fair journal drain just defers);
    //  * no free slot anywhere and the retry tick already booked: every
    //    remaining visit would be a complete no-op (maybe_schedule_tick
    //    dedups via tick_scheduled_).
    // At 10k nodes these turn the steady-state sweep from O(nodes) into
    // O(1) whenever the cluster is saturated or drained.
    if (jobs_.total_pending_maps() + jobs_.total_pending_reduces() == 0) {
      break;
    }
    if (slots_.total_free() == 0 && tick_scheduled_) break;
    try_assign_node(static_cast<NodeId>((start + k) % n));
  }
}

void Cluster::try_assign_node(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  // Dead, blacklisted, or detected-slow: no new launches. A detected-slow
  // node keeps its running work (graceful degradation, not eviction).
  if (!node_open_for_launch(w)) return;
  while (slots_.free_maps(w) > 0) {
    const auto selection =
        scheduler_->select_map(worker, sim_.now(), jobs_, *locator_);
    if (!selection) break;
    launch_map(worker, *selection);
  }
  while (slots_.free_reduces(w) > 0) {
    const auto job = scheduler_->select_reduce(jobs_);
    if (!job) break;
    launch_reduce(worker, *job);
  }
  if (jobs_.total_pending_maps() + jobs_.total_pending_reduces() > 0) {
    maybe_schedule_tick();
  }
}

NodeId Cluster::pick_source(NodeId reader, BlockId block,
                            std::size_t* unreachable_skipped) const {
  const auto& locs = name_node_->locations(block);
  NodeId best = kInvalidNode;
  bool best_slow = false;
  int best_hops = 0;
  int best_flows = 0;
  for (NodeId cand : locs) {
    if (cand == reader) continue;  // metadata race; never a usable source
    if (dead_[static_cast<std::size_t>(cand)]) continue;
    if (netfault_active_ && !network_->reachable(reader, cand)) {
      // A replica behind a partitioned boundary reads like a dead one,
      // except the reader pays a fail-fast connect timeout for probing it
      // (charged by plan_read via this count).
      if (unreachable_skipped != nullptr) ++*unreachable_skipped;
      continue;
    }
    // Graceful degradation: detected-slow holders rank strictly below every
    // healthy one (deprioritized, never excluded — a slow copy still beats
    // the archival tier). With detection off this bit is always false and
    // the ordering is unchanged.
    const bool slow = detected_slow_[static_cast<std::size_t>(cand)];
    const int hops = topology_->hops(reader, cand);
    const int flows = network_->active_flows(cand);
    if (best == kInvalidNode || (!slow && best_slow) ||
        (slow == best_slow &&
         (hops < best_hops ||
          (hops == best_hops &&
           (flows < best_flows || (flows == best_flows && cand < best)))))) {
      best = cand;
      best_slow = slow;
      best_hops = hops;
      best_flows = flows;
    }
  }
  return best;  // kInvalidNode when no live replica exists anywhere else
}

bool Cluster::checksum_fails(NodeId holder, BlockId block, Bytes bytes) {
  // Exactly one draw per verified read when the stochastic process is on,
  // regardless of the replica's current state — the draw count must never
  // depend on earlier corruption outcomes.
  if (corruption_ != nullptr && corruption_->sample_read_corruption(bytes)) {
    mark_replica_corrupt(holder, block);
  }
  return data_nodes_[static_cast<std::size_t>(holder)]->is_corrupt(block);
}

void Cluster::mark_replica_corrupt(NodeId holder, BlockId block) {
  if (data_nodes_[static_cast<std::size_t>(holder)]->corrupt_replica(block)) {
    ++corrupt_replicas_injected_;
    if (tracer_ != nullptr) tracer_->replica_corrupted(holder, block);
  }
}

void Cluster::record_data_loss(BlockId block) {
  // One loss event per block: repeated reads of the same corrupt last copy
  // must not inflate the count.
  if (!data_loss_blocks_.insert(block).second) return;
  ++data_loss_events_;
  if (tracer_ != nullptr) tracer_->data_loss(block);
}

storage::NameNode::BadBlockResult Cluster::handle_bad_block(BlockId block,
                                                            NodeId holder) {
  ++corrupt_reads_;
  if (tracer_ != nullptr) tracer_->checksum_failed(holder, block);
  const auto verdict = name_node_->report_bad_block(block, holder);
  switch (verdict) {
    case storage::NameNode::BadBlockResult::kQuarantined: {
      const auto h = static_cast<std::size_t>(holder);
      data_nodes_[h]->quarantine_replica(block);
      policies_[h]->on_replica_dropped(block);
      ++replicas_quarantined_;
      if (options_.enable_rereplication &&
          name_node_->is_under_replicated(block)) {
        queue_repair(block);
      }
      break;
    }
    case storage::NameNode::BadBlockResult::kLastReplica:
      // Last-good-replica protection: the final copy is never deleted, even
      // corrupt — surface the loss and leave it for archival restore.
      record_data_loss(block);
      break;
    case storage::NameNode::BadBlockResult::kStaleReport:
      break;
  }
  return verdict;
}

Cluster::ReadPlan Cluster::plan_read(NodeId worker, BlockId block, Bytes bytes,
                                     bool node_local) {
  const auto w = static_cast<std::size_t>(worker);
  ReadPlan plan;
  plan.src = worker;
  if (node_local) {
    SimDuration local_disk = data_nodes_[w]->read_duration(bytes);
    // Degraded-mode disk penalty: a limping holder serves reads slower.
    // `degraded_` is all-false unless the straggler process is enabled, so
    // the integer path is untouched in disabled runs.
    if (degraded_[w]) {
      local_disk = static_cast<SimDuration>(
          static_cast<double>(local_disk) * options_.stragglers.disk_slowdown);
    }
    plan.duration += local_disk;
    if (!verify_reads_ || !checksum_fails(worker, block, bytes)) return plan;
    // The local copy failed its checksum: report it (quarantining the
    // replica) and re-read from another holder. The wasted local read stays
    // charged to the attempt.
    handle_bad_block(block, worker);
  }
  for (;;) {
    std::size_t unreachable = 0;
    const NodeId src = pick_source(worker, block, &unreachable);
    if (unreachable > 0) {
      // Fail fast across a dead link: the reader probed a replica behind a
      // partitioned boundary, burned one connect timeout, and moved on to a
      // reachable copy (or the archival fallback below).
      plan.duration += from_seconds(options_.netfault.connect_timeout_s);
      ++unreachable_reads_;
    }
    if (src == kInvalidNode) {
      // Every other replica is on a dead or unreachable node or burned by
      // quarantine: restore from the (simulated) archival tier — a fixed,
      // painful penalty. This keeps jobs with genuinely lost blocks
      // finishable instead of deadlocking the run.
      plan.duration += from_seconds(60.0);
      plan.src = worker;
      plan.remote_flow = false;
      return plan;
    }
    // A remote read is bounded by both source disk and network path.
    SimDuration disk =
        data_nodes_[static_cast<std::size_t>(src)]->read_duration(bytes);
    if (degraded_[static_cast<std::size_t>(src)]) {
      disk = static_cast<SimDuration>(static_cast<double>(disk) *
                                      options_.stragglers.disk_slowdown);
    }
    const SimDuration net = network_->transfer_duration(src, worker, bytes);
    plan.duration += std::max(disk, net);
    if (verify_reads_ && checksum_fails(src, block, bytes)) {
      // The fetched copy failed its checksum; its transfer time stays
      // charged but no flow is held for the wasted leg (modeling
      // simplification). Retry from the next surviving replica —
      // kQuarantined removed this location, so the loop terminates.
      if (handle_bad_block(block, src) ==
          storage::NameNode::BadBlockResult::kLastReplica) {
        // The only remaining copy is corrupt (kept, never deleted): fall
        // back to the archival tier.
        plan.duration += from_seconds(60.0);
        plan.src = worker;
        plan.remote_flow = false;
        return plan;
      }
      continue;
    }
    network_->flow_started(src, worker);
    plan.src = src;
    plan.remote_flow = true;
    return plan;
  }
}

void Cluster::launch_map(NodeId worker, const sched::MapSelection& selection) {
  const auto w = static_cast<std::size_t>(worker);
  const std::size_t map_index =
      jobs_.launch_map(selection.job, selection.pending_index,
                       selection.locality);
  const sched::MapTaskSpec task =
      jobs_.job(selection.job).spec.maps[map_index];
  const storage::BlockMeta meta = name_node_->block(task.block);
  slots_.take_map(w);
  if (tracer_ != nullptr) {
    tracer_->map_launched(worker, selection.job, map_index,
                          static_cast<int>(selection.locality),
                          /*speculative=*/false);
  }

  const bool node_local = selection.node_local();
  const ReadPlan plan = plan_read(worker, task.block, task.bytes, node_local);
  const SimDuration compute =
      straggler_compute(worker, options_.map_setup + task.cpu);
  SimDuration duration = compute + plan.duration;
  const NodeId src = plan.src;
  const bool remote_flow = plan.remote_flow;
  duration = static_cast<SimDuration>(static_cast<double>(duration) *
                                      node_slowdown_[w]);

  // The DARE hook: the block is streaming through this node anyway, so the
  // policy may capture it (remote case) or refresh its bookkeeping (local).
  // `node_local` is the scheduler's view at launch — kept even when a
  // checksum failure rerouted the read, so the policy draw sequence is
  // independent of corruption outcomes.
  {
    obs::PhaseScope prof(profiler_, obs::Phase::kReplication);
    policies_[w]->on_map_task(meta, node_local);
  }
  if (scarlett_) scarlett_->record_access(meta.file);
  if (options_.record_access_trace) {
    access_trace_.events.push_back({meta.file, sim_.now()});
  }

  map_time_stats_.add(to_seconds(duration));

  const JobId job = selection.job;
  const double duration_s = to_seconds(duration);
  auto& state = running_maps_[task_key(job, map_index)];
  state.block = task.block;
  state.original_locality = selection.locality;
  MapAttempt attempt;
  attempt.node = worker;
  attempt.started = sim_.now();
  attempt.speculative = false;
  attempt.holds_flow = remote_flow;
  attempt.flow_src = src;
  attempt.completion = sim_.after(
      duration, [this, job, map_index, worker, remote_flow, src, duration_s] {
        on_map_attempt_finished(job, map_index, worker, remote_flow, src,
                                duration_s);
      });
  state.attempts.push_back(std::move(attempt));
  // Proactive cloning fires at launch time, not on a timer: the clone runs
  // from the start, hedging against a slow node before any evidence exists.
  maybe_clone(job, map_index, worker);
}

void Cluster::launch_speculative(NodeId worker, JobId job,
                                 std::size_t map_index) {
  const auto w = static_cast<std::size_t>(worker);
  const sched::MapTaskSpec task = jobs_.job(job).spec.maps[map_index];
  const storage::BlockMeta meta = name_node_->block(task.block);
  slots_.take_map(w);
  ++speculative_launched_;

  const bool node_local = locator_->is_local(worker, task.block);
  if (tracer_ != nullptr) {
    const auto loc = node_local ? sched::Locality::kNodeLocal
                     : locator_->is_rack_local(worker, task.block)
                         ? sched::Locality::kRackLocal
                         : sched::Locality::kOffRack;
    tracer_->map_launched(worker, job, map_index, static_cast<int>(loc),
                          /*speculative=*/true);
  }
  const ReadPlan plan = plan_read(worker, task.block, task.bytes, node_local);
  const SimDuration compute =
      straggler_compute(worker, options_.map_setup + task.cpu);
  SimDuration duration = compute + plan.duration;
  const NodeId src = plan.src;
  const bool remote_flow = plan.remote_flow;
  duration = static_cast<SimDuration>(static_cast<double>(duration) *
                                      node_slowdown_[w]);
  // The backup attempt reads the block through this node too — the DARE
  // hook applies exactly as for a regular attempt.
  {
    obs::PhaseScope prof(profiler_, obs::Phase::kReplication);
    policies_[w]->on_map_task(meta, node_local);
  }

  const double duration_s = to_seconds(duration);
  auto& state = running_maps_[task_key(job, map_index)];
  MapAttempt attempt;
  attempt.node = worker;
  attempt.started = sim_.now();
  attempt.speculative = true;
  attempt.holds_flow = remote_flow;
  attempt.flow_src = src;
  attempt.completion = sim_.after(
      duration, [this, job, map_index, worker, remote_flow, src, duration_s] {
        on_map_attempt_finished(job, map_index, worker, remote_flow, src,
                                duration_s);
      });
  state.attempts.push_back(std::move(attempt));
}

SimDuration Cluster::straggler_compute(NodeId worker, SimDuration compute) {
  if (straggler_process_ == nullptr) return compute;
  const auto w = static_cast<std::size_t>(worker);
  double scaled = static_cast<double>(compute);
  if (degraded_[w]) scaled *= options_.stragglers.compute_slowdown;
  // One inflation draw per launch regardless of node state or outcome: the
  // straggler stream position never depends on which node runs the task.
  const double factor = straggler_process_->sample_task_inflation();
  if (factor > 1.0) {
    ++tail_inflations_;
    scaled *= factor;
  }
  return static_cast<SimDuration>(scaled);
}

void Cluster::note_attempt_progress(NodeId worker, double duration_s) {
  if (!options_.enable_straggler_detection) return;
  // The reference is the cluster-mean completed-attempt duration *before*
  // this completion was folded in; with nothing completed yet there is no
  // baseline and the sample is discarded.
  if (global_map_stats_.second == 0) return;
  const double mean_s =
      global_map_stats_.first / static_cast<double>(global_map_stats_.second);
  if (!(mean_s > 0.0)) return;
  const auto w = static_cast<std::size_t>(worker);
  const double ratio = duration_s / mean_s;
  const double alpha = options_.straggler_detect_ewma_alpha;
  progress_ewma_[w] = progress_samples_[w] == 0
                          ? ratio
                          : alpha * ratio + (1.0 - alpha) * progress_ewma_[w];
  ++progress_samples_[w];
}

void Cluster::straggler_decision(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  if (detected_slow_[w]) {
    if (sim_.now() < slow_until_[w]) return;
    // Probation re-admission: forget the old EWMA so the node earns its
    // standing back from fresh observations instead of its history.
    detected_slow_[w] = false;
    progress_ewma_[w] = 0.0;
    progress_samples_[w] = 0;
    ++straggler_readmissions_;
    if (tracer_ != nullptr) tracer_->straggler_cleared(worker);
    try_assign_node(worker);
    return;
  }
  if (progress_samples_[w] < options_.straggler_detect_min_samples) return;
  if (progress_ewma_[w] < options_.straggler_detect_ratio) return;
  // Never sideline below two open workers: mitigation must not make the
  // cluster unschedulable (same floor as blacklisting).
  std::size_t open = 0;
  for (std::size_t i = 0; i < dead_.size(); ++i) {
    if (node_open_for_launch(i)) ++open;
  }
  if (open <= 2) return;
  detected_slow_[w] = true;
  ++slow_strikes_[w];
  // Exponential backoff: each repeat offense doubles the timeout, capped at
  // 16x so a recovered node is not sidelined forever.
  const auto shift = std::min<std::size_t>(slow_strikes_[w] - 1, 4);
  slow_until_[w] = sim_.now() + (options_.straggler_backoff << shift);
  ++stragglers_detected_;
  if (tracer_ != nullptr) {
    tracer_->straggler_detected(worker, progress_ewma_[w]);
  }
}

void Cluster::maybe_clone(JobId job, std::size_t map_index, NodeId original) {
  if (!options_.enable_task_cloning) return;
  if (running_clones_ >= clone_budget_slots_) return;
  if (options_.clone_job_max_maps != 0 &&
      jobs_.job(job).total_maps() > options_.clone_job_max_maps) {
    return;  // cloning is reserved for small jobs (the cheap-to-hedge ones)
  }
  const auto it = running_maps_.find(task_key(job, map_index));
  if (it == running_maps_.end()) return;
  const MapTaskState& state = it->second;
  if (state.attempts.size() != 1) return;
  // Same target scan as speculation: a free open slot, preferring one local
  // to the block; detected-slow nodes are never clone targets.
  NodeId best = kInvalidNode;
  for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
    if (!node_open_for_launch(w) || slots_.free_maps(w) == 0) continue;
    if (static_cast<NodeId>(w) == original) continue;
    const auto node = static_cast<NodeId>(w);
    if (locator_->is_local(node, state.block)) {
      best = node;
      break;
    }
    if (best == kInvalidNode) best = node;
  }
  if (best == kInvalidNode) return;
  launch_clone(best, job, map_index);
}

void Cluster::launch_clone(NodeId worker, JobId job, std::size_t map_index) {
  const auto w = static_cast<std::size_t>(worker);
  const sched::MapTaskSpec task = jobs_.job(job).spec.maps[map_index];
  const storage::BlockMeta meta = name_node_->block(task.block);
  slots_.take_map(w);
  ++clones_launched_;
  ++running_clones_;
  jobs_.launch_clone(job);

  const bool node_local = locator_->is_local(worker, task.block);
  if (tracer_ != nullptr) {
    const auto loc = node_local ? sched::Locality::kNodeLocal
                     : locator_->is_rack_local(worker, task.block)
                         ? sched::Locality::kRackLocal
                         : sched::Locality::kOffRack;
    tracer_->clone_launched(worker, job, map_index, static_cast<int>(loc));
  }
  const ReadPlan plan = plan_read(worker, task.block, task.bytes, node_local);
  const SimDuration compute =
      straggler_compute(worker, options_.map_setup + task.cpu);
  SimDuration duration = compute + plan.duration;
  const NodeId src = plan.src;
  const bool remote_flow = plan.remote_flow;
  duration = static_cast<SimDuration>(static_cast<double>(duration) *
                                      node_slowdown_[w]);
  // The clone streams the block through this node too — the DARE hook
  // applies exactly as for any other attempt.
  {
    obs::PhaseScope prof(profiler_, obs::Phase::kReplication);
    policies_[w]->on_map_task(meta, node_local);
  }

  const double duration_s = to_seconds(duration);
  auto& state = running_maps_[task_key(job, map_index)];
  MapAttempt attempt;
  attempt.node = worker;
  attempt.started = sim_.now();
  attempt.speculative = false;
  attempt.clone = true;
  attempt.holds_flow = remote_flow;
  attempt.flow_src = src;
  attempt.completion = sim_.after(
      duration, [this, job, map_index, worker, remote_flow, src, duration_s] {
        on_map_attempt_finished(job, map_index, worker, remote_flow, src,
                                duration_s);
      });
  state.attempts.push_back(std::move(attempt));
}

void Cluster::retire_clone(JobId job) {
  if (running_clones_ == 0) {
    throw std::logic_error("Cluster: retire_clone with none running");
  }
  --running_clones_;
  jobs_.finish_clone(job);
}

void Cluster::on_map_attempt_finished(JobId job, std::size_t map_index,
                                      NodeId worker, bool remote_flow,
                                      NodeId src, double duration_s) {
  if (remote_flow) network_->flow_finished(src, worker);
  const auto wi = static_cast<std::size_t>(worker);
  const auto key = task_key(job, map_index);
  const auto state_it = running_maps_.find(key);
  if (state_it == running_maps_.end()) {
    throw std::logic_error("Cluster: attempt completion for unknown task");
  }
  MapTaskState& state = state_it->second;

  // Locate this attempt.
  const auto att_it =
      std::find_if(state.attempts.begin(), state.attempts.end(),
                   [worker](const MapAttempt& a) { return a.node == worker; });
  if (att_it == state.attempts.end()) {
    throw std::logic_error("Cluster: attempt not registered");
  }

  if (dead_[wi] || node_partitioned(wi)) {
    // The node died (or its rack fell behind a partition) mid-attempt: its
    // tracker never reports back, so nobody learns anything here. The
    // attempt stays registered as a zombie until the name node detects the
    // loss via missed heartbeats and cleanup_node_attempts() requeues the
    // task (or a blip heal sweeps it). Only the network flow is torn down
    // (done above) — mark it released so the sweep won't double release it.
    att_it->holds_flow = false;
    return;
  }

  const bool was_speculative = att_it->speculative;
  const bool was_clone = att_it->clone;
  state.attempts.erase(att_it);
  slots_.give_map(wi);
  // A clone's budget is returned the moment it reports back, win or fail —
  // the erase above is the one place every self-finishing clone passes.
  if (was_clone) retire_clone(job);

  // Injected attempt failure (bad disk, JVM crash): the attempt completes
  // but reports failure. Unlike a kill by node loss, this *does* count
  // against the Hadoop retry budget.
  if (fault_process_ && fault_process_->sample_task_failure()) {
    ++task_attempt_failures_;
    if (tracer_ != nullptr) {
      tracer_->task_attempt_fault(worker, job,
                                  static_cast<std::int64_t>(map_index));
    }
    if (was_clone) {
      // For the wins + killed == launched ledger a faulted clone counts as
      // killed; its whole runtime was wasted.
      ++clones_killed_;
      clone_wasted_work_ += from_seconds(duration_s);
      if (tracer_ != nullptr) tracer_->clone_killed(worker, job, map_index);
    }
    note_node_task_failure(worker);
    const auto failures = ++map_attempt_failures_[key];
    if (failures >= options_.max_task_attempts) {
      fail_job(job);
      return;
    }
    if (state.attempts.empty()) {
      // No speculative sibling still running: back to the pending queue.
      if (tracer_ != nullptr) tracer_->map_requeued(worker, job, map_index);
      jobs_.requeue_running_map(job, map_index, state.original_locality);
      ++task_reexecutions_;
      running_maps_.erase(state_it);
    }
    try_assign_all();
    return;
  }

  // This attempt wins the task.
  if (was_speculative) ++speculative_wins_;
  if (was_clone) ++clone_wins_;
  if (tracer_ != nullptr) {
    tracer_->map_finished(worker, job, map_index, duration_s, was_speculative);
  }
  // Feed the straggler detector before folding this completion into the
  // stats it normalizes against.
  note_attempt_progress(worker, duration_s);
  // Speculation-estimator stats fold in before the completion transition:
  // if this map finishes the job, its runtime (and the per-job stats entry)
  // is released inside complete_map.
  {
    auto& [sum_s, count] = job_map_stats_[job];
    sum_s += duration_s;
    ++count;
  }
  global_map_stats_.first += duration_s;
  ++global_map_stats_.second;
  const auto done = jobs_.complete_map(job, sim_.now());
  if (tracer_ != nullptr && done.job_done) {
    tracer_->job_finished(job, to_seconds(sim_.now() - done.arrival));
  }

  // Kill the losing attempts: cancel their completion events, release the
  // network flows they held, and free their slots now (Hadoop sends a kill
  // to the slower attempt).
  for (auto& other : state.attempts) {
    const bool cancelled = other.completion.cancel();
    if (other.clone) {
      // A losing clone retires here whether its completion was still
      // pending (a real kill) or already fired as a zombie on a dead node —
      // the erase below destroys it either way, unseen by any later sweep.
      ++clones_killed_;
      clone_wasted_work_ += sim_.now() - other.started;
      if (tracer_ != nullptr) tracer_->clone_killed(other.node, job, map_index);
      retire_clone(job);
    } else if (cancelled && tracer_ != nullptr) {
      tracer_->map_killed(other.node, job, map_index);
    }
    if (cancelled) {
      if (!other.clone) ++speculative_killed_;
      if (other.holds_flow) {
        network_->flow_finished(other.flow_src, other.node);
      }
      if (!dead_[static_cast<std::size_t>(other.node)]) {
        slots_.give_map(static_cast<std::size_t>(other.node));
      }
    }
  }
  running_maps_.erase(state_it);

  if (run_finished()) cancel_pending_churn();

  if (done.reduces_ready) {
    // Reduces just became launchable; offer slots cluster-wide.
    try_assign_all();
  } else {
    try_assign_node(worker);
  }
}

bool Cluster::run_finished() const {
  return ran_ && jobs_.all_jobs().size() == total_jobs_ && jobs_.all_done();
}

void Cluster::speculation_tick() {
  for (const auto& rt : jobs_.active_jobs()) {
    const JobId id = rt.spec.id;
    // Hadoop speculates only once a job has dispatched all its maps.
    if (!rt.pending_maps.empty() || rt.running_maps == 0) continue;
    // Estimate the expected map duration: the job's own completed maps when
    // available, else the cluster-wide mean (covers single-map jobs).
    const auto stats_it = job_map_stats_.find(id);
    double mean_s = 0.0;
    if (stats_it != job_map_stats_.end() && stats_it->second.second > 0) {
      mean_s = stats_it->second.first /
               static_cast<double>(stats_it->second.second);
    } else if (global_map_stats_.second > 0) {
      mean_s = global_map_stats_.first /
               static_cast<double>(global_map_stats_.second);
    } else {
      continue;  // nothing has ever completed: no estimate yet
    }
    for (std::size_t map_index = 0; map_index < rt.spec.maps.size();
         ++map_index) {
      const auto it = running_maps_.find(task_key(id, map_index));
      if (it == running_maps_.end()) continue;
      MapTaskState& state = it->second;
      if (state.attempts.size() != 1) continue;  // already speculated
      const double age_s = to_seconds(sim_.now() - state.attempts[0].started);
      if (age_s < options_.speculation_threshold * mean_s) continue;
      // Find a free open slot, preferring one local to the block. A
      // detected-slow node is never a backup target — launching the hedge
      // on a suspect defeats its purpose.
      NodeId best = kInvalidNode;
      for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
        if (!node_open_for_launch(w) || slots_.free_maps(w) == 0) continue;
        if (static_cast<NodeId>(w) == state.attempts[0].node) continue;
        const auto node = static_cast<NodeId>(w);
        if (locator_->is_local(node, state.block)) {
          best = node;
          break;
        }
        if (best == kInvalidNode) best = node;
      }
      if (best != kInvalidNode) launch_speculative(best, id, map_index);
    }
  }
  if (!run_finished()) {
    sim_.after(options_.speculation_check, [this] { speculation_tick(); });
  }
}

void Cluster::launch_reduce(NodeId worker, JobId job) {
  const auto w = static_cast<std::size_t>(worker);
  jobs_.launch_reduce(job);
  slots_.take_reduce(w);
  const auto& spec = jobs_.job(job).spec;

  // Reduces suffer degraded-mode compute and tail inflation exactly like
  // maps (the shuffle leg below is network-bound and stays untouched).
  SimDuration duration =
      straggler_compute(worker, options_.reduce_setup + spec.reduce_cpu);
  const Bytes shuffle =
      spec.reduces > 0 ? spec.shuffle_bytes / static_cast<Bytes>(spec.reduces)
                       : 0;
  NodeId src = worker;
  bool flows = false;
  if (shuffle > 0 && data_nodes_.size() > 1) {
    // Map outputs are spread across the cluster; model the shuffle as one
    // aggregate fetch from a random other live node.
    for (std::size_t attempt = 0; attempt < 8 * data_nodes_.size();
         ++attempt) {
      const auto cand =
          static_cast<NodeId>(rng_.uniform_int(data_nodes_.size()));
      if (cand != worker && !dead_[static_cast<std::size_t>(cand)] &&
          (!netfault_active_ || network_->reachable(cand, worker))) {
        src = cand;
        break;
      }
    }
    if (src != worker) {
      duration += network_->transfer_duration(src, worker, shuffle);
      network_->flow_started(src, worker);
      flows = true;
    }
  }

  const std::uint64_t attempt_id = next_reduce_attempt_++;
  if (tracer_ != nullptr) {
    tracer_->reduce_launched(worker, job,
                             static_cast<std::int64_t>(attempt_id));
  }
  const double duration_s = to_seconds(duration);
  ReduceAttempt attempt;
  attempt.job = job;
  attempt.node = worker;
  attempt.holds_flow = flows;
  attempt.flow_src = src;
  attempt.completion = sim_.after(
      duration, [this, attempt_id, job, worker, src, flows, duration_s] {
        if (flows) network_->flow_finished(src, worker);
        const auto it = running_reduces_.find(attempt_id);
        if (it == running_reduces_.end()) {
          throw std::logic_error("Cluster: unknown reduce attempt completed");
        }
        const auto wi = static_cast<std::size_t>(worker);
        if (dead_[wi] || node_partitioned(wi)) {
          // Zombie completion on a dead or partitioned tracker: nobody
          // hears about it. The attempt stays registered until heartbeat
          // detection (or a blip heal) sweeps the node; only its flow
          // (already released) is gone.
          it->second.holds_flow = false;
          return;
        }
        running_reduces_.erase(it);
        slots_.give_reduce(wi);
        if (fault_process_ && fault_process_->sample_task_failure()) {
          ++task_attempt_failures_;
          if (tracer_ != nullptr) {
            tracer_->task_attempt_fault(
                worker, job, static_cast<std::int64_t>(attempt_id));
          }
          note_node_task_failure(worker);
          const auto failures = ++reduce_attempt_failures_[job];
          if (failures >= options_.max_task_attempts) {
            fail_job(job);
            return;
          }
          if (tracer_ != nullptr) {
            tracer_->reduce_requeued(worker, job,
                                     static_cast<std::int64_t>(attempt_id));
          }
          jobs_.requeue_running_reduce(job);
          ++task_reexecutions_;
          try_assign_all();
          return;
        }
        if (tracer_ != nullptr) {
          tracer_->reduce_finished(
              worker, job, static_cast<std::int64_t>(attempt_id), duration_s);
        }
        const auto done = jobs_.complete_reduce(job, sim_.now());
        if (tracer_ != nullptr && done.job_done) {
          tracer_->job_finished(job, to_seconds(sim_.now() - done.arrival));
        }
        if (run_finished()) cancel_pending_churn();
        try_assign_node(worker);
      });
  running_reduces_.emplace(attempt_id, std::move(attempt));
}

void Cluster::fail_node(NodeId worker, faults::FaultKind kind,
                        SimDuration downtime) {
  const auto w = static_cast<std::size_t>(worker);
  if (dead_[w]) return;  // double-kill of an already-dead worker: no-op
  std::size_t live_physical = 0;
  for (std::size_t i = 0; i < dead_.size(); ++i) {
    if (!dead_[i]) ++live_physical;
  }
  if (live_physical <= 1) {
    throw std::logic_error("Cluster: cannot fail the last live worker");
  }
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  if (tracer_ != nullptr) {
    tracer_->node_failed(worker, static_cast<int>(kind), to_seconds(downtime));
  }
  dead_[w] = true;
  death_time_[w] = sim_.now();
  death_kind_[w] = kind;
  ++fault_epoch_[w];
  slots_.clear_node(w);
  heartbeat_event_[w].cancel();
  next_failure_[w].cancel();
  ++node_failures_;
  if (kind == faults::FaultKind::kPermanent) {
    ++permanent_failures_;
    // The disk is gone with the node; blocks only it held are lost unless
    // another replica survives somewhere.
    data_nodes_[w]->wipe_disk();
  } else {
    ++transient_failures_;
    const std::uint64_t epoch = fault_epoch_[w];
    recover_event_[w] =
        sim_.after(std::max<SimDuration>(downtime, from_millis(1)),
                   [this, worker, epoch] { recover_node(worker, epoch); });
  }
  // Crucially, the name node is NOT told: it finds out on its own when the
  // node misses detection_missed_heartbeats consecutive heartbeats (see
  // detection_tick), exactly like a real JobTracker/NameNode expiry.
}

void Cluster::detection_tick() {
  if (run_finished()) return;  // post-run drain: stop monitoring
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  const SimDuration timeout =
      options_.heartbeat_interval *
      static_cast<SimDuration>(options_.detection_missed_heartbeats);
  for (NodeId overdue : name_node_->overdue_nodes(sim_.now(), timeout)) {
    declare_node_dead(overdue);
  }
  monitor_event_ =
      sim_.after(options_.heartbeat_interval, [this] { detection_tick(); });
}

void Cluster::declare_node_dead(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  if (declared_dead_[w]) return;
  // A node may be declared while physically alive when its rack is
  // partitioned: the beats are sent but never delivered, which from the
  // master's chair is indistinguishable from a dead tracker.
  DARE_INVARIANT(dead_[w] || node_partitioned(w),
                 "Cluster: declaring a physically live, reachable node dead "
                 "(node " + std::to_string(w) + ")");
  declared_dead_[w] = true;
  ++failures_detected_;
  detection_latency_total_ +=
      sim_.now() -
      (dead_[w] ? death_time_[w]
                : rack_partition_start_[static_cast<std::size_t>(
                      node_rack_[w])]);
  // A partitioned-but-alive node keeps its slots in the ledger until now;
  // they leave the pool exactly like a dead node's (restored at the heal).
  if (!dead_[w]) slots_.clear_node(w);
  // The name node drops every replica location on the node; blocks that
  // fell under their replication factor enter the repair queue.
  const auto under_replicated = name_node_->node_failed(worker);
  if (options_.enable_rereplication) {
    for (BlockId bid : under_replicated) queue_repair(bid);
  }
  // The JobTracker side of the same expiry: every attempt on the node is
  // presumed lost and its task requeued.
  cleanup_node_attempts(worker);
  try_assign_all();
}

void Cluster::cleanup_node_attempts(NodeId worker) {
  // Deterministic sweep order: running_maps_ is an unordered_map, so pull
  // the keys out and sort before touching job state.
  std::vector<std::uint64_t> keys;
  keys.reserve(running_maps_.size());
  // dare-lint: allow(unordered-iteration) -- keys are sorted before use.
  for (const auto& [key, state] : running_maps_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const auto it = running_maps_.find(key);
    MapTaskState& state = it->second;
    const auto att_it = std::find_if(
        state.attempts.begin(), state.attempts.end(),
        [worker](const MapAttempt& a) { return a.node == worker; });
    if (att_it == state.attempts.end()) continue;
    const auto sweep_job = static_cast<JobId>(key >> 20);
    const auto sweep_index = static_cast<std::size_t>(key & 0xFFFFF);
    // A still-pending completion is cancelled here; if it already fired as
    // a zombie, its flow was released at fire time (holds_flow false).
    if (att_it->completion.cancel() && att_it->holds_flow) {
      network_->flow_finished(att_it->flow_src, att_it->node);
    }
    if (att_it->clone) {
      // The node died with the clone on it: its budget comes back here.
      ++clones_killed_;
      clone_wasted_work_ += sim_.now() - att_it->started;
      if (tracer_ != nullptr) {
        tracer_->clone_killed(worker, sweep_job, sweep_index);
      }
      retire_clone(sweep_job);
    } else if (tracer_ != nullptr) {
      tracer_->map_killed(worker, sweep_job, sweep_index);
    }
    state.attempts.erase(att_it);
    if (state.attempts.empty()) {
      const auto job = static_cast<JobId>(key >> 20);
      const auto map_index = static_cast<std::size_t>(key & 0xFFFFF);
      if (tracer_ != nullptr) tracer_->map_requeued(worker, job, map_index);
      jobs_.requeue_running_map(job, map_index, state.original_locality);
      ++task_reexecutions_;
      running_maps_.erase(it);
    }
  }
  for (auto it = running_reduces_.begin(); it != running_reduces_.end();) {
    if (it->second.node != worker) {
      ++it;
      continue;
    }
    if (it->second.completion.cancel() && it->second.holds_flow) {
      network_->flow_finished(it->second.flow_src, worker);
    }
    if (tracer_ != nullptr) {
      tracer_->reduce_requeued(worker, it->second.job,
                               static_cast<std::int64_t>(it->first));
    }
    jobs_.requeue_running_reduce(it->second.job);
    ++task_reexecutions_;
    it = running_reduces_.erase(it);
  }
}

void Cluster::recover_node(NodeId worker, std::uint64_t epoch) {
  const auto w = static_cast<std::size_t>(worker);
  if (fault_epoch_[w] != epoch || !dead_[w]) return;  // stale event
  if (run_finished()) return;
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  dead_[w] = false;
  ++fault_epoch_[w];
  if (declared_dead_[w] && node_partitioned(w)) {
    // The node rebooted behind a still-partitioned uplink: the master
    // cannot see it, so reconciliation waits for the heal (end_partition
    // finds the node declared and re-registers it then). Only the local
    // heartbeat chain restarts — its beats are lost at the boundary.
    heartbeat(w);
    if (fault_process_) schedule_stochastic_failure(worker, fault_epoch_[w]);
    return;
  }
  if (declared_dead_[w]) {
    reregister_node(worker);
  } else {
    ++node_rejoins_;
    // Blip shorter than the detection timeout: the name node never
    // noticed, its metadata is still correct, and the disk (and policy
    // state) is intact. But the rebooted tracker does not resume tasks —
    // requeue whatever was running here. (The name node never saw this
    // rejoin, so the tracer event comes from the cluster glue.)
    if (tracer_ != nullptr) {
      tracer_->node_rejoined(worker, /*full_reregistration=*/false);
    }
    cleanup_node_attempts(worker);
    slots_.restore_node(w);
  }
  heartbeat(w);  // re-registration heartbeat, restarts the periodic chain
  if (fault_process_) schedule_stochastic_failure(worker, fault_epoch_[w]);
  try_assign_all();
}

void Cluster::reregister_node(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  auto& dn = *data_nodes_[w];
  declared_dead_[w] = false;
  ++node_rejoins_;
  // Full re-registration: anything the tracker had queued for its next
  // block report is stale (a dead process lost it; a partitioned one may
  // have marked replicas the master re-replicated meanwhile); the disk
  // contents are the only truth left, and the name node reconciles against
  // them.
  dn.clear_pending_reports();
  // Disk scrub on re-registration: a corrupt copy is only offered back to
  // the name node when it is the last copy anywhere (resurrecting a lost
  // block beats deleting its final bytes); otherwise quarantine it
  // locally. The name node scrubbed this node's locations at declaration,
  // so any remaining location is another live holder.
  for (BlockId b : dn.corrupt_blocks()) {
    if (name_node_->locations(b).empty()) {
      record_data_loss(b);
    } else if (dn.quarantine_replica(b)) {
      ++replicas_quarantined_;
      // The name node holds no location for this copy, so the tracer
      // event comes from the cluster glue.
      if (tracer_ != nullptr) tracer_->replica_quarantined(worker, b);
    }
  }
  std::vector<BlockId> statics;
  for (const auto& meta : dn.static_blocks()) statics.push_back(meta.id);
  std::sort(statics.begin(), statics.end());
  std::vector<BlockId> dynamics = dn.dynamic_blocks();
  std::sort(dynamics.begin(), dynamics.end());
  const auto report = name_node_->node_rejoined(worker, statics, dynamics);
  for (BlockId pruned : report.pruned_static) {
    // Re-replication won the race while we were gone: the stale copy is
    // surplus now, drop it (exactly once — node_rejoined prunes only what
    // it just adopted back above target).
    dn.remove_static_block(pruned);
    ++overreplication_prunes_;
  }
  // The policy's in-memory state (recency lists, aging ring, budgets) is
  // stale; rebuild it from the surviving replicas.
  policies_[w]->rebuild(dn.dynamic_block_metas());
  blacklisted_[w] = false;
  node_task_failures_[w] = 0;
  slots_.restore_node(w);
}

void Cluster::schedule_stochastic_failure(NodeId worker, std::uint64_t epoch) {
  if (!fault_process_) return;
  const SimDuration uptime = fault_process_->sample_uptime();
  next_failure_[static_cast<std::size_t>(worker)] =
      sim_.after(uptime, [this, worker, epoch] {
        const auto wi = static_cast<std::size_t>(worker);
        if (fault_epoch_[wi] != epoch || dead_[wi]) return;  // stale
        if (run_finished()) return;
        const auto sample = fault_process_->sample_failure();
        std::vector<NodeId> victims{worker};
        if (sample.rack_correlated && topology_->rack_count() > 1) {
          // Correlated blast radius: a switch/PDU event takes the whole
          // rack down with the primary victim.
          for (std::size_t v = 0; v < data_nodes_.size(); ++v) {
            if (v == wi || dead_[v]) continue;
            if (topology_->same_rack(worker, static_cast<NodeId>(v))) {
              victims.push_back(static_cast<NodeId>(v));
            }
          }
        }
        const std::size_t floor = std::max<std::size_t>(
            fault_process_->params().min_live_workers, 2);
        for (NodeId victim : victims) {
          std::size_t live = 0;
          for (std::size_t i = 0; i < dead_.size(); ++i) {
            if (!dead_[i]) ++live;
          }
          if (live <= floor) break;  // keep the cluster schedulable
          if (dead_[static_cast<std::size_t>(victim)]) continue;
          fail_node(victim, sample.kind, sample.downtime);
        }
        // If the floor guard spared the primary victim, re-arm its clock;
        // otherwise recovery (transient deaths) re-arms it.
        if (!dead_[wi]) schedule_stochastic_failure(worker, epoch);
      });
}

void Cluster::schedule_degrade_onset(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  degrade_event_[w] =
      sim_.after(straggler_process_->sample_degrade_uptime(), [this, worker] {
        if (run_finished()) return;
        // Fixed draws per onset regardless of node state, so the straggler
        // stream position never depends on who is currently dead or
        // degraded.
        const auto sample = straggler_process_->sample_degrade();
        begin_degrade(worker, sample.duration, sample.rack_correlated);
        if (sample.rack_correlated && topology_->rack_count() > 1) {
          // The shared cause (overloaded switch, hot aisle) co-degrades the
          // whole rack and supersedes each peer's own pending onset.
          for (std::size_t v = 0; v < data_nodes_.size(); ++v) {
            const auto peer = static_cast<NodeId>(v);
            if (peer == worker || degraded_[v]) continue;
            if (!topology_->same_rack(worker, peer)) continue;
            degrade_event_[v].cancel();
            begin_degrade(peer, sample.duration, true);
          }
        }
      });
}

void Cluster::begin_degrade(NodeId worker, SimDuration duration,
                            bool rack_correlated) {
  const auto w = static_cast<std::size_t>(worker);
  if (degraded_[w]) return;
  degraded_[w] = true;
  ++degraded_onsets_;
  if (tracer_ != nullptr) {
    tracer_->node_degraded(worker, rack_correlated,
                           options_.stragglers.compute_slowdown);
  }
  degrade_event_[w] =
      sim_.after(duration, [this, worker] { end_degrade(worker); });
}

void Cluster::end_degrade(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  degraded_[w] = false;
  ++degraded_recoveries_;
  if (tracer_ != nullptr) tracer_->node_degrade_ended(worker);
  if (run_finished()) return;
  schedule_degrade_onset(worker);  // the chain continues until the run ends
}

void Cluster::schedule_partition_onset(RackId rack) {
  const auto r = static_cast<std::size_t>(rack);
  partition_event_[r] =
      sim_.after(netfault_process_->sample_partition_uptime(), [this, rack] {
        if (run_finished()) return;
        begin_partition(rack, netfault_process_->sample_partition_duration());
      });
}

void Cluster::begin_partition(RackId rack, SimDuration duration) {
  const auto r = static_cast<std::size_t>(rack);
  // Already partitioned (a scripted event overlapping the stochastic chain):
  // the existing episode's heal event stands, and the new onset is absorbed.
  if (run_finished() || rack_partitioned_[r]) return;
  // The cluster always keeps a connected side with the master: an onset
  // that would cut off the last connected rack is absorbed (the chain
  // continues, the episode just doesn't happen).
  std::size_t connected = 0;
  for (const bool partitioned : rack_partitioned_) {
    if (!partitioned) ++connected;
  }
  if (connected <= 1) {
    if (netfault_process_ != nullptr) schedule_partition_onset(rack);
    return;
  }
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  rack_partitioned_[r] = true;
  rack_partition_start_[r] = sim_.now();
  network_->set_rack_partitioned(rack, true);
  ++partition_episodes_;
  if (tracer_ != nullptr) {
    tracer_->partition_started(rack, to_seconds(duration));
  }
  partition_event_[r] =
      sim_.after(duration, [this, rack] { end_partition(rack); });
}

void Cluster::end_partition(RackId rack) {
  const auto r = static_cast<std::size_t>(rack);
  if (!rack_partitioned_[r]) return;
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  rack_partitioned_[r] = false;
  network_->set_rack_partitioned(rack, false);
  ++partitions_healed_;
  if (tracer_ != nullptr) tracer_->partition_healed(rack);
  for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
    if (node_rack_[w] != rack) continue;
    // Physically dead nodes reconcile on their own recovery path (which
    // defers to the heal only while the uplink is down — not any more).
    if (dead_[w]) continue;
    if (declared_dead_[w]) {
      // The detector declared this node during the outage and the master
      // re-replicated around it; rejoin prunes the surplus exactly once.
      reregister_node(static_cast<NodeId>(w));
    } else {
      // Blip shorter than the detection timeout: the master never noticed.
      // Tasks launched before the cut died with their lost completions —
      // requeue them like a transient reboot.
      if (tracer_ != nullptr) {
        tracer_->node_rejoined(static_cast<NodeId>(w),
                               /*full_reregistration=*/false);
      }
      cleanup_node_attempts(static_cast<NodeId>(w));
      slots_.restore_node(w);
    }
    // Refresh the master's freshness stamp: the node was beating into the
    // void the whole outage, and without this the detector would
    // (re-)declare a healed, reachable node.
    name_node_->heartbeat_received(static_cast<NodeId>(w), sim_.now());
  }
  try_assign_all();
  if (run_finished()) return;
  if (netfault_process_ != nullptr) schedule_partition_onset(rack);
}

void Cluster::schedule_link_onset(RackId rack) {
  const auto r = static_cast<std::size_t>(rack);
  link_event_[r] =
      sim_.after(netfault_process_->sample_link_uptime(), [this, rack] {
        if (run_finished()) return;
        begin_link_degrade(rack, netfault_process_->sample_link_duration());
      });
}

void Cluster::begin_link_degrade(RackId rack, SimDuration duration) {
  const auto r = static_cast<std::size_t>(rack);
  if (run_finished() || network_->uplink_degraded(rack)) return;
  network_->set_uplink_degraded(rack, true);
  ++link_degrade_episodes_;
  if (tracer_ != nullptr) {
    tracer_->link_degraded(rack, to_seconds(duration));
  }
  link_event_[r] =
      sim_.after(duration, [this, rack] { end_link_degrade(rack); });
}

void Cluster::end_link_degrade(RackId rack) {
  network_->set_uplink_degraded(rack, false);
  if (run_finished()) return;
  schedule_link_onset(rack);  // the chain continues until the run ends
}

void Cluster::fail_job(JobId job) {
  // Cancel the job's in-flight map attempts (sorted key sweep for
  // determinism — running_maps_ is unordered).
  std::vector<std::uint64_t> keys;
  // dare-lint: allow(unordered-iteration) -- keys are sorted before use.
  for (const auto& [key, state] : running_maps_) {
    if (static_cast<JobId>(key >> 20) == job) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const auto it = running_maps_.find(key);
    for (auto& attempt : it->second.attempts) {
      const auto map_index = static_cast<std::size_t>(key & 0xFFFFF);
      const bool cancelled = attempt.completion.cancel();
      if (attempt.clone) {
        // Clone retirement must happen for zombies too (cancel() == false):
        // the erase below destroys the attempt unseen by any later sweep.
        ++clones_killed_;
        clone_wasted_work_ += sim_.now() - attempt.started;
        if (tracer_ != nullptr) {
          tracer_->clone_killed(attempt.node, job, map_index);
        }
        retire_clone(job);
      } else if (cancelled && tracer_ != nullptr) {
        tracer_->map_killed(attempt.node, job, map_index);
      }
      if (cancelled) {
        if (attempt.holds_flow) {
          network_->flow_finished(attempt.flow_src, attempt.node);
        }
        if (!dead_[static_cast<std::size_t>(attempt.node)]) {
          slots_.give_map(static_cast<std::size_t>(attempt.node));
        }
      }
      // cancel() == false: zombie on a dead node, flow already released.
    }
    running_maps_.erase(it);
  }
  for (auto it = running_reduces_.begin(); it != running_reduces_.end();) {
    if (it->second.job != job) {
      ++it;
      continue;
    }
    if (it->second.completion.cancel()) {
      if (tracer_ != nullptr) {
        tracer_->reduce_requeued(it->second.node, job,
                                 static_cast<std::int64_t>(it->first));
      }
      if (it->second.holds_flow) {
        network_->flow_finished(it->second.flow_src, it->second.node);
      }
      if (!dead_[static_cast<std::size_t>(it->second.node)]) {
        slots_.give_reduce(static_cast<std::size_t>(it->second.node));
      }
    }
    it = running_reduces_.erase(it);
  }
  jobs_.fail_job(job, sim_.now());
  ++failed_jobs_;
  if (tracer_ != nullptr) tracer_->job_failed(job);
  if (run_finished()) cancel_pending_churn();
  try_assign_all();
}

void Cluster::note_node_task_failure(NodeId worker) {
  const auto w = static_cast<std::size_t>(worker);
  ++node_task_failures_[w];
  if (options_.node_blacklist_threshold == 0) return;  // disabled
  if (blacklisted_[w]) return;
  if (node_task_failures_[w] < options_.node_blacklist_threshold) return;
  // Never blacklist below two usable workers — the run must stay
  // schedulable even on a sick cluster.
  std::size_t usable = 0;
  for (std::size_t i = 0; i < dead_.size(); ++i) {
    if (node_usable(i)) ++usable;
  }
  if (usable <= 2) return;
  blacklisted_[w] = true;
  ++blacklisted_total_;
}

void Cluster::cancel_pending_churn() {
  monitor_event_.cancel();
  for (auto& handle : next_failure_) handle.cancel();
  for (auto& handle : recover_event_) handle.cancel();
  for (auto& handle : degrade_event_) handle.cancel();
  // Racks partitioned at run end stay partitioned: post-run repair retries
  // see them unreachable and abandon, which is the intended teardown.
  for (auto& handle : partition_event_) handle.cancel();
  for (auto& handle : link_event_) handle.cancel();
  latent_event_.cancel();
  // The gauge sampler must die with the run too: a sample event left in the
  // queue would fire after the last job and inflate the makespan.
  sampler_event_.cancel();
}

RepairClass Cluster::classify_repair(BlockId block) const {
  // Critical = at most one replica a repair read could actually reach right
  // now. Partitioned holders are alive but useless as sources, so they don't
  // count toward redundancy.
  std::size_t live = 0;
  for (NodeId cand : name_node_->locations(block)) {
    const auto c = static_cast<std::size_t>(cand);
    if (dead_[c] || node_partitioned(c)) continue;
    ++live;
  }
  return live <= 1 ? RepairClass::kCritical : RepairClass::kBulk;
}

void Cluster::queue_repair(BlockId block) {
  // The scheduler dedups: a block already queued keeps its original enqueue
  // stamp (repair latency measures first queue entry to repair-copy
  // registration) and at most gets upgraded to critical in place.
  if (repairs_.enqueue(block, classify_repair(block), sim_.now())) {
    ++repairs_enqueued_;
  }
  if (!repair_tick_scheduled_) {
    repair_tick_scheduled_ = true;
    sim_.after(options_.rereplication_interval,
               [this] { rereplication_tick(); });
  }
}

void Cluster::on_replica_delta(BlockId block, NodeId node, bool added) {
  if (locality_index_ != nullptr) {
    if (added) {
      locality_index_->replica_added(block, node);
    } else {
      locality_index_->replica_removed(block, node);
    }
  }
  if (!track_unavailability_) return;
  // Unavailability windows: a block with zero visible locations is
  // unreadable (short of the archival penalty) until a rejoin or repair
  // restores a location. The observer fires after every mutation, so the
  // location list reflects the new state.
  if (added) {
    const auto it = unavail_open_.find(block);
    if (it != unavail_open_.end()) {
      ++unavailability_windows_;
      unavailability_total_ += sim_.now() - it->second;
      unavail_open_.erase(it);
    }
  } else if (name_node_->locations(block).empty()) {
    unavail_open_.emplace(block, sim_.now());
  }
  // One-replica exposure windows: time spent down to a single visible copy
  // (the next loss is forever). Armed only after the initial load —
  // single-replica files at load time are a configuration choice, not an
  // exposure event.
  if (!exposure_armed_) return;
  const std::size_t visible = name_node_->locations(block).size();
  if (visible == 1) {
    one_replica_open_.emplace(block, sim_.now());  // no-op if already open
  } else {
    const auto it = one_replica_open_.find(block);
    if (it != one_replica_open_.end()) {
      ++one_replica_windows_;
      one_replica_total_ += sim_.now() - it->second;
      one_replica_open_.erase(it);
    }
  }
}

void Cluster::schedule_latent_corruption() {
  latent_event_ = sim_.after(corruption_->sample_latent_interval(), [this] {
    if (run_finished()) return;
    // Fixed two draws per strike (node pick, replica pick) regardless of
    // the outcome, so the corruption stream stays aligned no matter how
    // the cluster state evolves.
    const double node_u = corruption_->pick_fraction();
    const double replica_u = corruption_->pick_fraction();
    const std::size_t w = std::min(
        data_nodes_.size() - 1,
        static_cast<std::size_t>(node_u *
                                 static_cast<double>(data_nodes_.size())));
    if (!dead_[w]) {
      const auto& dn = *data_nodes_[w];
      // Deterministic victim order: statics in placement order, then
      // dynamics sorted by id.
      std::vector<BlockId> victims;
      for (const auto& meta : dn.static_blocks()) victims.push_back(meta.id);
      std::vector<BlockId> dynamics = dn.dynamic_blocks();
      std::sort(dynamics.begin(), dynamics.end());
      victims.insert(victims.end(), dynamics.begin(), dynamics.end());
      if (!victims.empty()) {
        const std::size_t pick = std::min(
            victims.size() - 1,
            static_cast<std::size_t>(
                replica_u * static_cast<double>(victims.size())));
        mark_replica_corrupt(static_cast<NodeId>(w), victims[pick]);
      }
    }
    schedule_latent_corruption();
  });
}

void Cluster::retry_repair(RepairScheduler::Entry entry) {
  // Post-run there is nothing left to protect and no heal is coming —
  // convert the retry into an abandon so the ledger closes out.
  if (run_finished()) {
    abandon_repair(entry);
    return;
  }
  if (repairs_.contains(entry.block)) {
    // A fresh enqueue raced the in-flight transfer (another replica of the
    // same block died). That entry supersedes this one; close this one out
    // as abandoned so both enqueue counts stay terminally accounted.
    abandon_repair(entry);
    return;
  }
  ++repair_retries_;
  ++entry.retries;
  // Exponential backoff, shift-capped so a long outage can't overflow the
  // arithmetic; the heal-time tick drains the queue regardless of backoff
  // pressure because retries re-classify below.
  const auto shift = std::min<std::uint32_t>(entry.retries - 1, 4);
  entry.ready = sim_.now() + (options_.repair_retry_backoff << shift);
  entry.cls = classify_repair(entry.block);
  if (tracer_ != nullptr) {
    tracer_->repair_retried(entry.block, entry.retries);
  }
  repairs_.reinsert(entry);
  if (!repair_tick_scheduled_) {
    repair_tick_scheduled_ = true;
    sim_.after(options_.rereplication_interval,
               [this] { rereplication_tick(); });
  }
}

void Cluster::abandon_repair(const RepairScheduler::Entry&) {
  ++repairs_abandoned_;
}

void Cluster::land_repair(const RepairScheduler::Entry& entry) {
  ++repairs_landed_;
  ++rereplicated_blocks_;
  // Repair latency measures first queue entry to repair-copy registration
  // (retries included — backoff time is real exposure time).
  repair_latency_total_ += sim_.now() - entry.enqueued;
}

void Cluster::rereplication_tick() {
  repair_tick_scheduled_ = false;
  obs::PhaseScope prof(profiler_, obs::Phase::kChurn);
  // Post-run the tick becomes a closer: backoff gates are ignored and
  // retryable outcomes abandon instead, so the ledger reaches its terminal
  // state without waiting out backoff timers.
  const bool post_run = run_finished();
  std::size_t started = 0;
  bool critical_blocked = false;
  std::vector<RepairScheduler::Entry> deferred;
  const std::size_t max_pops = repairs_.size();
  std::size_t pops = 0;
  while (pops < max_pops && started < options_.rereplication_batch) {
    ++pops;
    auto popped = repairs_.pop_front();
    if (!popped.has_value()) break;
    RepairScheduler::Entry e = *popped;
    if (!post_run && e.ready > sim_.now()) {
      // Still backing off; defer without charging the batch budget.
      deferred.push_back(e);
      continue;
    }
    if (repairs_.policy() == RepairPolicy::kPrioritized && critical_blocked &&
        e.cls == RepairClass::kBulk) {
      // A critical entry is waiting on uplink bandwidth: bulk repairs must
      // not steal the capacity it is waiting for.
      ++repair_preemptions_;
      if (tracer_ != nullptr) tracer_->repair_preempted(e.block);
      deferred.push_back(e);
      continue;
    }
    // A rejoining node may have re-adopted a stale replica since this block
    // was queued — don't copy what is no longer under-replicated.
    if (!name_node_->is_under_replicated(e.block)) {
      abandon_repair(e);
      continue;
    }
    const auto& meta = name_node_->block(e.block);

    // Source: a live *reachable* holder, preferring one not detected slow
    // (graceful degradation — a limping disk makes a poor repair source,
    // but it still beats abandoning the repair).
    NodeId src = kInvalidNode;
    bool unreachable_holder = false;
    {
      NodeId fallback = kInvalidNode;
      for (NodeId cand : name_node_->locations(e.block)) {
        const auto c = static_cast<std::size_t>(cand);
        if (dead_[c]) continue;
        if (node_partitioned(c)) {
          unreachable_holder = true;
          continue;
        }
        if (!detected_slow_[c]) {
          src = cand;
          break;
        }
        if (fallback == kInvalidNode) fallback = cand;
      }
      if (src == kInvalidNode) src = fallback;
    }
    if (src == kInvalidNode) {
      if (unreachable_holder && !post_run) {
        // Every surviving copy sits behind a partitioned boundary. The
        // block is not lost — re-enqueue with backoff and try again after
        // the heal instead of dropping the repair.
        retry_repair(e);
      } else {
        // Block truly lost (or the run is over), nothing to copy.
        abandon_repair(e);
      }
      continue;
    }
    if (verify_reads_ && checksum_fails(src, e.block, meta.size)) {
      // The repair read discovered its source corrupt. kQuarantined
      // re-queues the block via handle_bad_block (a fresh ledger entry; a
      // different source gets tried next tick); kLastReplica abandons the
      // repair — re-queuing would spin on the same corrupt final copy.
      // Either way this entry is terminally closed.
      handle_bad_block(e.block, src);
      abandon_repair(e);
      continue;
    }

    NodeId dst = kInvalidNode;
    for (std::size_t attempt = 0; attempt < 4 * data_nodes_.size();
         ++attempt) {
      const auto cand =
          static_cast<std::size_t>(rng_.uniform_int(data_nodes_.size()));
      if (!dead_[cand] && !node_partitioned(cand) &&
          !data_nodes_[cand]->has_any_copy(e.block)) {
        dst = static_cast<NodeId>(cand);
        break;
      }
    }
    if (dst == kInvalidNode) {
      // Every live reachable node already has a copy; abandon (a location
      // scrub will re-queue if it matters again).
      abandon_repair(e);
      continue;
    }

    // Bandwidth-aware admission: bound concurrent repair transfers crossing
    // any one rack uplink so repair traffic cannot saturate a link jobs
    // need. Deferral is free (no batch charge, no retry penalty) — the
    // capacity frees up as in-flight transfers complete.
    const auto src_rack = static_cast<std::size_t>(
        node_rack_[static_cast<std::size_t>(src)]);
    const auto dst_rack = static_cast<std::size_t>(
        node_rack_[static_cast<std::size_t>(dst)]);
    const bool cross_rack = src_rack != dst_rack;
    if (options_.max_repairs_per_uplink != 0 && cross_rack &&
        (repair_uplink_inflight_[src_rack] >=
             options_.max_repairs_per_uplink ||
         repair_uplink_inflight_[dst_rack] >=
             options_.max_repairs_per_uplink)) {
      if (e.cls == RepairClass::kCritical) critical_blocked = true;
      deferred.push_back(e);
      continue;
    }

    const SimDuration transfer =
        network_->transfer_duration(src, dst, meta.size);
    network_->flow_started(src, dst);
    if (cross_rack) {
      ++repair_uplink_inflight_[src_rack];
      ++repair_uplink_inflight_[dst_rack];
    }
    ++started;
    ++repairs_inflight_;
    sim_.after(transfer, [this, e, src, dst, meta, cross_rack, src_rack,
                          dst_rack] {
      network_->flow_finished(src, dst);
      if (cross_rack) {
        --repair_uplink_inflight_[src_rack];
        --repair_uplink_inflight_[dst_rack];
      }
      --repairs_inflight_;
      const auto d = static_cast<std::size_t>(dst);
      if (netfault_active_ && !network_->reachable(src, dst)) {
        // A partition severed the transfer mid-flight; the bytes never
        // landed. Retry from a reachable replica after backoff.
        ++repair_timeouts_;
        retry_repair(e);
        return;
      }
      if (dead_[d] || declared_dead_[d] || node_partitioned(d)) {
        // Destination died (or was declared dead / cut off) mid-copy; the
        // copy is void. Retry elsewhere.
        retry_repair(e);
        return;
      }
      if (!name_node_->is_under_replicated(e.block)) {
        // A rejoin beat the transfer: the in-flight copy is surplus and is
        // discarded on arrival.
        ++overreplication_prunes_;
        abandon_repair(e);
        return;
      }
      if (name_node_->add_repair_replica(e.block, dst)) {
        data_nodes_[d]->add_static_block(meta);
        land_repair(e);
      } else {
        abandon_repair(e);
      }
    });
  }
  for (const auto& e : deferred) repairs_.reinsert(e);
  if (!repairs_.empty()) {
    repair_tick_scheduled_ = true;
    sim_.after(options_.rereplication_interval,
               [this] { rereplication_tick(); });
  }
}

std::vector<double> Cluster::live_node_popularity() const {
  std::vector<double> pis;
  pis.reserve(data_nodes_.size());
  for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
    if (dead_[w]) continue;
    const auto& dn = data_nodes_[w];
    double pi = 0.0;
    for (const auto& meta : dn->static_blocks()) {
      pi += static_cast<double>(meta.size) * popularity_of(meta.file);
    }
    for (BlockId bid : dn->dynamic_blocks()) {
      const auto& meta = name_node_->block(bid);
      pi += static_cast<double>(meta.size) * popularity_of(meta.file);
    }
    pis.push_back(pi);
  }
  return pis;
}

void Cluster::sample_tick() {
  obs::PhaseScope prof(profiler_, obs::Phase::kSampling);
  obs::TimeSeriesSample s;
  s.t = sim_.now();
  s.pending_maps = jobs_.total_pending_maps();
  s.pending_reduces = jobs_.total_pending_reduces();
  s.running_tasks = jobs_.total_running();
  std::size_t total_slots = 0;
  std::size_t busy_slots = 0;
  std::size_t live = 0;
  Bytes dynamic_bytes = 0;
  for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
    if (dead_[w]) continue;
    ++live;
    total_slots +=
        options_.map_slots_per_node + options_.reduce_slots_per_node;
    busy_slots += (options_.map_slots_per_node - slots_.free_maps(w)) +
                  (options_.reduce_slots_per_node - slots_.free_reduces(w));
    dynamic_bytes += data_nodes_[w]->dynamic_bytes();
  }
  if (total_slots > 0) {
    s.slot_utilization =
        static_cast<double>(busy_slots) / static_cast<double>(total_slots);
  }
  if (node_budget_bytes_ > 0 && live > 0) {
    s.budget_occupancy =
        static_cast<double>(dynamic_bytes) /
        (static_cast<double>(node_budget_bytes_) * static_cast<double>(live));
  }
  s.popularity_cv = coefficient_of_variation(live_node_popularity());
  tracer_->series().add(s);
  if (!run_finished()) {
    sampler_event_ = sim_.after(options_.trace_sample_interval,
                                [this] { sample_tick(); });
  }
}

double Cluster::dedicated_runtime_s(const sched::JobSpec& spec) const {
  const double workers = static_cast<double>(data_nodes_.size());
  const double map_slots =
      workers * static_cast<double>(options_.map_slots_per_node);
  const double reduce_slots =
      workers * static_cast<double>(options_.reduce_slots_per_node);

  double mean_map_s = 0.0;
  for (const auto& task : spec.maps) {
    mean_map_s += to_seconds(options_.map_setup + task.cpu) +
                  static_cast<double>(task.bytes) /
                      mb_per_sec(options_.profile.disk.mean);
  }
  mean_map_s /= static_cast<double>(spec.maps.size());
  const double map_waves =
      std::ceil(static_cast<double>(spec.maps.size()) / map_slots);

  double reduce_s = 0.0;
  double reduce_waves = 0.0;
  if (spec.reduces > 0) {
    const double shuffle_per_reduce =
        static_cast<double>(spec.shuffle_bytes) /
        static_cast<double>(spec.reduces);
    reduce_s = to_seconds(options_.reduce_setup + spec.reduce_cpu) +
               shuffle_per_reduce / mb_per_sec(options_.profile.bandwidth.mean);
    reduce_waves =
        std::ceil(static_cast<double>(spec.reduces) / reduce_slots);
  }
  return map_waves * mean_map_s + reduce_waves * reduce_s;
}

void Cluster::scarlett_epoch() {
  std::unordered_map<FileId, Bytes> file_bytes;
  std::unordered_map<FileId, int> current_repl;
  for (FileId fid : name_node_->all_files()) {
    const auto& info = name_node_->file(fid);
    file_bytes[fid] = info.total_bytes();
    const auto it = scarlett_extra_replicas_.find(fid);
    current_repl[fid] =
        info.replication + (it == scarlett_extra_replicas_.end() ? 0 : it->second);
  }
  const auto orders = scarlett_->plan_epoch(
      scarlett_budget_total_ - scarlett_bytes_spent_, file_bytes,
      current_repl);
  for (const auto& order : orders) {
    const auto& info = name_node_->file(order.file);
    const int extra = order.target_replication - order.current_replication;
    for (int e = 0; e < extra; ++e) {
      for (BlockId bid : info.blocks) {
        const auto& meta = name_node_->block(bid);
        // Try a few random nodes that lack the block.
        for (int attempt = 0; attempt < 8; ++attempt) {
          const auto cand = static_cast<std::size_t>(
              rng_.uniform_int(data_nodes_.size()));
          if (data_nodes_[cand]->insert_dynamic(meta)) {
            // Proactive replication costs real network traffic — the core
            // difference from DARE's piggybacked replicas.
            scarlett_bytes_moved_ += static_cast<std::uint64_t>(meta.size);
            break;
          }
        }
      }
      scarlett_bytes_spent_ += info.total_bytes();
    }
    if (extra > 0) scarlett_extra_replicas_[order.file] += extra;
  }

  if (!run_finished()) {
    sim_.after(options_.scarlett.epoch, [this] { scarlett_epoch(); });
  }
}

void Cluster::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("Cluster::validate: " + what);
  };

  // Slot accounting.
  for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
    if (slots_.free_maps(w) > options_.map_slots_per_node) {
      fail("map slot overflow on node " + std::to_string(w));
    }
    if (slots_.free_reduces(w) > options_.reduce_slots_per_node) {
      fail("reduce slot overflow on node " + std::to_string(w));
    }
    if (dead_[w] && (slots_.free_maps(w) != 0 || slots_.free_reduces(w) != 0)) {
      fail("dead node " + std::to_string(w) + " advertises free slots");
    }
    // A partitioned node the detector declared dead was cleared from the
    // ledger (the master stopped scheduling on it) even though it is
    // physically alive; it must not advertise slots until the heal.
    if (!dead_[w] && declared_dead_[w] && node_partitioned(w) &&
        (slots_.free_maps(w) != 0 || slots_.free_reduces(w) != 0)) {
      fail("declared-dead partitioned node " + std::to_string(w) +
           " advertises free slots");
    }
  }

  // Repair-queue audit: membership index and queue agree, and every
  // first-time enqueue is accounted for — queued, in flight, landed, or
  // abandoned. Nothing leaks.
  if (!repairs_.consistent()) {
    fail("repair scheduler membership index diverges from its queue");
  }
  if (repairs_enqueued_ !=
      repairs_landed_ + repairs_abandoned_ + repairs_.size() +
          repairs_inflight_) {
    fail("repair ledger out of balance: enqueued " +
         std::to_string(repairs_enqueued_) + " != landed " +
         std::to_string(repairs_landed_) + " + abandoned " +
         std::to_string(repairs_abandoned_) + " + queued " +
         std::to_string(repairs_.size()) + " + inflight " +
         std::to_string(repairs_inflight_));
  }

  // Name-node <-> data-node agreement, block by block.
  for (FileId fid : name_node_->all_files()) {
    for (BlockId bid : name_node_->file(fid).blocks) {
      const auto& locs = name_node_->locations(bid);
      const auto& statics = name_node_->static_locations(bid);
      if (locs.size() < statics.size()) {
        fail("block " + std::to_string(bid) +
             " has fewer locations than static placements");
      }
      for (NodeId node : locs) {
        const auto n = static_cast<std::size_t>(node);
        if (n >= data_nodes_.size()) {
          fail("location references unknown node");
        }
        // Locations may legitimately reference a node that is physically
        // down but not yet *declared* dead — the name node only learns of
        // deaths through missed heartbeats. A declared-dead node, though,
        // must have been scrubbed from every location list.
        if (declared_dead_[n]) {
          fail("block " + std::to_string(bid) +
               " location references declared-dead node " + std::to_string(n));
        }
        // A registered location must be physically present — unless the
        // replica was evicted and the removal heartbeat has not fired yet;
        // in that window the block is still on disk (marked), which
        // has_any_copy covers. Physically-down nodes are exempt: a wiped
        // disk (permanent failure) diverges from metadata until detection.
        if (!dead_[n] && !data_nodes_[n]->has_any_copy(bid)) {
          fail("block " + std::to_string(bid) + " registered on node " +
               std::to_string(n) + " but not present there");
        }
        // Quarantined replicas must never be visible: report_bad_block
        // removes the location before the data node drops the copy.
        if (!dead_[n] && data_nodes_[n]->is_quarantined(bid)) {
          fail("block " + std::to_string(bid) +
               " location references a quarantined replica on node " +
               std::to_string(n));
        }
      }
      for (NodeId node : statics) {
        if (std::find(locs.begin(), locs.end(), node) == locs.end()) {
          fail("static placement missing from locations");
        }
      }
    }
  }

  // Every *reported* live dynamic replica is known to the name node; the
  // unreported window (insert -> next heartbeat) is allowed.
  // Conversely checked above: every registered location is present.

  // Job-table totals. Released runtimes (retired jobs under the O(active)
  // residency regime) are skipped: they contributed zero to every aggregate
  // when they retired, and their metrics were snapshotted by the observer.
  std::size_t pending_maps = 0;
  std::size_t pending_reduces = 0;
  std::size_t running = 0;
  for (JobId id : jobs_.all_jobs()) {
    if (!jobs_.has_job(id)) continue;
    const auto& rt = jobs_.job(id);
    pending_maps += rt.pending_maps.size();
    pending_reduces += rt.pending_reduces;
    running += rt.running_maps + rt.running_reduces;
    if (!rt.failed &&
        rt.completed_maps + rt.running_maps + rt.pending_maps.size() !=
            rt.total_maps()) {
      fail("map accounting broken for job " + std::to_string(id));
    }
    if (!rt.failed &&
        rt.completed_reduces + rt.running_reduces + rt.pending_reduces !=
            rt.spec.reduces) {
      fail("reduce accounting broken for job " + std::to_string(id));
    }
    if (rt.failed &&
        (rt.pending_maps.size() + rt.running_maps + rt.pending_reduces +
         rt.running_reduces) != 0) {
      fail("failed job " + std::to_string(id) + " still has live work");
    }
    if (rt.done() && rt.completion == kTimeNever) {
      fail("finished job without completion time");
    }
  }
  if (pending_maps != jobs_.total_pending_maps() ||
      pending_reduces != jobs_.total_pending_reduces() ||
      running != jobs_.total_running()) {
    fail("job table aggregate counters diverge from per-job state");
  }
  if (!slots_.consistent()) {
    fail("slot ledger totals diverge from per-node free-slot counts");
  }

  // With no work in flight, every network flow must have been released and
  // every live node must have every slot back — a missing slot means some
  // attempt-removal path forgot its ++free_*_slots_ (the speculation /
  // cloning first-finisher-wins paths are the usual suspects).
  if (jobs_.all_done()) {
    for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
      if (network_->active_flows(static_cast<NodeId>(w)) != 0) {
        fail("leaked network flow on node " + std::to_string(w));
      }
      // Nodes behind a still-partitioned uplink are exempt: a declared one
      // had its slots cleared, and an undeclared one may hold slots for
      // zombie attempts that only the heal-time cleanup sweeps.
      if (dead_[w] || node_partitioned(w)) continue;
      if (slots_.free_maps(w) != options_.map_slots_per_node ||
          slots_.free_reduces(w) != options_.reduce_slots_per_node) {
        fail("node " + std::to_string(w) +
             " has unreturned task slots after the last job finished");
      }
    }
  }

  // Clone accounting: every clone-flagged running attempt holds exactly one
  // unit of the cluster budget and one unit of its job's count.
  std::size_t clone_attempts = 0;
  // dare-lint: allow(unordered-iteration) -- commutative count.
  for (const auto& [key, state] : running_maps_) {
    for (const auto& att : state.attempts) {
      if (att.clone) ++clone_attempts;
    }
  }
  if (clone_attempts != running_clones_) {
    fail("clone attempts in flight (" + std::to_string(clone_attempts) +
         ") diverge from the cluster clone count (" +
         std::to_string(running_clones_) + ")");
  }
  // Retired-but-unreleased jobs (release deferred while losing clones
  // drain) still hold clone counts, so this walks every resident runtime.
  std::size_t job_clones = 0;
  for (JobId id : jobs_.all_jobs()) {
    if (!jobs_.has_job(id)) continue;
    job_clones += jobs_.job(id).running_clones;
  }
  if (job_clones != running_clones_) {
    fail("per-job clone counts (" + std::to_string(job_clones) +
         ") diverge from the cluster clone count (" +
         std::to_string(running_clones_) + ")");
  }

  // Locality index <-> name node agreement: the replica mirror must match
  // the location map exactly, and for every active job's pending map the
  // index's answer must match the locator's on every node.
  if (locality_index_ != nullptr) {
    for (FileId fid : name_node_->all_files()) {
      for (BlockId bid : name_node_->file(fid).blocks) {
        const auto& locs = name_node_->locations(bid);
        if (locality_index_->replica_count(bid) != locs.size()) {
          fail("locality index mirrors " +
               std::to_string(locality_index_->replica_count(bid)) +
               " replicas of block " + std::to_string(bid) + ", name node has " +
               std::to_string(locs.size()));
        }
        for (NodeId node : locs) {
          if (!locality_index_->mirrors_replica(bid, node)) {
            fail("locality index misses replica of block " +
                 std::to_string(bid) + " on node " + std::to_string(node));
          }
        }
      }
    }
    for (const auto& rt : jobs_.active_jobs()) {
      const JobId id = rt.spec.id;
      for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
        const auto node = static_cast<NodeId>(w);
        std::size_t expected_node = 0;
        std::size_t expected_rack = 0;
        for (std::size_t mi : rt.pending_maps) {
          const BlockId block = rt.spec.maps[mi].block;
          if (locator_->is_local(node, block)) ++expected_node;
          if (locator_->is_rack_local(node, block)) ++expected_rack;
        }
        if (locality_index_->node_candidates(id, node).size() !=
            expected_node) {
          fail("node-candidate count diverges for job " + std::to_string(id) +
               " on node " + std::to_string(w));
        }
        if (locality_index_->rack_candidates(id, node).size() !=
            expected_rack) {
          fail("rack-candidate count diverges for job " + std::to_string(id) +
               " on node " + std::to_string(w));
        }
      }
    }
  }
}

void Cluster::on_job_retired(const sched::JobRuntime& rt) {
  if (rt.completion == kTimeNever) {
    throw std::logic_error("Cluster: job retired without completion time");
  }
  metrics::JobMetrics jm;
  jm.id = rt.spec.id;
  jm.arrival = rt.spec.arrival;
  jm.completion = rt.completion;
  jm.maps = rt.total_maps();
  jm.local_maps = rt.local_launches;
  jm.rack_local_maps = rt.rack_local_launches;
  jm.dedicated_runtime_s = dedicated_runtime_s(rt.spec);
  jm.failed = rt.failed;
  // arrival_seq is dense (admission order), so indexing by it reproduces
  // the all_jobs() iteration order of the old end-of-run collection loop.
  if (job_metrics_.size() <= rt.arrival_seq) {
    job_metrics_.resize(rt.arrival_seq + 1);
  }
  job_metrics_[rt.arrival_seq] = jm;

  // The job's per-task side tables die with it.
  job_map_stats_.erase(rt.spec.id);
  reduce_attempt_failures_.erase(rt.spec.id);
  for (std::size_t mi = 0; mi < rt.total_maps(); ++mi) {
    map_attempt_failures_.erase(task_key(rt.spec.id, mi));
  }
}

metrics::RunResult Cluster::collect_results() {
  metrics::RunResult result;

  // Close out the repair ledger: entries still queued at teardown (e.g.
  // waiting out a backoff for a heal that never came) are terminally
  // abandoned, in priority order so the drain itself is deterministic.
  for (const auto& e : repairs_.drain()) abandon_repair(e);

  // Per-job metrics: snapshotted by on_job_retired as each job finished
  // (the only copy — runtimes are released at retirement).
  if (job_metrics_.size() != total_jobs_) {
    throw std::logic_error("Cluster: job metrics incomplete at run end");
  }
  result.jobs = std::move(job_metrics_);

  // Replication activity.
  for (const auto& policy : policies_) {
    result.dynamic_replicas_created += policy->replicas_created();
  }
  for (const auto& dn : data_nodes_) {
    result.dynamic_replica_disk_writes += dn->dynamic_insertions();
  }
  result.proactive_replication_bytes = scarlett_bytes_moved_;
  result.task_reexecutions = task_reexecutions_;
  result.rereplicated_blocks = rereplicated_blocks_;
  result.blocks_lost = name_node_->lost_block_count();
  result.speculative_launched = speculative_launched_;
  result.speculative_wins = speculative_wins_;
  result.speculative_killed = speculative_killed_;
  result.degraded_onsets = degraded_onsets_;
  result.degraded_recoveries = degraded_recoveries_;
  result.tail_inflations = tail_inflations_;
  result.stragglers_detected = stragglers_detected_;
  result.straggler_readmissions = straggler_readmissions_;
  result.clones_launched = clones_launched_;
  result.clone_wins = clone_wins_;
  result.clones_killed = clones_killed_;
  result.clone_wasted_work_s = to_seconds(clone_wasted_work_);
  result.node_failures = node_failures_;
  result.transient_failures = transient_failures_;
  result.permanent_failures = permanent_failures_;
  result.failures_detected = failures_detected_;
  result.detection_latency_total_s = to_seconds(detection_latency_total_);
  result.node_rejoins = node_rejoins_;
  result.overreplication_prunes = overreplication_prunes_;
  result.task_attempt_failures = task_attempt_failures_;
  result.failed_jobs = failed_jobs_;
  result.blacklisted_nodes = blacklisted_total_;

  // Data-integrity accounting. Windows still open at run end close at the
  // makespan so unavailability_total_s never undercounts.
  result.corrupt_reads = corrupt_reads_;
  result.corrupt_replicas = corrupt_replicas_injected_;
  result.replicas_quarantined = replicas_quarantined_;
  result.data_loss_events = data_loss_events_;
  result.repair_latency_total_s = to_seconds(repair_latency_total_);
  // dare-lint: allow(unordered-iteration) -- commutative summation; the
  // result is independent of iteration order.
  for (const auto& [block, opened] : unavail_open_) {
    ++unavailability_windows_;
    unavailability_total_ += sim_.now() - opened;
  }
  unavail_open_.clear();
  result.unavailability_windows = unavailability_windows_;
  result.unavailability_total_s = to_seconds(unavailability_total_);

  // Network-fault and repair-ledger accounting. Exposure windows still open
  // at run end close at the makespan, mirroring the unavailability rule.
  // dare-lint: allow(unordered-iteration) -- commutative summation; the
  // result is independent of iteration order.
  for (const auto& [block, opened] : one_replica_open_) {
    ++one_replica_windows_;
    one_replica_total_ += sim_.now() - opened;
  }
  one_replica_open_.clear();
  result.partition_episodes = partition_episodes_;
  result.partitions_healed = partitions_healed_;
  result.link_degrade_episodes = link_degrade_episodes_;
  result.unreachable_reads = unreachable_reads_;
  result.repairs_enqueued = repairs_enqueued_;
  result.repairs_landed = repairs_landed_;
  result.repairs_abandoned = repairs_abandoned_;
  result.repair_retries = repair_retries_;
  result.repair_timeouts = repair_timeouts_;
  result.repair_preemptions = repair_preemptions_;
  result.one_replica_windows = one_replica_windows_;
  result.one_replica_total_s = to_seconds(one_replica_total_);

  // Popularity indices (Fig. 11). Block popularity = number of jobs that
  // accessed its file in this workload (snapshot taken at load time).
  // "Before" uses the static placement; "after" reflects the final
  // placement on live nodes.
  result.cv_before = coefficient_of_variation(cv_before_samples_);
  result.cv_after = coefficient_of_variation(live_node_popularity());

  result.makespan = sim_.now();
  metrics::finalize(result, map_time_stats_);
  return result;
}

namespace {

/// JobStream over an already-materialized job vector (the classic run()
/// path). Borrows the vector; the workload outlives the run.
class VectorJobStream final : public workload::JobStream {
 public:
  explicit VectorJobStream(const std::vector<workload::JobTemplate>& jobs)
      : jobs_(&jobs) {}
  std::optional<workload::JobTemplate> next() override {
    if (next_ == jobs_->size()) return std::nullopt;
    return (*jobs_)[next_++];
  }

 private:
  const std::vector<workload::JobTemplate>* jobs_;
  std::size_t next_ = 0;
};

}  // namespace

metrics::RunResult Cluster::run(const workload::Workload& workload) {
  return run_with(workload.catalog, workload.catalog_spec,
                  workload.file_access_counts(), workload.jobs.size(),
                  std::make_unique<VectorJobStream>(workload.jobs));
}

metrics::RunResult Cluster::run_stream(const workload::WorkloadSpec& spec) {
  return run_with(spec.catalog, spec.catalog_spec, spec.file_access_counts(),
                  spec.num_jobs, spec.open());
}

metrics::RunResult Cluster::run_with(
    const std::vector<workload::FileSpec>& catalog,
    const workload::CatalogSpec& catalog_spec,
    const std::vector<std::size_t>& access_counts, std::size_t total_jobs,
    std::unique_ptr<workload::JobStream> stream) {
  if (ran_) throw std::logic_error("Cluster: run() may only be called once");
  ran_ = true;
  total_jobs_ = total_jobs;
  arrivals_ = std::move(stream);
  job_metrics_.reserve(total_jobs_);

  load_files(catalog, catalog_spec, access_counts);
  // Exposure tracking arms only now: the load itself registers replicas one
  // at a time, and those transient single-copy states are not exposure.
  exposure_armed_ = true;
  create_policies();
  schedule_next_arrival();
  start_heartbeats();
  if (scarlett_) {
    sim_.after(options_.scarlett.epoch, [this] { scarlett_epoch(); });
  }
  for (const auto& failure : options_.failures) {
    if (failure.worker < 0 ||
        static_cast<std::size_t>(failure.worker) >= data_nodes_.size()) {
      throw std::invalid_argument("Cluster: failure for unknown worker");
    }
    sim_.at(failure.at, [this, failure] {
      fail_node(failure.worker, failure.kind, failure.downtime);
    });
  }
  for (const auto& ev : options_.corruption_events) {
    if (ev.node != kInvalidNode &&
        (ev.node < 0 ||
         static_cast<std::size_t>(ev.node) >= data_nodes_.size())) {
      throw std::invalid_argument(
          "Cluster: corruption event for unknown worker");
    }
    sim_.at(ev.at, [this, ev] {
      if (ev.node == kInvalidNode) {
        // Forced last-good-replica scenario: strike every currently
        // visible copy at once. (Corruption is silent — no location
        // mutates here, so iterating the list directly is safe.)
        for (NodeId holder : name_node_->locations(ev.block)) {
          mark_replica_corrupt(holder, ev.block);
        }
      } else {
        mark_replica_corrupt(ev.node, ev.block);
      }
    });
  }
  if (corruption_ != nullptr && options_.corruption.sector_mtbf_s > 0.0) {
    schedule_latent_corruption();
  }
  for (const auto& ev : options_.partition_events) {
    sim_.at(ev.at, [this, ev] { begin_partition(ev.rack, ev.duration); });
  }
  if (!options_.failures.empty() || options_.faults.enabled ||
      netfault_active_) {
    // Heartbeat-expiry monitor: the only way the name node learns of
    // deaths — and of partitions, whose lost beats look identical. Without
    // it a partitioned node's tasks would never requeue and the run would
    // hang. Runs every heartbeat interval until the workload finishes.
    monitor_event_ =
        sim_.after(options_.heartbeat_interval, [this] { detection_tick(); });
  }
  if (options_.faults.enabled) {
    for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
      schedule_stochastic_failure(static_cast<NodeId>(w), fault_epoch_[w]);
    }
  }
  if (straggler_process_ != nullptr) {
    for (std::size_t w = 0; w < data_nodes_.size(); ++w) {
      schedule_degrade_onset(static_cast<NodeId>(w));
    }
  }
  if (netfault_process_ != nullptr && topology_->rack_count() > 1) {
    // Single-rack topologies have no inter-rack boundary to partition or
    // degrade; the process still forked (stream discipline) but idles.
    for (std::size_t r = 0; r < topology_->rack_count(); ++r) {
      schedule_partition_onset(static_cast<RackId>(r));
      schedule_link_onset(static_cast<RackId>(r));
    }
  }
  if (options_.enable_speculation) {
    sim_.after(options_.speculation_check, [this] { speculation_tick(); });
  }
  if (tracer_ != nullptr && options_.trace_sample_interval > 0) {
    sampler_event_ = sim_.after(options_.trace_sample_interval,
                                [this] { sample_tick(); });
  }

  {
    obs::PhaseScope prof(profiler_, obs::Phase::kEventLoop);
    sim_.run();
  }

  if (!jobs_.all_done() || jobs_.all_jobs().size() != total_jobs_) {
    throw std::logic_error("Cluster: simulation drained with unfinished jobs");
  }
  if (options_.record_access_trace) {
    // Finish the audit trace: file metadata + horizon.
    for (FileId fid : name_node_->all_files()) {
      const auto& info = name_node_->file(fid);
      access_trace_.files.push_back(
          {fid, info.created, info.blocks.size()});
    }
    access_trace_.span = sim_.now();
  }
  return collect_results();
}

}  // namespace dare::cluster
