// Stable priority queue of timed callbacks for the discrete-event engine.
//
// Events at the same timestamp fire in insertion order (a strict sequence
// number breaks ties), which keeps heartbeat/scheduling interleavings
// deterministic. Events can be cancelled in O(1) (lazily: the heap entry is
// tombstoned and skipped at pop time).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/invariant.h"
#include "common/types.h"

namespace dare::sim {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }

  /// Cancel the event; returns true if it was still pending.
  bool cancel() {
    if (!pending()) return false;
    *state_ = true;
    if (live_) {
      DARE_INVARIANT(*live_ > 0,
                     "EventHandle: cancel would underflow the live count");
      --*live_;
    }
    return true;
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<bool> state, std::shared_ptr<std::size_t> live)
      : state_(std::move(state)), live_(std::move(live)) {}
  std::shared_ptr<bool> state_;  // true once fired or cancelled
  std::shared_ptr<std::size_t> live_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() : live_(std::make_shared<std::size_t>(0)) {}

  /// Schedule `cb` at absolute time `when`. Requires when >= 0.
  EventHandle schedule(SimTime when, Callback cb);

  /// True when no live (uncancelled) events remain.
  bool empty() const { return *live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return *live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  SimTime next_time() const;

  /// Pop and run the earliest live event; returns its timestamp.
  /// Requires !empty().
  SimTime pop_and_run();

  /// Drop everything (used when a simulation ends early).
  void clear();

 private:
  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    Callback cb;
    std::shared_ptr<bool> done;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Remove cancelled entries from the top of the heap.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_;
};

}  // namespace dare::sim
