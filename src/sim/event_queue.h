// Stable priority queue of timed callbacks for the discrete-event engine.
//
// Events at the same timestamp fire in insertion order (a strict sequence
// number breaks ties), which keeps heartbeat/scheduling interleavings
// deterministic. Events can be cancelled in O(1) (lazily: the slab record is
// tombstoned and its heap entry skipped and reclaimed at pop time).
//
// Storage layout (the event-engine inner loop of every simulation):
//  * a slab of event records recycled through an intrusive freelist — the
//    callback plus a generation counter live here, and a record is reused
//    as soon as its heap entry has been drained;
//  * a binary heap of 24-byte POD entries {when, seq, slot} ordered by
//    (when, seq).
// Scheduling therefore performs zero heap allocations in steady state
// (callbacks small enough for InlineFunction's buffer — all of this
// codebase's — never allocate either). The previous design paid two
// shared_ptr control blocks plus a std::function allocation per event.
//
// Handles are {queue, slot, generation} triples: the generation (the
// event's global sequence number) distinguishes the handle's event from any
// later occupant of the recycled slot, so stale handles report !pending()
// and refuse to cancel. Handles must not outlive their queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/invariant.h"
#include "common/types.h"
#include "sim/inline_function.h"

namespace dare::sim {

class EventQueue;

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const;

  /// Cancel the event; returns true if it was still pending.
  bool cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class EventQueue {
 public:
  using Callback = InlineFunction;

  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `cb` at absolute time `when`. Requires when >= 0.
  EventHandle schedule(SimTime when, Callback cb);

  /// True when no live (uncancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  SimTime next_time() const;

  /// Pop and run the earliest live event; returns its timestamp.
  /// Requires !empty().
  SimTime pop_and_run();

  /// Drop everything (used when a simulation ends early). Outstanding
  /// handles become non-pending; the slab and heap release their memory.
  void clear();

  /// Slab records currently allocated (live + tombstoned awaiting drain).
  /// Introspection for the memory-stability regression tests: with prompt
  /// skimming this stays bounded by the peak live count, proving cancelled
  /// events do not leak records.
  std::size_t slab_size() const { return slab_.size(); }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Record {
    Callback cb;
    /// Sequence number of the occupying event; a mismatch against a handle
    /// or heap entry means the slot was recycled since.
    std::uint64_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    /// Scheduled and neither fired nor cancelled. A dead record whose heap
    /// entry is still queued is a tombstone: it is reclaimed (returned to
    /// the freelist) when the entry reaches the top of the heap.
    bool live = false;
  };

  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Min-heap order on (when, seq) via std::push_heap/pop_heap with
  /// std::greater semantics expressed directly.
  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) const;
  /// Remove drained (cancelled) entries from the top of the heap and
  /// reclaim their tombstoned records.
  void skim() const;

  // skim() is logically const (it only reclaims dead storage), mirroring
  // the previous lazily-skimming design, so the containers are mutable.
  mutable std::vector<Record> slab_;
  mutable std::vector<HeapEntry> heap_;
  mutable std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

inline bool EventHandle::pending() const {
  if (queue_ == nullptr || slot_ >= queue_->slab_.size()) return false;
  const EventQueue::Record& record = queue_->slab_[slot_];
  return record.generation == generation_ && record.live;
}

inline bool EventHandle::cancel() {
  if (!pending()) return false;
  EventQueue::Record& record = queue_->slab_[slot_];
  record.live = false;
  record.cb = nullptr;  // release captured resources immediately
  DARE_INVARIANT(queue_->live_ > 0,
                 "EventHandle: cancel would underflow the live count");
  --queue_->live_;
  return true;
}

}  // namespace dare::sim
