// Small-buffer move-only callable for the event engine's hot path.
//
// std::function pays a heap allocation for any capture list larger than its
// small-object buffer (typically 16 bytes with libstdc++) plus RTTI-driven
// dispatch. Simulation callbacks routinely capture `this` plus a handful of
// ids and flags — 40-56 bytes — so nearly every scheduled event allocated.
// InlineFunction stores callables up to kInlineBytes in-place (covering
// every callback in this codebase) and only falls back to the heap beyond
// that, with a three-entry manual vtable instead of type erasure via
// virtual/RTTI machinery.
//
// Scope: `void()` signature only, move-only, not thread-safe — exactly what
// EventQueue needs. Behavioural contract mirrored from std::function where
// it matters to callers: default/nullptr-constructed compares false,
// invoking an empty function is undefined (EventQueue rejects it at
// schedule time).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dare::sim {

class InlineFunction {
 public:
  /// Largest capture list stored without a heap allocation. Sized to the
  /// fattest callback the simulator schedules (cluster map-completion
  /// lambdas: this + ids + flags + a BlockMeta ≈ 56 bytes) with headroom.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFunction() = default;
  // Implicit by design, mirroring std::function's nullptr conversion so
  // `callback = nullptr;` keeps working at call sites.
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // Implicit by design, mirroring std::function's converting constructor:
  // schedule_at(..., [this] { ... }) must work without a cast.
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kStoredInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &kHeapVTable<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }
  bool operator!() const { return vtable_ == nullptr; }

  /// Invoke. Precondition: non-empty.
  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src`, then destroy `src`'s payload.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool kStoredInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace dare::sim
