#include "sim/simulation.h"

#include <stdexcept>
#include <string>

#include "common/invariant.h"

namespace dare::sim {

EventHandle Simulation::at(SimTime when, EventQueue::Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulation: scheduling in the past");
  }
  return queue_.schedule(when, std::move(cb));
}

EventHandle Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  if (delay < 0) delay = 0;
  return queue_.schedule(now_ + delay, std::move(cb));
}

std::uint64_t Simulation::run(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    // Time monotonicity: `at` rejects scheduling in the past, so the next
    // event can never be earlier than the clock. A violation means a
    // callback corrupted the queue or the clock.
    DARE_INVARIANT(queue_.next_time() >= now_,
                   "Simulation: clock would move backwards (event at " +
                       std::to_string(queue_.next_time()) + ", now " +
                       std::to_string(now_) + ")");
    // Advance the clock before executing: callbacks observe now() == their
    // own timestamp.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++ran;
    ++executed_;
  }
  // Advance the clock to `until` only if we exhausted events before it; this
  // lets callers resume with a later horizon without time going backwards.
  if (queue_.empty() && until != std::numeric_limits<SimTime>::max() &&
      until > now_) {
    now_ = until;
  }
  return ran;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  DARE_INVARIANT(queue_.next_time() >= now_,
                 "Simulation: clock would move backwards in step()");
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++executed_;
  return true;
}

void Simulation::stop() { queue_.clear(); }

}  // namespace dare::sim
