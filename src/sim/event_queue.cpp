#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace dare::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  if (slab_.size() >= kNoSlot) {
    throw std::length_error("EventQueue: slab exhausted");
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) const {
  Record& record = slab_[slot];
  record.cb = nullptr;
  record.live = false;
  record.next_free = free_head_;
  free_head_ = slot;
}

EventHandle EventQueue::schedule(SimTime when, Callback cb) {
  if (when < 0) throw std::invalid_argument("EventQueue: negative time");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  const std::uint32_t slot = acquire_slot();
  const std::uint64_t seq = next_seq_++;
  Record& record = slab_[slot];
  record.cb = std::move(cb);
  record.generation = seq;
  record.live = true;
  heap_.push_back(HeapEntry{when, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return EventHandle(this, slot, seq);
}

void EventQueue::skim() const {
  // Drop cancelled entries from the top and recycle their tombstoned
  // records. An entry is stale exactly when its record was recycled
  // (generation mismatch — impossible here since tombstones hold the slot)
  // or tombstoned (live == false with matching generation).
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Record& record = slab_[top.slot];
    if (record.generation == top.seq && record.live) break;
    release_slot(top.slot);
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeNever : heap_.front().when;
}

SimTime EventQueue::pop_and_run() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty queue");
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  DARE_INVARIANT(live_ > 0,
                 "EventQueue: live count is zero with a live entry queued");
  // Move the callback out and free the slot BEFORE invoking: the callback
  // may schedule new events (slab growth/reuse) or clear() the queue, and
  // the record reference would not survive either.
  Callback cb = std::move(slab_[top.slot].cb);
  release_slot(top.slot);
  --live_;
  // The live count can never exceed the heap entries still queued plus the
  // one being fired; a mismatch means a cancel/clear path lost track.
  DARE_INVARIANT(live_ <= heap_.size(),
                 "EventQueue: live count exceeds queued entries");
  cb();
  return top.when;
}

void EventQueue::clear() {
  std::size_t dropped = 0;
  for (const HeapEntry& entry : heap_) {
    if (slab_[entry.slot].generation == entry.seq && slab_[entry.slot].live) {
      ++dropped;
    }
  }
  DARE_INVARIANT(dropped == live_,
                 "EventQueue: live count disagrees with queued entries");
  // Release the backing storage outright instead of tombstoning: a dead
  // slab would only pin memory, and stale handles stay safe because
  // pending() range-checks the slot against the (now empty) slab.
  heap_.clear();
  heap_.shrink_to_fit();
  slab_.clear();
  slab_.shrink_to_fit();
  free_head_ = kNoSlot;
  live_ = 0;
}

}  // namespace dare::sim
