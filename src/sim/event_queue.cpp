#include "sim/event_queue.h"

#include <stdexcept>

namespace dare::sim {

EventHandle EventQueue::schedule(SimTime when, Callback cb) {
  if (when < 0) throw std::invalid_argument("EventQueue: negative time");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  auto done = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(cb), done});
  ++*live_;
  return EventHandle(std::move(done), live_);
}

void EventQueue::skim() const {
  while (!heap_.empty() && *heap_.top().done) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeNever : heap_.top().when;
}

SimTime EventQueue::pop_and_run() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty queue");
  // Move the entry out before running: the callback may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  DARE_INVARIANT(*live_ > 0,
                 "EventQueue: live count is zero with a live entry queued");
  *entry.done = true;
  --*live_;
  // The live count can never exceed the heap entries still queued plus the
  // one being fired; a mismatch means a cancel/clear path lost track.
  DARE_INVARIANT(*live_ <= heap_.size(),
                 "EventQueue: live count exceeds queued entries");
  entry.cb();
  return entry.when;
}

void EventQueue::clear() {
  while (!heap_.empty()) {
    if (!*heap_.top().done) {
      DARE_INVARIANT(*live_ > 0,
                     "EventQueue: clear would underflow the live count");
      --*live_;
    }
    *heap_.top().done = true;
    heap_.pop();
  }
  DARE_INVARIANT(*live_ == 0, "EventQueue: live events remain after clear");
}

}  // namespace dare::sim
