// The discrete-event simulation driver: a clock plus an event queue.
//
// Components hold a reference to the Simulation and use `at`/`after` to
// schedule work; `run()` drains events in timestamp order, advancing the
// clock. One Simulation instance == one independent, single-threaded,
// fully deterministic experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "common/types.h"
#include "sim/event_queue.h"

namespace dare::sim {

class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventHandle at(SimTime when, EventQueue::Callback cb);

  /// Schedule after a relative delay (clamped to >= 0).
  EventHandle after(SimDuration delay, EventQueue::Callback cb);

  /// Run until the queue is empty or `until` is reached (events at exactly
  /// `until` still run). Returns the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Execute exactly one event if present; returns false when idle.
  bool step();

  /// Abort: drop all pending events. `run` then returns.
  void stop();

  /// Live events still queued.
  std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dare::sim
