#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"

namespace dare {

std::string fmt_fixed(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_fixed(fraction * 100.0, precision) + "%";
}

AsciiTable::AsciiTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("AsciiTable: no columns");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("AsciiTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_fixed(v, precision));
  add_row(std::move(cells));
}

void AsciiTable::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  if (!title.empty()) out << title << '\n';
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << (i ? "  " : "") << std::left << std::setw(static_cast<int>(widths[i]))
          << cells[i];
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (columns_.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void AsciiTable::to_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header(columns_);
  for (const auto& row : rows_) csv.row(row);
}

}  // namespace dare
