// Minimal key=value configuration store with typed accessors.
//
// Mirrors Hadoop's `*-site.xml` role: the paper's patch adds three knobs
// (p, threshold, budget); examples and benches parse overrides from the
// command line (`key=value` tokens) or from a config file.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dare {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" lines; '#' starts a comment; blank lines ignored.
  /// Throws std::invalid_argument on malformed lines.
  static Config from_string(const std::string& text);

  /// Parse a configuration file (same syntax as from_string).
  /// Throws std::runtime_error if the file cannot be read.
  static Config from_file(const std::string& path);

  /// Parse argv-style "key=value" tokens (tokens without '=' are ignored and
  /// returned so callers can treat them as positional arguments).
  static Config from_args(const std::vector<std::string>& args,
                          std::vector<std::string>* positional = nullptr);

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument when present but unparsable. get_double also
  /// rejects non-finite values ("nan", "inf", ...): no knob has a
  /// meaningful non-finite setting, and NaN would slip past bound-checking
  /// validators downstream.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in sorted order (for dumping effective configuration).
  std::vector<std::string> keys() const;

  /// Merge: values in `other` override values here.
  void merge(const Config& other);

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace dare
