#include "common/invariant.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dare {

namespace {

void default_handler(const InvariantViolation& violation) {
  std::fprintf(stderr, "DARE invariant violated at %s:%d\n  condition: %s\n  %s\n",
               violation.file, violation.line, violation.condition,
               violation.message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Atomic so a test installing a handler while pool threads run checks is
// not itself a data race.
std::atomic<InvariantHandler> g_handler{&default_handler};

}  // namespace

InvariantHandler set_invariant_handler(InvariantHandler handler) {
  InvariantHandler next = handler ? handler : &default_handler;
  InvariantHandler prev = g_handler.exchange(next);
  return prev == &default_handler ? nullptr : prev;
}

namespace detail {

void invariant_failed(const char* file, int line, const char* condition,
                      const std::string& message) {
  const InvariantViolation violation{file, line, condition, message};
  g_handler.load()(violation);
  // A conforming handler never returns; guarantee [[noreturn]] regardless.
  std::abort();
}

}  // namespace detail

}  // namespace dare
