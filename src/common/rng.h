// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator owns its own `Rng` seeded from
// a parent stream (`Rng::fork`), so adding a new consumer of randomness never
// perturbs the draws seen by existing components. The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and fully
// reproducible across platforms (no reliance on libstdc++ distribution
// implementations: all samplers are implemented in distributions.h/.cpp).
#pragma once

#include <array>
#include <cstdint>

namespace dare {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 generator with explicit, portable state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child stream. Deterministic: the i-th fork of a
  /// given parent state is always the same generator.
  Rng fork();

  /// Standard normal via Box-Muller (both values used across calls).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dare
