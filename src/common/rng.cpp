#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace dare {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 seeding as recommended by the xoshiro authors; guarantees the
  // state is never all-zero.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection; unbiased for any n > 0.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() {
  // Two outputs of the parent hashed through SplitMix64 give the child seed.
  std::uint64_t mix = next() ^ rotl(next(), 31);
  return Rng(splitmix64(mix));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

}  // namespace dare
