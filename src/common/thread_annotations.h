// Clang thread-safety annotations and the annotated mutex wrappers the
// repo's mutex-protected structures use (ThreadPool, EmpiricalCdf's
// lazy-sort mutex, the logging sink, the run_parallel sweep harness).
//
// The macros expand to clang's capability attributes so that building with
//   -Wthread-safety -Werror=thread-safety   (the `analyze` CMake preset)
// turns lock misuse — touching a DARE_GUARDED_BY member without its mutex,
// releasing a lock twice, calling a DARE_REQUIRES function unlocked — into a
// compile error before tsan ever has to catch an unlucky interleaving. On
// non-clang compilers every macro expands to nothing and `Mutex` is a plain
// std::mutex wrapper, so gcc builds are unaffected.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through std::lock_guard/std::unique_lock. Annotated code must
// therefore use the wrappers below:
//
//   dare::Mutex            an annotated DARE_CAPABILITY("mutex")
//   dare::MutexLock        std::lock_guard equivalent (scoped capability)
//   dare::UniqueMutexLock  unlockable guard usable with
//                          std::condition_variable_any via native()
//   dare::DualMutexLock    deadlock-free two-mutex guard (std::lock order)
#pragma once

#include <mutex>

#if defined(__clang__)
#define DARE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DARE_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define DARE_CAPABILITY(x) DARE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DARE_SCOPED_CAPABILITY \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member may only be touched while holding the given mutex.
#define DARE_GUARDED_BY(x) DARE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointee (not the pointer) is protected by the given mutex.
#define DARE_PT_GUARDED_BY(x) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the caller to already hold the mutex(es).
#define DARE_REQUIRES(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and holds them on return.
#define DARE_ACQUIRE(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es).
#define DARE_RELEASE(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define DARE_TRY_ACQUIRE(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es) (deadlock documentation).
#define DARE_EXCLUDES(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations for deadlock detection.
#define DARE_ACQUIRED_BEFORE(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define DARE_ACQUIRED_AFTER(...) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define DARE_RETURN_CAPABILITY(x) \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Every use must
/// carry a justification comment (enforced by dare_lint's
/// suppression-hygiene rule, same as NOLINT).
#define DARE_NO_THREAD_SAFETY_ANALYSIS \
  DARE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace dare {

/// std::mutex with capability attributes so clang's analysis can track it.
class DARE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DARE_ACQUIRE() { m_.lock(); }
  void unlock() DARE_RELEASE() { m_.unlock(); }
  bool try_lock() DARE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock (std::lock_guard equivalent) visible to the analysis.
class DARE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DARE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DARE_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped lock that additionally satisfies BasicLockable, so a
/// std::condition_variable_any can wait on it directly:
///
///   UniqueMutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);
///
/// The capability is treated as held for the guard's whole lifetime, which
/// matches what callers may rely on: a wait releases the mutex only while
/// blocked and reacquires it before returning.
class DARE_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mutex) DARE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~UniqueMutexLock() DARE_RELEASE() { mutex_.unlock(); }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  /// BasicLockable surface for condition_variable_any::wait only: the wait
  /// transiently unlocks and relocks while the analysis keeps treating the
  /// capability as held (true on both sides of the wait). Analysis is off
  /// here because a bare lock() would otherwise look like a leaked capability.
  void lock() DARE_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() DARE_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }  // ditto

 private:
  Mutex& mutex_;
};

/// Locks two *distinct* mutexes deadlock-free via address ordering, e.g.
/// for copy-assignment between two lock-protected objects. Passing the same
/// mutex twice would self-deadlock; callers must rule that out (the
/// self-assignment check does).
class DARE_SCOPED_CAPABILITY DualMutexLock {
 public:
  DualMutexLock(Mutex& a, Mutex& b) DARE_ACQUIRE(a, b) : a_(a), b_(b) {
    if (&a_ < &b_) {
      a_.lock();
      b_.lock();
    } else {
      b_.lock();
      a_.lock();
    }
  }
  ~DualMutexLock() DARE_RELEASE() {
    a_.unlock();
    b_.unlock();
  }

  DualMutexLock(const DualMutexLock&) = delete;
  DualMutexLock& operator=(const DualMutexLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

}  // namespace dare
