// Runtime invariant auditing.
//
// DARE_INVARIANT(cond, msg) documents and enforces an internal contract —
// conditions that must hold if the simulator's components agree with each
// other (event-time monotonicity, storage budgets, replica-map consistency).
// Unlike input validation (which always throws), invariants are about *our*
// bugs, so they compile to nothing in release builds and abort with full
// context in Debug and sanitized builds:
//
//   * enabled when NDEBUG is not defined (Debug builds), or when
//     DARE_ENABLE_INVARIANTS is defined (the DARE_SANITIZE=* presets and
//     -DDARE_INVARIANTS=ON define it for every build type);
//   * on failure the default handler prints file:line, the stringified
//     condition and the message to stderr, then calls std::abort() so
//     sanitizers and core dumps capture the state at the point of violation;
//   * tests can install a throwing handler (set_invariant_handler) to assert
//     that specific violations are caught without spawning death tests.
#pragma once

#include <string>

namespace dare {

struct InvariantViolation {
  const char* file = nullptr;
  int line = 0;
  const char* condition = nullptr;
  std::string message;
};

/// Handler invoked on a failed DARE_INVARIANT. Must not return normally
/// (abort or throw); if it does return, std::abort() runs anyway.
using InvariantHandler = void (*)(const InvariantViolation&);

/// Install a handler (tests use a throwing one); nullptr restores the
/// default abort-with-context handler. Returns the previous handler.
InvariantHandler set_invariant_handler(InvariantHandler handler);

namespace detail {
/// Dispatch a violation to the installed handler. [[noreturn]] even if the
/// handler misbehaves: falls through to std::abort().
[[noreturn]] void invariant_failed(const char* file, int line,
                                   const char* condition,
                                   const std::string& message);
}  // namespace detail

}  // namespace dare

#if !defined(NDEBUG) || defined(DARE_ENABLE_INVARIANTS)
#define DARE_INVARIANTS_ENABLED 1
#define DARE_INVARIANT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dare::detail::invariant_failed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                     \
  } while (false)
#else
#define DARE_INVARIANTS_ENABLED 0
// Compiled out, but the condition and message stay odr-used-free and
// syntax-checked so release builds can't rot.
#define DARE_INVARIANT(cond, msg) \
  do {                            \
    if (false) {                  \
      (void)(cond);               \
      (void)(msg);                \
    }                             \
  } while (false)
#endif
