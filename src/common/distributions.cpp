#include "common/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dare {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (!(lo > 0.0) || !(hi > lo) || !(alpha > 0.0)) {
    throw std::invalid_argument("BoundedPareto: need 0 < lo < hi, alpha > 0");
  }
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse transform of the bounded Pareto CDF.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return std::clamp(x, lo_, hi_);
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma >= 0.0)) throw std::invalid_argument("Lognormal: sigma >= 0");
}

double Lognormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double Lognormal::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2); }

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteDistribution: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DiscreteDistribution: zero total weight");
  }
  cdf_.resize(weights.size());
  double run = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    run += weights[i] / total;
    cdf_[i] = run;
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double DiscreteDistribution::cdf(std::size_t k) const {
  if (cdf_.empty()) return 0.0;
  return cdf_[std::min(k, cdf_.size() - 1)];
}

PiecewiseCdf::PiecewiseCdf(std::vector<Knot> knots) : knots_(std::move(knots)) {
  if (knots_.size() < 2 || knots_.front().cum != 0.0 ||
      knots_.back().cum != 1.0) {
    throw std::invalid_argument(
        "PiecewiseCdf: need >= 2 knots spanning cum 0..1");
  }
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (!(knots_[i].cum > knots_[i - 1].cum) ||
        !(knots_[i].value > knots_[i - 1].value)) {
      throw std::invalid_argument("PiecewiseCdf: knots must be increasing");
    }
  }
}

double PiecewiseCdf::quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  // Find the first knot with cum >= u and interpolate from its predecessor.
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), u,
      [](const Knot& k, double p) { return k.cum < p; });
  if (it == knots_.begin()) return knots_.front().value;
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double frac = (u - lo.cum) / (hi.cum - lo.cum);
  return lo.value + frac * (hi.value - lo.value);
}

double PiecewiseCdf::sample(Rng& rng) const { return quantile(rng.uniform()); }

}  // namespace dare
