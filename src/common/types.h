// Fundamental identifier and quantity types shared by every DARE subsystem.
//
// All simulation time is integral microseconds (`SimTime`) so that event
// ordering is exact and runs are bit-reproducible across platforms; helper
// constructors/accessors convert to and from floating-point seconds only at
// the API boundary.
#pragma once

#include <cstdint>
#include <limits>

namespace dare {

/// Simulation time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A duration in microseconds.
using SimDuration = std::int64_t;

/// Sentinel for "no time" / "never".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Convert seconds (floating point) to SimTime microseconds.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}

/// Convert SimTime microseconds to floating-point seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Convert milliseconds to SimTime microseconds.
constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * 1e3);
}

/// Convert SimTime microseconds to milliseconds.
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Bytes of data. 64-bit: block sizes are up to 256 MB, files span terabytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Bandwidth expressed in bytes per second.
using BytesPerSec = double;

/// Convert a MB/s figure (as the paper reports) to bytes/second (MB = 2^20).
constexpr BytesPerSec mb_per_sec(double mb) {
  return mb * static_cast<double>(kMiB);
}

/// Identifier of a cluster node (0-based dense index; node 0 is the master).
using NodeId = std::int32_t;

/// Identifier of a file in the distributed file system.
using FileId = std::int64_t;

/// Identifier of a data block. Blocks are globally unique, not per-file.
using BlockId = std::int64_t;

/// Identifier of a MapReduce job.
using JobId = std::int64_t;

/// Identifier of a task within the whole simulation (globally unique).
using TaskId = std::int64_t;

/// Identifier of a rack in the topology.
using RackId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FileId kInvalidFile = -1;
inline constexpr BlockId kInvalidBlock = -1;
inline constexpr JobId kInvalidJob = -1;
inline constexpr TaskId kInvalidTask = -1;

}  // namespace dare
