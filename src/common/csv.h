// CSV emission for experiment results so figure series can be re-plotted
// outside the harness. Handles quoting per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dare {

class CsvWriter {
 public:
  /// Writes to an externally owned stream (caller keeps it alive).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emit a header row. May only be called before any data rows.
  void header(const std::vector<std::string>& columns);

  /// Emit a row of pre-formatted cells.
  void row(const std::vector<std::string>& cells);

  /// Emit a row of doubles with full round-trip precision.
  void row(const std::vector<double>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream* out_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Quote a single CSV field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

/// Shortest round-trip decimal form of `d`, locale-independent
/// (std::to_chars): a grouping/comma-decimal global locale must never leak
/// separators into machine-read output. Shared by CSV and JSON emitters.
std::string format_double(double d);

}  // namespace dare
