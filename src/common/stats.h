// Statistics used throughout the evaluation: Welford online moments,
// min/mean/max/std summaries (Tables I and II), geometric mean of turnaround
// times (Eq. 1), coefficient of variation of popularity indices (Fig. 11),
// percentiles, histograms, and empirical CDFs (Figs. 3-6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace dare {

/// Single-pass (Welford) accumulator for count/mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel-sweep friendly; Chan et al.).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }
  /// Coefficient of variation: stddev / |mean|; 0 when mean == 0.
  double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values. Values <= 0 cannot enter the
/// log-domain mean and are skipped; when `skipped` is non-null the number of
/// skipped values is reported there so callers can account for them (a
/// zero-turnaround job silently dropped from GMTT inflates the mean).
/// Returns 0 when no positive values are present.
double geometric_mean(const std::vector<double>& values,
                      std::size_t* skipped = nullptr);

/// Coefficient of variation of a sample (population stddev / |mean|),
/// the paper's uniformity measure for Fig. 11. Returns 0 for empty input or
/// zero mean.
double coefficient_of_variation(const std::vector<double>& values);

/// Linear-interpolated percentile, q in [0, 100]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; finite
/// out-of-range samples are clamped into the edge buckets. Non-finite
/// samples (NaN, ±inf) cannot be binned — casting their bin index is
/// undefined behaviour — so they are counted in `dropped()` instead.
class Histogram {
 public:
  /// Throws std::invalid_argument unless bins > 0 and hi > lo (validated
  /// before any arithmetic uses the arguments).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Number of non-finite samples rejected by add(); never part of total().
  std::size_t dropped() const { return dropped_; }
  /// Fraction of samples in bin i (0 when empty).
  double proportion(std::size_t i) const;
  /// Midpoint value of bin i.
  double bin_center(std::size_t i) const;

 private:
  double lo_ = 0.0;
  double width_ = 0.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

/// Empirical CDF: collect samples, then query F(x) or the quantiles.
/// Fully synchronized: every member — mutation and the lazy sort behind
/// const queries alike — holds sort_mutex_, so one CDF may be shared across
/// run_parallel workers that interleave add() with queries. (Queries used
/// to read data_ before taking the lock, and add() never took it at all;
/// the clang thread-safety annotations below are what flagged that.)
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  EmpiricalCdf(const EmpiricalCdf& other);
  EmpiricalCdf(EmpiricalCdf&& other) noexcept;
  EmpiricalCdf& operator=(const EmpiricalCdf& other);
  EmpiricalCdf& operator=(EmpiricalCdf&& other) noexcept;

  void add(double x);
  void add_all(const std::vector<double>& xs);

  /// Fraction of samples <= x. 0 for empty.
  double fraction_at_or_below(double x) const;

  /// q-th quantile with linear interpolation, q in [0,1].
  double quantile(double q) const;

  std::size_t count() const;

  /// Reference to the sorted sample vector. The reference outlives the
  /// internal lock: do not call concurrently with mutation of this CDF.
  const std::vector<double>& sorted_values() const;

 private:
  void ensure_sorted_locked() const DARE_REQUIRES(sort_mutex_);

  mutable Mutex sort_mutex_;
  mutable std::vector<double> data_ DARE_GUARDED_BY(sort_mutex_);
  mutable bool sorted_ DARE_GUARDED_BY(sort_mutex_) = true;
};

/// min/mean/max/stddev row, formatted like the paper's Tables I and II.
struct SummaryRow {
  std::string label;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// Build a SummaryRow from raw samples.
SummaryRow summarize(const std::string& label,
                     const std::vector<double>& values);

}  // namespace dare
