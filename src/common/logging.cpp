#include "common/logging.h"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.h"

namespace dare {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct Logger::Impl {
  // level is lock-free (read on every DARE_LOG macro expansion); only the
  // sink — swapped by tests while sweep workers may be logging — needs the
  // mutex.
  std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  Mutex mutex;
  Sink sink DARE_GUARDED_BY(mutex);
};

Logger::Logger() : impl_(new Impl) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  impl_->level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

void Logger::set_sink(Sink sink) {
  MutexLock lock(impl_->mutex);
  impl_->sink = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  MutexLock lock(impl_->mutex);
  if (impl_->sink) {
    impl_->sink(level, message);
  } else {
    std::cerr << '[' << log_level_name(level) << "] " << message << '\n';
  }
}

LogMessage::~LogMessage() {
  Logger::instance().log(level_, stream_.str());
}

}  // namespace dare
