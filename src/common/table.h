// Fixed-width ASCII table printer used by every bench binary to print the
// paper's tables and figure series in a readable, diffable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dare {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> columns);

  /// Append a data row; must have exactly as many cells as columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  /// Render with aligned columns, a header separator, and an optional title.
  void print(std::ostream& out, const std::string& title = "") const;

  /// Emit the same data as CSV (header + rows), for re-plotting.
  void to_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt_fixed(double value, int precision);

/// Format a percentage (value in [0,1] -> "xx.x%").
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace dare
