#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dare {

namespace {

std::string trim(const std::string& s) {
  auto b = s.begin();
  auto e = s.end();
  while (b != e && std::isspace(static_cast<unsigned char>(*b))) ++b;
  while (e != b && std::isspace(static_cast<unsigned char>(*(e - 1)))) --e;
  return std::string(b, e);
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: missing '=' on line " +
                                  std::to_string(line_no));
    }
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Config: cannot read file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_string(text.str());
}

Config Config::from_args(const std::vector<std::string>& args,
                         std::vector<std::string>* positional) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      if (positional != nullptr) positional->push_back(arg);
      continue;
    }
    cfg.set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  if (key.empty()) throw std::invalid_argument("Config: empty key");
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  double d = 0.0;
  try {
    std::size_t pos = 0;
    d = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not a double: " + *v);
  }
  // std::stod happily parses "nan"/"inf" spellings, but no cluster knob has
  // a meaningful non-finite value and several per-field validators only
  // bound-check (NaN compares false against every bound, sailing through) —
  // reject here so `budget=nan` fails at the parse with the key named.
  if (!std::isfinite(d)) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not a finite double: " + *v);
  }
  return d;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t i = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return i;
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not an integer: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::invalid_argument("Config: key '" + key +
                              "' is not a boolean: " + *v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

}  // namespace dare
