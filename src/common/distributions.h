// Samplers for the heavy-tailed distributions the DARE paper relies on.
//
// Section III of the paper observes that file popularity in production
// MapReduce clusters is heavy-tailed (Zipf-like), that ~80 % of a file's
// accesses happen within its first day of life, and that access bursts are
// concentrated in short windows. The workload generators reproduce these
// shapes using the samplers below. Everything is implemented from scratch on
// top of `Rng` so draws are identical across standard libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dare {

/// Zipf(s, n) sampler over ranks {0, 1, .., n-1}; rank 0 is most popular.
///
/// P(rank = k) ∝ 1 / (k+1)^s. Uses a precomputed CDF with binary search —
/// n in our workloads is at most a few thousand files, so O(n) setup and
/// O(log n) sampling is the right trade-off (exact, no rejection loops).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  /// Draw a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  std::vector<double> cdf_;
  double s_ = 1.0;
};

/// Bounded Pareto sampler on [lo, hi] with shape alpha. Used for job input
/// sizes: most jobs are small, a heavy tail of large jobs (SWIM / Facebook
/// trace shape).
class BoundedPareto {
 public:
  BoundedPareto(double lo, double hi, double alpha);

  double sample(Rng& rng) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double alpha() const { return alpha_; }

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Lognormal sampler parameterized by the mean/stddev of the *underlying*
/// normal. Used for virtualization jitter (EC2 RTT tail, bandwidth noise).
class Lognormal {
 public:
  Lognormal(double mu, double sigma);

  double sample(Rng& rng) const;

  /// Mean of the lognormal itself: exp(mu + sigma^2/2).
  double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Discrete distribution over {0..n-1} given arbitrary non-negative weights.
/// Backs the Fig. 6 empirical access CDF.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;

  /// Probability of index k.
  double pmf(std::size_t k) const;

  /// Cumulative probability through index k (inclusive).
  double cdf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Piecewise-linear inverse-CDF sampler over continuous values. Constructed
/// from (value, cumulative-probability) knots; used to reproduce the Fig. 3
/// age-at-access CDF in the Yahoo-style trace generator.
class PiecewiseCdf {
 public:
  struct Knot {
    double value;  ///< sample value at this knot
    double cum;    ///< cumulative probability in [0, 1], strictly increasing
  };

  /// Knots must start at cum=0, end at cum=1, and be strictly increasing in
  /// both fields. Throws std::invalid_argument otherwise.
  explicit PiecewiseCdf(std::vector<Knot> knots);

  double sample(Rng& rng) const;

  /// Inverse CDF: value at cumulative probability u in [0,1].
  double quantile(double u) const;

 private:
  std::vector<Knot> knots_;
};

}  // namespace dare
