// Work-queue thread pool for running independent simulations in parallel.
//
// Parameter-sweep benches (Figs. 8, 9, 11) run dozens of full cluster
// simulations; each simulation is single-threaded and deterministic, so the
// pool parallelizes across configurations, never within one simulation —
// reproducibility is preserved by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dare {

class ThreadPool {
 public:
  /// Spawn `threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue, then joins all workers (equivalent to shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stop accepting work, drain the queue, and join all workers. Safe to
  /// call more than once; after it returns, submit() throws. Must not be
  /// called from a worker thread (a task joining its own pool deadlocks).
  void shutdown();

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Apply `fn(i)` for i in [0, n) across the pool and wait for *every*
  /// task to finish, even when some throw — `fn` is captured by reference,
  /// so no task may outlive this call. The exception from the lowest index
  /// is rethrown (first-exception-wins, deterministic).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ DARE_GUARDED_BY(mutex_);
  // condition_variable_any waits on the annotated lock wrapper directly
  // (see UniqueMutexLock); notified with the mutex released.
  std::condition_variable_any cv_;
  bool stopping_ DARE_GUARDED_BY(mutex_) = false;
};

}  // namespace dare
