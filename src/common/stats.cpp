#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dare {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return n_ ? min_ : 0.0; }

double OnlineStats::max() const { return n_ ? max_ : 0.0; }

double OnlineStats::cv() const {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

double geometric_mean(const std::vector<double>& values,
                      std::size_t* skipped) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  if (skipped != nullptr) *skipped = values.size() - n;
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

double coefficient_of_variation(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  // Population standard deviation: cv describes the realized placement, not
  // an estimate of a wider population.
  const double sd = std::sqrt(ss / static_cast<double>(values.size()));
  return sd / std::abs(mean);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  // Validate before any arithmetic on the arguments: the old code divided
  // (hi - lo) / bins in the member-initializer list, so bins == 0 divided by
  // zero before the check below could reject it.
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.resize(bins);
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    // NaN/±inf: the index cast below would be UB; count, don't bin.
    ++dropped_;
    return;
  }
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::proportion(std::size_t i) const {
  return total_ ? static_cast<double>(counts_.at(i)) /
                      static_cast<double>(total_)
                : 0.0;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

EmpiricalCdf::EmpiricalCdf(const EmpiricalCdf& other) {
  MutexLock lock(other.sort_mutex_);
  data_ = other.data_;
  sorted_ = other.sorted_;
}

EmpiricalCdf::EmpiricalCdf(EmpiricalCdf&& other) noexcept {
  MutexLock lock(other.sort_mutex_);
  data_ = std::move(other.data_);
  sorted_ = other.sorted_;
}

EmpiricalCdf& EmpiricalCdf::operator=(const EmpiricalCdf& other) {
  if (this == &other) return *this;
  DualMutexLock lock(sort_mutex_, other.sort_mutex_);
  data_ = other.data_;
  sorted_ = other.sorted_;
  return *this;
}

EmpiricalCdf& EmpiricalCdf::operator=(EmpiricalCdf&& other) noexcept {
  if (this == &other) return *this;
  DualMutexLock lock(sort_mutex_, other.sort_mutex_);
  data_ = std::move(other.data_);
  sorted_ = other.sorted_;
  return *this;
}

void EmpiricalCdf::add(double x) {
  MutexLock lock(sort_mutex_);
  data_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  MutexLock lock(sort_mutex_);
  data_.insert(data_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted_locked() const {
  // Lazy sort under const: the caller already holds sort_mutex_ (enforced by
  // DARE_REQUIRES), so concurrent queries and adds cannot race on
  // data_/sorted_.
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  MutexLock lock(sort_mutex_);
  if (data_.empty()) return 0.0;
  ensure_sorted_locked();
  const auto it = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(it - data_.begin()) /
         static_cast<double>(data_.size());
}

double EmpiricalCdf::quantile(double q) const {
  MutexLock lock(sort_mutex_);
  if (data_.empty()) return 0.0;
  ensure_sorted_locked();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] + frac * (data_[hi] - data_[lo]);
}

std::size_t EmpiricalCdf::count() const {
  MutexLock lock(sort_mutex_);
  return data_.size();
}

const std::vector<double>& EmpiricalCdf::sorted_values() const {
  MutexLock lock(sort_mutex_);
  ensure_sorted_locked();
  return data_;
}

SummaryRow summarize(const std::string& label,
                     const std::vector<double>& values) {
  OnlineStats st;
  for (double v : values) st.add(v);
  return SummaryRow{label, st.min(), st.mean(), st.max(), st.stddev()};
}

}  // namespace dare
