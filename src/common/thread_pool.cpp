#include "common/thread_pool.h"

#include <algorithm>

namespace dare {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueMutexLock lock(mutex_);
      // Explicit predicate loop (not a wait(lock, pred) lambda): the guarded
      // members are read with the lock visibly held, so the thread-safety
      // analysis can check them.
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Wait for every task before (re)throwing: tasks capture `fn` by
  // reference, so returning while any are still running would let the
  // caller destroy state they are using. The lowest-index exception wins.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace dare
