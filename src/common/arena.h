// Slab arena: chunked node storage with per-size freelists.
//
// Generalizes the PR3 event-queue slab idiom (a vector of records recycled
// through an intrusive freelist) into an allocator the node-based containers
// on the simulation hot path can share. The JobTracker bookkeeping churns
// fixed-size nodes at task rate — a JobRuntime per arrival, a MapTaskState
// per launch, fair-share keys per transition, replica records per policy
// decision — and the general-purpose heap pays lock/metadata overhead plus
// cache-scattered placement for every one of them. The arena instead carves
// nodes from contiguous chunks and recycles frees through a freelist, so
// steady-state container churn performs zero heap allocations and nodes
// freed together are reused hot.
//
// Single-threaded by design, like the simulation itself (one Cluster per
// thread; see DESIGN.md §5e): no locks, no atomics. Do not share one pool
// across threads.
//
// Memory is returned to the OS only when the pool dies (with its owning
// container) — the price of O(1) recycling. Peak residency therefore equals
// the high-water mark of live nodes, which the O(active) release discipline
// keeps bounded (see DESIGN.md §5g).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/invariant.h"

namespace dare::common {

/// Chunked size-class pool. allocate/deallocate are O(1) amortized; blocks
/// larger than kMaxPooledBytes fall through to the global heap (bucket
/// arrays and other n>1 requests are not slab material).
class SlabPool {
 public:
  /// Largest block served from slabs; chosen to cover every node type the
  /// simulation churns (hash-map nodes, tree nodes, small records — the
  /// largest is the JobRuntime map node).
  static constexpr std::size_t kMaxPooledBytes = 1024;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    DARE_INVARIANT(align <= alignof(std::max_align_t),
                   "SlabPool: over-aligned type");
    if (bytes > kMaxPooledBytes) return ::operator new(bytes);
    SizeClass& sc = size_class(round_up(bytes));
    if (sc.free_head != nullptr) {
      void* p = sc.free_head;
      sc.free_head = *static_cast<void**>(p);
      ++live_;
      return p;
    }
    if (sc.bump + sc.size > sc.bump_end) refill(sc);
    void* p = sc.bump;
    sc.bump += sc.size;
    ++live_;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) {
    if (bytes > kMaxPooledBytes) {
      ::operator delete(p);
      return;
    }
    SizeClass& sc = size_class(round_up(bytes));
    *static_cast<void**>(p) = sc.free_head;
    sc.free_head = p;
    DARE_INVARIANT(live_ > 0, "SlabPool: deallocate would underflow");
    --live_;
  }

  /// --- introspection (tests) ----------------------------------------------
  std::size_t live_blocks() const { return live_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t chunk_bytes() const { return chunk_bytes_total_; }

 private:
  struct SizeClass {
    std::size_t size = 0;
    void* free_head = nullptr;
    std::byte* bump = nullptr;
    std::byte* bump_end = nullptr;
  };

  static std::size_t round_up(std::size_t bytes) {
    constexpr std::size_t kGrain = alignof(std::max_align_t);
    const std::size_t grains = (bytes + kGrain - 1) / kGrain;
    // A freed block stores the freelist link in-place.
    return grains == 0 ? kGrain : grains * kGrain;
  }

  SizeClass& size_class(std::size_t size) {
    for (SizeClass& sc : classes_) {
      if (sc.size == size) return sc;
    }
    classes_.push_back(SizeClass{size, nullptr, nullptr, nullptr});
    return classes_.back();
  }

  void refill(SizeClass& sc) {
    // At least 64 nodes per chunk, at least 4 KiB — few mallocs, good
    // locality for nodes allocated together.
    const std::size_t bytes = std::max<std::size_t>(sc.size * 64, 4096);
    chunks_.push_back(std::make_unique<std::byte[]>(bytes));
    chunk_bytes_total_ += bytes;
    sc.bump = chunks_.back().get();
    sc.bump_end = sc.bump + (bytes / sc.size) * sc.size;
  }

  // The handful of node sizes a container family produces; linear scan
  // beats any map at this cardinality.
  std::vector<SizeClass> classes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t chunk_bytes_total_ = 0;
  std::size_t live_ = 0;
};

/// C++17 allocator over a shared SlabPool. Default construction creates a
/// fresh pool, so declaring a container with this allocator type is all it
/// takes — the pool lives and dies with the container. Rebound copies (the
/// container's internal node allocators) share the same pool.
template <typename T>
class SlabAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  SlabAllocator() : pool_(std::make_shared<SlabPool>()) {}
  explicit SlabAllocator(std::shared_ptr<SlabPool> pool)
      : pool_(std::move(pool)) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (n == 1) {
      return static_cast<T*>(pool_->allocate(sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      pool_->deallocate(p, sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  const std::shared_ptr<SlabPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const SlabAllocator<U>& other) const {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const SlabAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  std::shared_ptr<SlabPool> pool_;
};

}  // namespace dare::common
