// Leveled logging with a process-global threshold and pluggable sink.
//
// The simulator is quiet by default (benches print only their tables); tests
// and debugging can raise verbosity. The sink is a std::function so tests can
// capture output. Thread-safe: a mutex serializes sink calls, because
// parameter sweeps run simulations on a thread pool.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dare {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-global logger instance.
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the sink (default writes to stderr). Passing nullptr restores
  /// the default sink.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= this->level(); }

  void log(LogLevel level, const std::string& message);

 private:
  Logger();

  struct Impl;
  Impl* impl_;  // intentionally leaked singleton state (no destruction races)
};

/// Stream-style logging helper: LOG(kInfo) << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace dare

#define DARE_LOG(level)                                   \
  if (!::dare::Logger::instance().enabled(level)) {       \
  } else                                                  \
    ::dare::LogMessage(level)

#define DARE_LOG_DEBUG DARE_LOG(::dare::LogLevel::kDebug)
#define DARE_LOG_INFO DARE_LOG(::dare::LogLevel::kInfo)
#define DARE_LOG_WARN DARE_LOG(::dare::LogLevel::kWarn)
#define DARE_LOG_ERROR DARE_LOG(::dare::LogLevel::kError)
