#include "common/csv.h"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace dare {

std::string format_double(double d) {
  // Shortest form that parses back to the same bits; never uses the global
  // locale, so a comma decimal point or thousands grouping cannot corrupt
  // the field (ostringstream formatting did both).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  if (res.ec != std::errc{}) {
    throw std::runtime_error("format_double: to_chars failed");
  }
  return std::string(buf, res.ptr);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (rows_ > 0 || header_written_) {
    throw std::logic_error("CsvWriter: header after rows");
  }
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double d : cells) text.push_back(format_double(d));
  row(text);
}

}  // namespace dare
