#include "common/csv.h"

#include <sstream>
#include <stdexcept>

namespace dare {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (rows_ > 0 || header_written_) {
    throw std::logic_error("CsvWriter: header after rows");
  }
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double d : cells) {
    std::ostringstream ss;
    ss.precision(17);
    ss << d;
    text.push_back(ss.str());
  }
  row(text);
}

}  // namespace dare
