#include "core/elephant_trap.h"

#include <string>

#include "common/invariant.h"
#include "obs/trace_collector.h"

namespace dare::core {

namespace {
double budget_occupancy(const storage::DataNode& node, Bytes budget) {
  return budget ? static_cast<double>(node.dynamic_bytes()) /
                      static_cast<double>(budget)
                : 0.0;
}
}  // namespace

ElephantTrapPolicy::ElephantTrapPolicy(storage::DataNode& node,
                                       Bytes budget_bytes,
                                       const ElephantTrapParams& params,
                                       Rng& rng)
    : node_(&node),
      budget_(budget_bytes),
      params_(params),
      rng_(rng.fork()),
      eviction_pointer_(ring_.end()) {}

void ElephantTrapPolicy::rebuild(
    const std::vector<storage::BlockMeta>& live_dynamic) {
  ring_.clear();
  index_.clear();
  for (const auto& meta : live_dynamic) {
    if (node_->is_quarantined(meta.id)) continue;
    ring_.push_back(Entry{meta, 0});
    index_[meta.id] = std::prev(ring_.end());
  }
  eviction_pointer_ = ring_.empty() ? ring_.end() : ring_.begin();
}

void ElephantTrapPolicy::on_replica_dropped(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;
  const auto pos = it->second;
  index_.erase(it);
  const auto next = std::next(pos);
  const bool was_pointer = eviction_pointer_ == pos;
  ring_.erase(pos);
  if (was_pointer) {
    eviction_pointer_ = ring_.empty()
                            ? ring_.end()
                            : (next == ring_.end() ? ring_.begin() : next);
  }
}

ElephantTrapPolicy::Ring::iterator ElephantTrapPolicy::advance(
    Ring::iterator it) {
  ++it;
  return it == ring_.end() ? ring_.begin() : it;
}

std::uint64_t ElephantTrapPolicy::access_count(BlockId block) const {
  const auto it = index_.find(block);
  return it == index_.end() ? 0 : it->second->count;
}

bool ElephantTrapPolicy::mark_block_for_deletion(
    const storage::BlockMeta& evicting) {
  if (ring_.empty()) return false;
  auto it = eviction_pointer_ == ring_.end() ? ring_.begin()
                                             : eviction_pointer_;
  // Walk the circular list halving counts (competitive aging) until a block
  // has aged below the threshold or we have visited every entry once.
  std::size_t steps = 0;
  const std::size_t limit = ring_.size();
  while (steps < limit && it->count >= params_.threshold) {
    it->count /= 2;
    it = advance(it);
    ++steps;
  }
  if (it->count >= params_.threshold || it->block.file == evicting.file) {
    // Couldn't find an evictable victim this time (every block is still hot,
    // or the candidate shares the incoming block's popularity class).
    eviction_pointer_ = it;
    return false;
  }
  // Contract (Algorithm 2): the victim never belongs to the file whose
  // block is being inserted — evicting a same-popularity-class replica
  // would thrash. The branch above must have filtered this case.
  DARE_INVARIANT(it->block.file != evicting.file,
                 "ElephantTrap: evicting a block of the inserting file " +
                     std::to_string(evicting.file));
  if (tracer_ != nullptr) {
    tracer_->replica_evicted(node_->id(), it->block.id,
                             static_cast<double>(it->count), steps);
  }
  node_->mark_for_deletion(it->block.id);
  index_.erase(it->block.id);
  auto next = std::next(it);
  ring_.erase(it);
  eviction_pointer_ = ring_.empty()
                          ? ring_.end()
                          : (next == ring_.end() ? ring_.begin() : next);
  return true;
}

bool ElephantTrapPolicy::on_map_task(const storage::BlockMeta& block,
                                     bool local) {
  // The single coin gates everything: replication of non-local reads and
  // count refreshes of local reads (probabilistic aging, Section IV-B).
  // Tracing must never add draws — the emitters below only observe the
  // outcome of this one bernoulli.
  if (!rng_.bernoulli(params_.p)) {
    if (tracer_ != nullptr && !local) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kCoinFailed,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }

  if (local) {
    const auto it = index_.find(block.id);
    if (it != index_.end()) ++it->second->count;
    return false;
  }

  if (node_->is_quarantined(block.id)) {
    // A checksum failure burned this node's copy; adoption stays banned
    // until a fresh authoritative copy arrives via re-replication. Checked
    // after the coin so the draw sequence is independent of quarantines.
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kQuarantined,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }

  if (const auto it = index_.find(block.id); it != index_.end()) {
    // Already trapped here (replica exists but was not yet visible to the
    // scheduler); count the access instead of re-inserting.
    ++it->second->count;
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (block.size > budget_) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kTooLarge,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }

  while (node_->dynamic_bytes() + block.size > budget_) {
    if (!mark_block_for_deletion(block)) {
      if (tracer_ != nullptr) {
        tracer_->replica_skipped(node_->id(), block.id,
                                 obs::SkipReason::kNoVictim,
                                 budget_occupancy(*node_, budget_));
      }
      return false;
    }
  }
  if (!node_->insert_dynamic(block)) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  DARE_INVARIANT(node_->dynamic_bytes() <= budget_,
                 "ElephantTrap: budget exceeded after insert on node " +
                     std::to_string(node_->id()));

  // Insert right before the eviction pointer: the freshly trapped block is
  // the last the aging scan will reach, giving it time to prove popularity.
  Ring::iterator pos;
  if (ring_.empty()) {
    pos = ring_.insert(ring_.end(), Entry{block, 0});
    eviction_pointer_ = pos;
  } else {
    pos = ring_.insert(eviction_pointer_, Entry{block, 0});
  }
  index_[block.id] = pos;
  ++created_;
  if (tracer_ != nullptr) {
    tracer_->replica_adopted(node_->id(), block.id,
                             budget_occupancy(*node_, budget_));
  }
  return true;
}

}  // namespace dare::core
