// The per-node dynamic replication policy interface — the heart of DARE.
//
// One policy instance runs independently at each data node (the paper's key
// architectural point: no central coordination, no extra network traffic).
// The task runner notifies the policy whenever a map task is launched on the
// node; for a non-data-local task the input block is streaming through the
// node anyway, so the policy may capture it as a new dynamic replica,
// evicting older replicas to stay within the replication budget.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/block.h"
#include "storage/datanode.h"

namespace dare::obs {
class TraceCollector;
}

namespace dare::core {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  /// Attach the structured tracer (null = tracing disabled, the default).
  /// Borrowed pointer; must outlive the policy. Policies emit adopt/skip/
  /// evict decision events through it — observation only, decisions (and
  /// especially RNG draws) are bit-identical with and without it.
  void set_tracer(obs::TraceCollector* tracer) { tracer_ = tracer; }

  /// Called once per map task scheduled on this node.
  /// `local` is true when the node already held a visible replica of
  /// `block` (per name-node metadata). Returns true iff the policy created
  /// a dynamic replica of `block` on this node.
  virtual bool on_map_task(const storage::BlockMeta& block, bool local) = 0;

  /// Human-readable policy name for result tables.
  virtual std::string name() const = 0;

  /// Dynamic replicas this policy created (for blocks-created-per-job).
  virtual std::uint64_t replicas_created() const = 0;

  /// Rebuild bookkeeping from the node's surviving disk contents after a
  /// crash + rejoin: `live_dynamic` is the set of dynamic replicas still on
  /// disk (sorted by block id; empty after a permanent failure). Any
  /// recency/frequency/aging state accumulated before the crash is lost —
  /// replicas restart cold. Default: stateless policies need nothing.
  virtual void rebuild(const std::vector<storage::BlockMeta>& live_dynamic) {
    (void)live_dynamic;
  }

  /// A replica the policy may be tracking was dropped behind its back (the
  /// name node quarantined it after a failed checksum). The policy must
  /// forget any bookkeeping for `block`; re-adoption stays banned by the
  /// data node's quarantine until a fresh authoritative copy arrives.
  /// Default: stateless policies track nothing.
  virtual void on_replica_dropped(BlockId block) { (void)block; }

 protected:
  obs::TraceCollector* tracer_ = nullptr;
};

/// Vanilla Hadoop: never replicates dynamically.
class NullPolicy final : public ReplicationPolicy {
 public:
  bool on_map_task(const storage::BlockMeta&, bool) override { return false; }
  std::string name() const override { return "vanilla"; }
  std::uint64_t replicas_created() const override { return 0; }
};

}  // namespace dare::core
