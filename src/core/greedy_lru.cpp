#include "core/greedy_lru.h"

#include <string>

#include "common/invariant.h"
#include "obs/trace_collector.h"

namespace dare::core {

namespace {
double budget_occupancy(const storage::DataNode& node, Bytes budget) {
  return budget ? static_cast<double>(node.dynamic_bytes()) /
                      static_cast<double>(budget)
                : 0.0;
}
}  // namespace

GreedyLruPolicy::GreedyLruPolicy(storage::DataNode& node, Bytes budget_bytes)
    : node_(&node), budget_(budget_bytes) {}

void GreedyLruPolicy::touch(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;
  order_.splice(order_.end(), order_, it->second);
}

void GreedyLruPolicy::rebuild(
    const std::vector<storage::BlockMeta>& live_dynamic) {
  order_.clear();
  index_.clear();
  for (const auto& meta : live_dynamic) {
    if (node_->is_quarantined(meta.id)) continue;
    order_.push_back(meta);
    index_[meta.id] = std::prev(order_.end());
  }
}

void GreedyLruPolicy::on_replica_dropped(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

bool GreedyLruPolicy::make_room(const storage::BlockMeta& incoming) {
  // Rotating same-file victims to the MRU end is bounded: each pass either
  // evicts or rotates, and we stop after examining every entry once.
  std::size_t examined = 0;
  const std::size_t limit = order_.size();
  while (node_->dynamic_bytes() + incoming.size > budget_ &&
         examined < limit) {
    ++examined;
    const storage::BlockMeta victim = order_.front();
    if (victim.file == incoming.file) {
      // Same popularity class as the incoming block — skip (Algorithm 1).
      order_.splice(order_.end(), order_, order_.begin());
      continue;
    }
    order_.pop_front();
    index_.erase(victim.id);
    node_->mark_for_deletion(victim.id);
    if (tracer_ != nullptr) {
      // LRU keeps no access counts; `examined` plays the aging-pass role.
      tracer_->replica_evicted(node_->id(), victim.id, 0.0, examined);
    }
  }
  return node_->dynamic_bytes() + incoming.size <= budget_;
}

bool GreedyLruPolicy::on_map_task(const storage::BlockMeta& block,
                                  bool local) {
  if (local) {
    // The usage queue is refreshed on every read.
    touch(block.id);
    return false;
  }
  if (node_->is_quarantined(block.id)) {
    // A checksum failure burned this node's copy; adoption stays banned
    // until a fresh authoritative copy arrives via re-replication.
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kQuarantined,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (block.size > budget_) {  // can never fit
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kTooLarge,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (index_.count(block.id) != 0) {
    // Already dynamically replicated here (e.g. replica not yet visible to
    // the scheduler); just refresh its recency.
    touch(block.id);
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (!make_room(block)) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kNoVictim,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (!node_->insert_dynamic(block)) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  DARE_INVARIANT(node_->dynamic_bytes() <= budget_,
                 "GreedyLRU: budget exceeded after insert on node " +
                     std::to_string(node_->id()));
  order_.push_back(block);
  index_[block.id] = std::prev(order_.end());
  ++created_;
  if (tracer_ != nullptr) {
    tracer_->replica_adopted(node_->id(), block.id,
                             budget_occupancy(*node_, budget_));
  }
  return true;
}

}  // namespace dare::core
