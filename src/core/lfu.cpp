#include "core/lfu.h"

#include "obs/trace_collector.h"

namespace dare::core {

namespace {
double budget_occupancy(const storage::DataNode& node, Bytes budget) {
  return budget ? static_cast<double>(node.dynamic_bytes()) /
                      static_cast<double>(budget)
                : 0.0;
}
}  // namespace

GreedyLfuPolicy::GreedyLfuPolicy(storage::DataNode& node, Bytes budget_bytes)
    : node_(&node), budget_(budget_bytes) {}

std::uint64_t GreedyLfuPolicy::frequency(BlockId block) const {
  const auto it = entries_.find(block);
  return it == entries_.end() ? 0 : it->second.count;
}

void GreedyLfuPolicy::rebuild(
    const std::vector<storage::BlockMeta>& live_dynamic) {
  entries_.clear();
  for (const auto& meta : live_dynamic) {
    if (node_->is_quarantined(meta.id)) continue;
    entries_[meta.id] = Entry{meta, 0, tie_counter_++};
  }
}

void GreedyLfuPolicy::on_replica_dropped(BlockId block) {
  entries_.erase(block);
}

bool GreedyLfuPolicy::make_room(const storage::BlockMeta& incoming) {
  while (node_->dynamic_bytes() + incoming.size > budget_) {
    // Linear victim scan: the per-node dynamic set is small (budget-bounded),
    // so O(n) keeps the structure simple and allocation-free.
    const Entry* victim = nullptr;
    // dare-lint: allow(unordered-iteration) -- the (count, tie) key is a
    // strict total order with a unique minimum, so the scan's result is
    // independent of iteration order.
    for (const auto& [id, entry] : entries_) {
      if (entry.block.file == incoming.file) continue;
      if (victim == nullptr || entry.count < victim->count ||
          (entry.count == victim->count && entry.tie < victim->tie)) {
        victim = &entry;
      }
    }
    if (victim == nullptr) return false;
    const BlockId victim_id = victim->block.id;
    if (tracer_ != nullptr) {
      // LFU has no aging passes; the victim's frequency count is the story.
      tracer_->replica_evicted(node_->id(), victim_id,
                               static_cast<double>(victim->count), 0);
    }
    node_->mark_for_deletion(victim_id);
    entries_.erase(victim_id);
  }
  return true;
}

bool GreedyLfuPolicy::on_map_task(const storage::BlockMeta& block,
                                  bool local) {
  if (const auto it = entries_.find(block.id); it != entries_.end()) {
    ++it->second.count;
    if (tracer_ != nullptr && !local) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (local) return false;
  if (node_->is_quarantined(block.id)) {
    // A checksum failure burned this node's copy; adoption stays banned
    // until a fresh authoritative copy arrives via re-replication.
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kQuarantined,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (block.size > budget_) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kTooLarge,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (!make_room(block)) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kNoVictim,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  if (!node_->insert_dynamic(block)) {
    if (tracer_ != nullptr) {
      tracer_->replica_skipped(node_->id(), block.id,
                               obs::SkipReason::kAlreadyPresent,
                               budget_occupancy(*node_, budget_));
    }
    return false;
  }
  entries_[block.id] = Entry{block, 1, tie_counter_++};
  ++created_;
  if (tracer_ != nullptr) {
    tracer_->replica_adopted(node_->id(), block.id,
                             budget_occupancy(*node_, budget_));
  }
  return true;
}

}  // namespace dare::core
