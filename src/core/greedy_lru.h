// Algorithm 1 of the paper: the greedy reactive scheme with LRU eviction.
//
// Every non-data-local map task triggers replication of its input block at
// the fetching node. A usage-ordered queue (refreshed on every read) selects
// LRU victims when the replication budget would be exceeded; victims
// belonging to the same file as the incoming block are skipped (they share
// its popularity, so evicting them would thrash). Victims are tombstoned for
// lazy deletion by the data node.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/replication_policy.h"

namespace dare::core {

class GreedyLruPolicy final : public ReplicationPolicy {
 public:
  /// `node` must outlive the policy. `budget_bytes` caps the total size of
  /// live dynamic replicas on this node.
  GreedyLruPolicy(storage::DataNode& node, Bytes budget_bytes);

  bool on_map_task(const storage::BlockMeta& block, bool local) override;

  /// Crash recovery: repopulate the LRU queue from the surviving replicas
  /// (recency is lost; the given order — block id — becomes the new LRU
  /// order, refreshed by subsequent reads). Quarantined blocks are dropped.
  void rebuild(const std::vector<storage::BlockMeta>& live_dynamic) override;

  /// Forget a replica the name node quarantined out from under us.
  void on_replica_dropped(BlockId block) override;

  std::string name() const override { return "greedy-lru"; }
  std::uint64_t replicas_created() const override { return created_; }

  Bytes budget_bytes() const { return budget_; }
  std::size_t tracked_blocks() const { return order_.size(); }

 private:
  /// Evict LRU victims until `incoming` fits in the budget. Same-file
  /// victims are rotated to the MRU end rather than evicted. Returns false
  /// when no eviction could free enough space (every candidate shares the
  /// incoming block's file).
  bool make_room(const storage::BlockMeta& incoming);

  /// Move a block to the MRU end of the queue.
  void touch(BlockId block);

  storage::DataNode* node_;
  Bytes budget_;
  /// LRU queue: front = least recently used, back = most recently used.
  std::list<storage::BlockMeta> order_;
  std::unordered_map<BlockId, std::list<storage::BlockMeta>::iterator> index_;
  std::uint64_t created_ = 0;
};

}  // namespace dare::core
