// Algorithm 2 of the paper: the probabilistic approach, adapted from the
// ElephantTrap heavy-hitter detector (Lu, Prabhakar & Bonomi, HOTI'07).
//
// Sampling: on every scheduled map task a coin with probability `p` decides
// whether the event is processed at all — both replication of non-local
// reads and refreshing of access counts for local reads. This filters out
// the once-off accesses of unpopular data that the greedy scheme would
// needlessly replicate, and roughly halves the dynamic-replica disk writes.
//
// Competitive aging: when the budget is full, the eviction scan walks a
// circular list of dynamic replicas from `evictionPointer`, halving each
// visited block's access count, until it finds a victim whose count has
// dropped below `threshold` (or it has gone round the whole list). A victim
// belonging to the incoming block's file is never evicted. Blocks are
// inserted right before the eviction pointer, i.e. at the position that will
// be scanned last — the newest replica gets the longest grace period.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/rng.h"
#include "core/replication_policy.h"

namespace dare::core {

struct ElephantTrapParams {
  double p = 0.3;        ///< sampling probability
  std::uint32_t threshold = 1;  ///< eviction threshold on the aged count
};

class ElephantTrapPolicy final : public ReplicationPolicy {
 public:
  ElephantTrapPolicy(storage::DataNode& node, Bytes budget_bytes,
                     const ElephantTrapParams& params, Rng& rng);

  bool on_map_task(const storage::BlockMeta& block, bool local) override;

  /// Crash recovery: re-ring the surviving replicas with zeroed counts and
  /// reset the eviction pointer (aging state is lost with the process).
  /// Quarantined blocks are dropped.
  void rebuild(const std::vector<storage::BlockMeta>& live_dynamic) override;

  /// Forget a replica the name node quarantined out from under us.
  void on_replica_dropped(BlockId block) override;

  std::string name() const override { return "elephant-trap"; }
  std::uint64_t replicas_created() const override { return created_; }

  Bytes budget_bytes() const { return budget_; }
  const ElephantTrapParams& params() const { return params_; }
  std::size_t tracked_blocks() const { return ring_.size(); }

  /// Aged access count of a tracked block (testing hook); 0 if untracked.
  std::uint64_t access_count(BlockId block) const;

 private:
  struct Entry {
    storage::BlockMeta block;
    std::uint64_t count = 0;
  };
  using Ring = std::list<Entry>;

  /// markBlockForDeletion(evicting): circular scan with count halving.
  /// Returns true if a victim was marked; false -> do not replicate.
  bool mark_block_for_deletion(const storage::BlockMeta& evicting);

  /// Advance an iterator circularly.
  Ring::iterator advance(Ring::iterator it);

  storage::DataNode* node_;
  Bytes budget_;
  ElephantTrapParams params_;
  Rng rng_;
  Ring ring_;
  std::unordered_map<BlockId, Ring::iterator> index_;
  Ring::iterator eviction_pointer_;
  std::uint64_t created_ = 0;
};

}  // namespace dare::core
