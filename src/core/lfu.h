// Least-frequently-used eviction baseline (extension).
//
// Section IV of the paper notes that the choice between LRU and LFU "should
// be made after profiling typical workloads"; the evaluation only ships LRU
// and ElephantTrap. We provide greedy-LFU as an ablation so the bench suite
// can quantify the gap: LFU keeps long-term-popular blocks but is slow to
// evict formerly-hot data (no aging), which is exactly the failure mode the
// ElephantTrap's competitive aging addresses.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "core/replication_policy.h"

namespace dare::core {

class GreedyLfuPolicy final : public ReplicationPolicy {
 public:
  GreedyLfuPolicy(storage::DataNode& node, Bytes budget_bytes);

  bool on_map_task(const storage::BlockMeta& block, bool local) override;

  /// Crash recovery: re-track the surviving replicas with zeroed counts
  /// (frequency history is lost with the process). Quarantined blocks are
  /// dropped.
  void rebuild(const std::vector<storage::BlockMeta>& live_dynamic) override;

  /// Forget a replica the name node quarantined out from under us.
  void on_replica_dropped(BlockId block) override;

  std::string name() const override { return "greedy-lfu"; }
  std::uint64_t replicas_created() const override { return created_; }

  std::size_t tracked_blocks() const { return entries_.size(); }
  std::uint64_t frequency(BlockId block) const;

 private:
  struct Entry {
    storage::BlockMeta block;
    std::uint64_t count = 0;
    std::uint64_t tie = 0;  ///< insertion order; older evicts first on ties
  };

  bool make_room(const storage::BlockMeta& incoming);

  storage::DataNode* node_;
  Bytes budget_;
  std::unordered_map<BlockId, Entry> entries_;
  std::uint64_t created_ = 0;
  std::uint64_t tie_counter_ = 0;
};

}  // namespace dare::core
