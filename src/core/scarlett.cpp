#include "core/scarlett.h"

#include <algorithm>
#include <cmath>

namespace dare::core {

ScarlettPlanner::ScarlettPlanner(const ScarlettParams& params)
    : params_(params) {}

void ScarlettPlanner::record_access(FileId file) { ++window_[file]; }

std::uint64_t ScarlettPlanner::window_accesses() const {
  std::uint64_t total = 0;
  // dare-lint: allow(unordered-iteration) -- integer sum, order-independent
  for (const auto& [_, c] : window_) total += c;
  return total;
}

std::vector<ReplicationOrder> ScarlettPlanner::plan_epoch(
    Bytes budget_remaining,
    const std::unordered_map<FileId, Bytes>& file_bytes,
    const std::unordered_map<FileId, int>& current_replication) {
  // Sort files by observed popularity, most accessed first.
  std::vector<std::pair<FileId, std::uint64_t>> ranked(window_.begin(),
                                                       window_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  std::vector<ReplicationOrder> orders;
  for (const auto& [file, accesses] : ranked) {
    const auto bytes_it = file_bytes.find(file);
    const auto repl_it = current_replication.find(file);
    if (bytes_it == file_bytes.end() || repl_it == current_replication.end()) {
      continue;
    }
    const int current = repl_it->second;
    const int desired = std::min(
        params_.max_replication,
        current + static_cast<int>(std::ceil(
                      static_cast<double>(accesses) /
                      params_.accesses_per_replica)) -
            1);
    if (desired <= current) continue;
    // Budget check: each extra replica of the file costs its full size.
    const Bytes cost =
        bytes_it->second * static_cast<Bytes>(desired - current);
    if (cost > budget_remaining) continue;
    budget_remaining -= cost;
    orders.push_back(ReplicationOrder{file, current, desired});
  }
  window_.clear();
  return orders;
}

}  // namespace dare::core
