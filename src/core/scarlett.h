// Scarlett-style epoch-based proactive replication baseline (comparator).
//
// Scarlett (Ananthanarayanan et al., EuroSys'11) is the closest related
// system: a *centralized, offline* scheme that periodically recomputes a
// replication factor per file from the previous epoch's observed accesses
// and proactively creates budget-limited replicas spread across the cluster.
// The paper positions DARE as the reactive alternative that adapts at
// smaller time scales and incurs no explicit replication traffic.
//
// This module implements the epoch logic so the ablation bench can compare
// the two designs inside the same simulator. Unlike DARE, epoch replication
// *does* consume network bandwidth (replicas are pushed over the wire); the
// cluster glue charges that traffic to the network model.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/block.h"

namespace dare::core {

struct ScarlettParams {
  /// Recomputation period.
  SimDuration epoch = from_seconds(300);
  /// Cluster-wide extra-storage budget as a fraction of static bytes.
  double budget_fraction = 0.2;
  /// A file observed with `c` concurrent-ish accesses in the last epoch gets
  /// target replication min(base + ceil(c * accesses_per_replica_inv), cap).
  double accesses_per_replica = 4.0;
  int max_replication = 10;
};

/// Per-epoch replication decision for one file.
struct ReplicationOrder {
  FileId file = kInvalidFile;
  int current_replication = 0;
  int target_replication = 0;
};

/// Centralized epoch planner: feed it accesses, ask it each epoch which
/// files deserve more replicas. Placement/transfer is the caller's job
/// (the cluster glue), keeping this module free of simulator dependencies.
class ScarlettPlanner {
 public:
  explicit ScarlettPlanner(const ScarlettParams& params);

  /// Record one file access (called for every scheduled map task).
  void record_access(FileId file);

  /// Compute this epoch's orders, most-accessed files first, respecting the
  /// cluster-wide budget: `budget_bytes` minus bytes already spent on extra
  /// replicas. `file_bytes(file)` and `current_replication(file)` supply
  /// metadata. Resets the access window afterwards.
  std::vector<ReplicationOrder> plan_epoch(
      Bytes budget_remaining,
      const std::unordered_map<FileId, Bytes>& file_bytes,
      const std::unordered_map<FileId, int>& current_replication);

  const ScarlettParams& params() const { return params_; }

  /// Accesses observed in the current (un-planned) window.
  std::uint64_t window_accesses() const;

 private:
  ScarlettParams params_;
  std::unordered_map<FileId, std::uint64_t> window_;
};

}  // namespace dare::core
