#include "sched/locality_index.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/invariant.h"

namespace dare::sched {

namespace {
const std::vector<std::uint32_t> kNoCandidates;
}  // namespace

LocalityIndex::LocalityIndex(std::size_t num_nodes,
                             std::vector<RackId> node_rack,
                             std::size_t num_racks)
    : num_nodes_(num_nodes),
      num_racks_(num_racks),
      node_rack_(std::move(node_rack)) {
  if (num_nodes_ == 0 || num_racks_ == 0) {
    throw std::invalid_argument("LocalityIndex: need >= 1 node and rack");
  }
  if (node_rack_.size() != num_nodes_) {
    throw std::invalid_argument("LocalityIndex: node_rack size mismatch");
  }
  for (RackId r : node_rack_) {
    if (r < 0 || static_cast<std::size_t>(r) >= num_racks_) {
      throw std::invalid_argument("LocalityIndex: rack id out of range");
    }
  }
}

std::size_t LocalityIndex::rack_replicas(BlockId block, RackId rack) const {
  const auto it = block_nodes_.find(block);
  if (it == block_nodes_.end()) return 0;
  std::size_t count = 0;
  for (NodeId n : it->second) {
    if (node_rack_[static_cast<std::size_t>(n)] == rack) ++count;
  }
  return count;
}

void LocalityIndex::drop_candidate(std::vector<std::uint32_t>& candidates,
                                   std::uint32_t map_index) {
  const auto it =
      std::find(candidates.begin(), candidates.end(), map_index);
  DARE_INVARIANT(it != candidates.end(),
                 "LocalityIndex: candidate to drop is not indexed (map " +
                     std::to_string(map_index) + ")");
  // Swap-erase: candidate order is irrelevant (queries take the argmin of
  // pending position, not the first element).
  *it = candidates.back();
  candidates.pop_back();
}

LocalityIndex::JobState& LocalityIndex::job_state(JobId job) {
  const auto it = jobs_.find(job);
  if (it != jobs_.end()) return it->second;
  // Small domains take the direct layout (one slot per node/rack, indexed
  // without probing — the replica-delta fan-out loops are too hot for even
  // a perfect-hash probe); at hyperscale the per-job footprint of a full
  // domain is what made large backlogs unrepresentable, so the table goes
  // sparse, pre-sized for a typical replica footprint (maps x replication
  // distinct nodes) and growing with the job's actual candidate set.
  constexpr std::size_t kDirectNodes = 256;
  JobState& state = jobs_[job];
  if (num_nodes_ <= kDirectNodes) {
    state.by_node.reserve_domain(num_nodes_);
    state.by_rack.reserve_domain(num_racks_);
  } else {
    state.by_node.reserve_slots(48);
    state.by_rack.reserve_slots(12);
  }
  return state;
}

void LocalityIndex::replica_added(BlockId block, NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= num_nodes_) {
    throw std::out_of_range("LocalityIndex: bad node id");
  }
  auto& nodes = block_nodes_[block];
  DARE_INVARIANT(std::find(nodes.begin(), nodes.end(), node) == nodes.end(),
                 "LocalityIndex: duplicate replica delta for block " +
                     std::to_string(block));
  nodes.push_back(node);
  const RackId rack = node_rack_[static_cast<std::size_t>(node)];
  const bool first_in_rack = rack_replicas(block, rack) == 1;

  const auto wit = watchers_.find(block);
  if (wit == watchers_.end()) return;
  for (const Watcher& w : wit->second) {
    w.state->by_node.slot_mut(static_cast<std::uint32_t>(node))
        .push_back(w.map_index);
    if (first_in_rack) {
      w.state->by_rack.slot_mut(static_cast<std::uint32_t>(rack))
          .push_back(w.map_index);
    }
  }
}

void LocalityIndex::replica_removed(BlockId block, NodeId node) {
  const auto it = block_nodes_.find(block);
  DARE_INVARIANT(it != block_nodes_.end(),
                 "LocalityIndex: removal delta for unmirrored block " +
                     std::to_string(block));
  auto& nodes = it->second;
  const auto pos = std::find(nodes.begin(), nodes.end(), node);
  DARE_INVARIANT(pos != nodes.end(),
                 "LocalityIndex: removal delta for absent replica of block " +
                     std::to_string(block));
  nodes.erase(pos);
  const RackId rack = node_rack_[static_cast<std::size_t>(node)];
  const bool last_in_rack = rack_replicas(block, rack) == 0;

  const auto wit = watchers_.find(block);
  if (wit == watchers_.end()) return;
  for (const Watcher& w : wit->second) {
    drop_candidate(w.state->by_node.slot_mut(static_cast<std::uint32_t>(node)),
                   w.map_index);
    if (last_in_rack) {
      drop_candidate(
          w.state->by_rack.slot_mut(static_cast<std::uint32_t>(rack)),
          w.map_index);
    }
  }
}

void LocalityIndex::watch_map(JobId job, std::size_t map_index,
                              BlockId block) {
  const auto mi = static_cast<std::uint32_t>(map_index);
  JobState& state = job_state(job);
  watchers_[block].push_back(Watcher{job, mi, &state});
  const auto it = block_nodes_.find(block);
  if (it == block_nodes_.end()) return;  // block has no live replica
  for (NodeId n : it->second) {
    state.by_node.slot_mut(static_cast<std::uint32_t>(n)).push_back(mi);
  }
  // One rack-candidate entry per distinct rack holding a replica.
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    const RackId rack = node_rack_[static_cast<std::size_t>(it->second[i])];
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (node_rack_[static_cast<std::size_t>(it->second[j])] == rack) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      state.by_rack.slot_mut(static_cast<std::uint32_t>(rack)).push_back(mi);
    }
  }
}

void LocalityIndex::unwatch_map(JobId job, std::size_t map_index,
                                BlockId block) {
  const auto mi = static_cast<std::uint32_t>(map_index);
  const auto wit = watchers_.find(block);
  DARE_INVARIANT(wit != watchers_.end(),
                 "LocalityIndex: unwatch of an unwatched block " +
                     std::to_string(block));
  auto& watchers = wit->second;
  const auto pos =
      std::find_if(watchers.begin(), watchers.end(), [&](const Watcher& w) {
        return w.job == job && w.map_index == mi;
      });
  DARE_INVARIANT(pos != watchers.end(),
                 "LocalityIndex: unwatch of an unwatched map (job " +
                     std::to_string(job) + ", map " + std::to_string(mi) +
                     ")");
  *pos = watchers.back();
  watchers.pop_back();
  if (watchers.empty()) watchers_.erase(wit);

  const auto bit = block_nodes_.find(block);
  if (bit == block_nodes_.end()) return;
  const auto jit = jobs_.find(job);
  DARE_INVARIANT(jit != jobs_.end(),
                 "LocalityIndex: unwatch for an untracked job " +
                     std::to_string(job));
  JobState& state = jit->second;
  for (NodeId n : bit->second) {
    drop_candidate(state.by_node.slot_mut(static_cast<std::uint32_t>(n)), mi);
  }
  for (std::size_t i = 0; i < bit->second.size(); ++i) {
    const RackId rack = node_rack_[static_cast<std::size_t>(bit->second[i])];
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (node_rack_[static_cast<std::size_t>(bit->second[j])] == rack) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      drop_candidate(state.by_rack.slot_mut(static_cast<std::uint32_t>(rack)),
                     mi);
    }
  }
}

void LocalityIndex::job_retired(JobId job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;  // never had candidates
#ifndef NDEBUG
  DARE_INVARIANT(it->second.by_node.all_empty(),
                 "LocalityIndex: job retired with live node candidates");
#endif
  jobs_.erase(it);
}

const std::vector<std::uint32_t>& LocalityIndex::node_candidates(
    JobId job, NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= num_nodes_) {
    throw std::out_of_range("LocalityIndex: bad node id");
  }
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return kNoCandidates;
  return it->second.by_node.find(static_cast<std::uint32_t>(node));
}

const std::vector<std::uint32_t>& LocalityIndex::rack_candidates(
    JobId job, NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= num_nodes_) {
    throw std::out_of_range("LocalityIndex: bad node id");
  }
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return kNoCandidates;
  const RackId rack = node_rack_[static_cast<std::size_t>(node)];
  return it->second.by_rack.find(static_cast<std::uint32_t>(rack));
}

std::size_t LocalityIndex::replica_count(BlockId block) const {
  const auto it = block_nodes_.find(block);
  return it == block_nodes_.end() ? 0 : it->second.size();
}

bool LocalityIndex::mirrors_replica(BlockId block, NodeId node) const {
  const auto it = block_nodes_.find(block);
  if (it == block_nodes_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) !=
         it->second.end();
}

}  // namespace dare::sched
