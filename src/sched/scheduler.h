// Scheduler strategy interface.
//
// DARE is scheduler-agnostic: the replication policy never talks to the
// scheduler, it only changes which blocks are local where. The two
// strategies the paper evaluates are Hadoop's default FIFO scheduler and the
// Fair scheduler with delay scheduling [Zaharia et al., EuroSys'10].
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "sched/job_table.h"

namespace dare::obs {
class TraceCollector;
}

namespace dare::sched {

/// A map-task selection for a particular node.
struct MapSelection {
  JobId job = kInvalidJob;
  std::size_t pending_index = 0;  ///< index into the job's pending_maps
  Locality locality = Locality::kOffRack;

  bool node_local() const { return locality == Locality::kNodeLocal; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Pick a map task to launch on `node` at time `now`, or nullopt to leave
  /// the slot idle.
  virtual std::optional<MapSelection> select_map(
      NodeId node, SimTime now, JobTable& jobs,
      const BlockLocator& locator) = 0;

  /// Pick a job whose reduce should launch (reduces have no locality).
  virtual std::optional<JobId> select_reduce(JobTable& jobs) = 0;

  virtual std::string name() const = 0;

  /// Attach the structured tracer (null = tracing disabled, the default).
  /// Borrowed pointer; must outlive the scheduler. Tracing only observes —
  /// selections are bit-identical with and without it.
  void set_tracer(obs::TraceCollector* tracer) { tracer_ = tracer; }

 protected:
  obs::TraceCollector* tracer_ = nullptr;
};

}  // namespace dare::sched
