#include "sched/fifo_scheduler.h"

namespace dare::sched {

std::optional<MapSelection> FifoScheduler::select_map(
    NodeId node, SimTime /*now*/, JobTable& jobs,
    const BlockLocator& locator) {
  for (JobId id : jobs.active_jobs()) {
    const JobRuntime& rt = jobs.job(id);
    if (rt.pending_maps.empty()) continue;
    // Hadoop's tiered preference within the head job: node-local, then
    // rack-local, then any — but never wait.
    if (const auto local = jobs.find_local_map(id, node, locator)) {
      return MapSelection{id, *local, Locality::kNodeLocal};
    }
    if (const auto rack = jobs.find_rack_local_map(id, node, locator)) {
      return MapSelection{id, *rack, Locality::kRackLocal};
    }
    const auto any = jobs.find_any_map(id);
    return MapSelection{id, *any, Locality::kOffRack};
  }
  return std::nullopt;
}

std::optional<JobId> FifoScheduler::select_reduce(JobTable& jobs) {
  for (JobId id : jobs.active_jobs()) {
    const JobRuntime& rt = jobs.job(id);
    if (rt.maps_done() && rt.pending_reduces > 0) return id;
  }
  return std::nullopt;
}

}  // namespace dare::sched
