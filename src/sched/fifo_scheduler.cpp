#include "sched/fifo_scheduler.h"

#include "obs/trace_collector.h"

namespace dare::sched {

std::optional<MapSelection> FifoScheduler::select_map(
    NodeId node, SimTime /*now*/, JobTable& jobs,
    const BlockLocator& locator) {
  if (jobs.has_locality_index()) {
    // FIFO never declines: the seed's arrival-order scan always launched
    // from the oldest job with pending maps, so only that job needs probing.
    // Walking past the reduce-phase prefix made the scan O(active jobs) per
    // opportunity — the dominant cost of large FIFO runs.
    const auto& ready = jobs.map_ready();
    if (ready.empty()) return std::nullopt;
    const JobRuntime& rt = *ready.begin()->second;
    const JobId id = rt.spec.id;
    if (const auto local = jobs.find_local_map(rt, node, locator)) {
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(
            node, id, static_cast<int>(Locality::kNodeLocal), 0.0);
      }
      return MapSelection{id, *local, Locality::kNodeLocal};
    }
    if (const auto rack = jobs.find_rack_local_map(rt, node, locator)) {
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(
            node, id, static_cast<int>(Locality::kRackLocal), 0.0);
      }
      return MapSelection{id, *rack, Locality::kRackLocal};
    }
    if (tracer_ != nullptr) {
      tracer_->scheduler_decision(
          node, id, static_cast<int>(Locality::kOffRack), 0.0);
    }
    return MapSelection{id, 0, Locality::kOffRack};
  }
  // Legacy path (A/B baseline, fake locators in tests): full scan.
  for (const JobRuntime& rt : jobs.active_jobs()) {
    if (rt.pending_maps.empty()) continue;
    const JobId id = rt.spec.id;
    // Hadoop's tiered preference within the head job: node-local, then
    // rack-local, then any — but never wait.
    if (const auto local = jobs.find_local_map(rt, node, locator)) {
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(
            node, id, static_cast<int>(Locality::kNodeLocal), 0.0);
      }
      return MapSelection{id, *local, Locality::kNodeLocal};
    }
    if (const auto rack = jobs.find_rack_local_map(rt, node, locator)) {
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(
            node, id, static_cast<int>(Locality::kRackLocal), 0.0);
      }
      return MapSelection{id, *rack, Locality::kRackLocal};
    }
    if (tracer_ != nullptr) {
      tracer_->scheduler_decision(
          node, id, static_cast<int>(Locality::kOffRack), 0.0);
    }
    return MapSelection{id, 0, Locality::kOffRack};
  }
  return std::nullopt;
}

std::optional<JobId> FifoScheduler::select_reduce(JobTable& jobs) {
  if (jobs.has_locality_index()) {
    // The ready set is keyed by arrival_seq, so its first element is the
    // oldest job with launchable reduces — what the scan below returns.
    const auto& ready = jobs.reduce_ready();
    if (ready.empty()) return std::nullopt;
    return ready.begin()->second->spec.id;
  }
  for (const JobRuntime& rt : jobs.active_jobs()) {
    if (rt.maps_done() && rt.pending_reduces > 0) return rt.spec.id;
  }
  return std::nullopt;
}

}  // namespace dare::sched
