#include "sched/fair_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dare::sched {

FairScheduler::FairScheduler(SimDuration node_delay, SimDuration rack_delay)
    : node_delay_(node_delay), rack_delay_(rack_delay) {
  if (node_delay < 0 || rack_delay < 0) {
    throw std::invalid_argument("FairScheduler: delays must be >= 0");
  }
}

FairScheduler::FairScheduler(SimDuration delay)
    : FairScheduler(delay, delay) {}

std::optional<MapSelection> FairScheduler::select_map(
    NodeId node, SimTime now, JobTable& jobs, const BlockLocator& locator) {
  // Fair ordering: smallest weighted share (running maps / weight) first;
  // arrival order breaks ties (active_jobs() is already in arrival order,
  // stable_sort preserves it).
  std::vector<JobId> order;
  for (JobId id : jobs.active_jobs()) {
    if (!jobs.job(id).pending_maps.empty()) order.push_back(id);
  }
  const auto share = [&jobs](JobId id) {
    const JobRuntime& rt = jobs.job(id);
    const double weight = rt.spec.weight > 0.0 ? rt.spec.weight : 1.0;
    return static_cast<double>(rt.running_maps) / weight;
  };
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return share(a) < share(b);
  });

  for (JobId id : order) {
    JobRuntime& rt = jobs.job(id);
    if (const auto local = jobs.find_local_map(id, node, locator)) {
      rt.waiting_since = kTimeNever;
      return MapSelection{id, *local, Locality::kNodeLocal};
    }
    if (rt.waiting_since == kTimeNever) {
      // First declined opportunity: start the delay clock.
      rt.waiting_since = now;
      if (node_delay_ > 0) continue;
    }
    const SimDuration waited = now - rt.waiting_since;
    if (waited >= node_delay_) {
      // Level-1 delay expired: a rack-local launch is acceptable.
      if (const auto rack = jobs.find_rack_local_map(id, node, locator)) {
        rt.waiting_since = kTimeNever;
        return MapSelection{id, *rack, Locality::kRackLocal};
      }
      if (waited >= node_delay_ + rack_delay_) {
        // Level-2 delay expired too: launch anywhere rather than starve.
        rt.waiting_since = kTimeNever;
        const auto any = jobs.find_any_map(id);
        return MapSelection{id, *any, Locality::kOffRack};
      }
    }
    // Still within a delay window: skip this job, try the next.
  }
  return std::nullopt;
}

std::optional<JobId> FairScheduler::select_reduce(JobTable& jobs) {
  // Fewest running reduces first among jobs with launchable reduces.
  std::optional<JobId> best;
  for (JobId id : jobs.active_jobs()) {
    const JobRuntime& rt = jobs.job(id);
    if (!rt.maps_done() || rt.pending_reduces == 0) continue;
    if (!best || rt.running_reduces < jobs.job(*best).running_reduces) {
      best = id;
    }
  }
  return best;
}

}  // namespace dare::sched
