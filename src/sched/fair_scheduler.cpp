#include "sched/fair_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "common/invariant.h"
#include "obs/trace_collector.h"

namespace dare::sched {

FairScheduler::FairScheduler(SimDuration node_delay, SimDuration rack_delay,
                             bool incremental)
    : node_delay_(node_delay),
      rack_delay_(rack_delay),
      incremental_(incremental) {
  if (node_delay < 0 || rack_delay < 0) {
    throw std::invalid_argument("FairScheduler: delays must be >= 0");
  }
}

FairScheduler::FairScheduler(SimDuration delay)
    : FairScheduler(delay, delay) {}

void FairScheduler::insert_share_entry(JobId id, JobRuntime& rt) {
  if (!rt.active || rt.pending_maps.empty()) return;
  const ShareKey key{rt.fair_share(), rt.arrival_seq, id, &rt};
  share_order_.insert(key);
  share_keys_.emplace(id, key);
}

void FairScheduler::update_share_entry(JobTable& jobs, JobId id) {
  const auto old = share_keys_.find(id);
  if (old != share_keys_.end()) {
    share_order_.erase(old->second);
    share_keys_.erase(old);
  }
  if (!jobs.has_job(id)) return;
  insert_share_entry(id, jobs.job(id));
}

void FairScheduler::sync_share_order(JobTable& jobs) {
  if (synced_table_ != &jobs) {
    // First opportunity from this table: rebuild from scratch, then discard
    // the journal backlog (it is subsumed by the rebuild).
    synced_table_ = &jobs;
    share_order_.clear();
    share_keys_.clear();
    jobs.consume_fair_dirty();
    for (JobRuntime& rt : jobs.active_jobs()) {
      insert_share_entry(rt.spec.id, rt);
    }
    return;
  }
  for (JobId id : jobs.consume_fair_dirty()) update_share_entry(jobs, id);
}

std::optional<MapSelection> FairScheduler::try_job(JobRuntime& rt, NodeId node,
                                                   SimTime now, JobTable& jobs,
                                                   const BlockLocator& locator) {
  const JobId id = rt.spec.id;
  if (const auto local = jobs.find_local_map(rt, node, locator)) {
    if (tracer_ != nullptr) {
      const double waited_s =
          rt.waiting_since == kTimeNever
              ? 0.0
              : to_seconds(now - rt.waiting_since);
      tracer_->scheduler_decision(
          node, id, static_cast<int>(Locality::kNodeLocal), waited_s);
    }
    rt.waiting_since = kTimeNever;
    return MapSelection{id, *local, Locality::kNodeLocal};
  }
  if (rt.waiting_since == kTimeNever) {
    // First declined opportunity: start the delay clock.
    rt.waiting_since = now;
    if (node_delay_ > 0) {
      if (tracer_ != nullptr) tracer_->delay_wait(node, id);
      return std::nullopt;
    }
  }
  const SimDuration waited = now - rt.waiting_since;
  if (waited >= node_delay_) {
    // Level-1 delay expired: a rack-local launch is acceptable.
    if (const auto rack = jobs.find_rack_local_map(rt, node, locator)) {
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(node, id,
                                    static_cast<int>(Locality::kRackLocal),
                                    to_seconds(waited));
      }
      rt.waiting_since = kTimeNever;
      return MapSelection{id, *rack, Locality::kRackLocal};
    }
    if (waited >= node_delay_ + rack_delay_) {
      // Level-2 delay expired too: launch anywhere rather than starve.
      if (tracer_ != nullptr) {
        tracer_->scheduler_decision(node, id,
                                    static_cast<int>(Locality::kOffRack),
                                    to_seconds(waited));
      }
      rt.waiting_since = kTimeNever;
      return MapSelection{id, 0, Locality::kOffRack};
    }
  }
  // Still within a delay window: skip this job, try the next.
  return std::nullopt;
}

std::optional<MapSelection> FairScheduler::select_map(
    NodeId node, SimTime now, JobTable& jobs, const BlockLocator& locator) {
  if (incremental_) {
    sync_share_order(jobs);
    // The loop body only touches waiting_since, never a share component, so
    // iterating the set while probing jobs is safe; a returned selection is
    // followed by a launch whose journal entry is drained next call.
    for (const ShareKey& key : share_order_) {
      if (auto picked = try_job(*key.rt, node, now, jobs, locator)) {
        return picked;
      }
    }
    return std::nullopt;
  }

  // Legacy path (A/B baseline): collect + stable_sort every opportunity.
  // Fair ordering: smallest weighted share (running maps + clones, times
  // inv weight) first; arrival order breaks ties (active_jobs() is already
  // in arrival order, stable_sort preserves it).
  scratch_order_.clear();
  for (JobRuntime& rt : jobs.active_jobs()) {
    if (!rt.pending_maps.empty()) scratch_order_.push_back(&rt);
  }
  std::stable_sort(scratch_order_.begin(), scratch_order_.end(),
                   [](const JobRuntime* a, const JobRuntime* b) {
                     return a->fair_share() < b->fair_share();
                   });

  for (JobRuntime* rt : scratch_order_) {
    if (auto picked = try_job(*rt, node, now, jobs, locator)) return picked;
  }
  return std::nullopt;
}

std::optional<JobId> FairScheduler::select_reduce(JobTable& jobs) {
  // Fewest running reduces first among jobs with launchable reduces; the
  // strict `<` keeps the earliest arrival among ties.
  if (jobs.has_locality_index()) {
    // Same scan, restricted to the ready set: it holds exactly the jobs the
    // filter below accepts, iterated in the same arrival order.
    const JobRuntime* best = nullptr;
    for (const auto& [seq, rt] : jobs.reduce_ready()) {
      if (best == nullptr || rt->running_reduces < best->running_reduces) {
        best = rt;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->spec.id;
  }
  const JobRuntime* best = nullptr;
  for (const JobRuntime& rt : jobs.active_jobs()) {
    if (!rt.maps_done() || rt.pending_reduces == 0) continue;
    if (best == nullptr || rt.running_reduces < best->running_reduces) {
      best = &rt;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->spec.id;
}

}  // namespace dare::sched
