// MapReduce job and task specifications.
//
// A job reads one input file; it has one map task per input block (HDFS
// granularity) and a configurable number of reduce tasks that start once all
// maps have finished (no slow-start, as in the paper's Hadoop 0.21 setup the
// map phase dominates the locality story).
#pragma once

#include <vector>

#include "common/types.h"

namespace dare::sched {

struct MapTaskSpec {
  BlockId block = kInvalidBlock;  ///< input block (locality unit)
  Bytes bytes = 0;                ///< input size (== block size)
  SimDuration cpu = 0;            ///< pure compute time of the map function
};

struct JobSpec {
  JobId id = kInvalidJob;
  SimTime arrival = 0;
  FileId input_file = kInvalidFile;
  std::vector<MapTaskSpec> maps;
  std::size_t reduces = 1;
  SimDuration reduce_cpu = 0;     ///< compute time per reduce task
  Bytes shuffle_bytes = 0;        ///< total map-output bytes shuffled
  /// Fair-scheduler share weight (Hadoop pools): a weight-2 job is entitled
  /// to twice the running tasks of a weight-1 job. Ignored by FIFO.
  double weight = 1.0;
};

}  // namespace dare::sched
