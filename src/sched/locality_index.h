// Inverted locality index: replica location -> pending map tasks.
//
// The JobTracker's hottest question is "does job J have a pending map whose
// input block has a replica on node N (or in N's rack)?". The seed answered
// it by scanning every pending map of the job against the name node's block
// map — O(pending maps) per job per scheduling opportunity, and the DARE
// policies make the question *more* frequent by creating replicas that turn
// misses into hits. This index inverts the relationship and maintains it
// incrementally:
//
//   by_node[job][node] = pending map indices of `job` whose block has a
//                        visible replica on `node`
//   by_rack[job][rack] = pending map indices whose block has >= 1 visible
//                        replica anywhere in `rack`
//
// Two event streams keep it current:
//  * replica deltas from the NameNode (static placement at file create,
//    dynamic DARE replicas appearing/evicting via heartbeat, node death
//    dropping every replica on the node, rejoin re-adoption, repair copies);
//  * watch/unwatch calls from the JobTable as maps enter and leave the
//    pending set (job arrival, launch, failure requeue, job kill).
//
// Equivalence with the linear scan: the scan returns the *first* pending
// position whose block matches, so JobTable answers queries by taking the
// argmin of pending-position over the candidate set (see
// JobRuntime::pending_pos). Candidate-vector order therefore never affects
// results, which keeps the structure deterministic even though replica
// deltas can arrive in unordered-map order from NameNode::node_failed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/types.h"

namespace dare::sched {

/// Slot -> candidate-list map with two layouts behind one interface.
///
/// A job only ever has candidates on the nodes holding replicas of its input
/// blocks — a few dozen of 10k nodes — but the previous dense layout paid a
/// vector header per node per job (~240 KiB per active job at 10k nodes),
/// which alone made large FIFO backlogs unrepresentable. Two regimes:
///
///  * direct (reserve_domain, small clusters): capacity covers the whole
///    key domain, slot i lives at index i, every access is one indexed
///    load — bit-for-bit the dense layout's speed, which the replica-delta
///    fan-out loops are too hot to give up;
///  * sparse (reserve_slots, hyperscale): open addressing with linear
///    probing under a masked-identity hash, so the table stays a handful of
///    cache lines no matter how many nodes the cluster has.
///
/// Entries are never removed before the owning job retires (a drained list
/// stays, exactly like a drained dense element), so probing needs no
/// tombstones.
class CandidateMap {
 public:
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// Candidate list of `slot`; a shared empty list when absent.
  const std::vector<std::uint32_t>& find(std::uint32_t slot) const {
    if (direct_) return slots_[slot].list;
    if (used_ == 0) return empty_list();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = slot & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == slot) return slots_[i].list;
      if (slots_[i].key == kEmptySlot) return empty_list();
    }
  }

  /// Mutable candidate list of `slot`, inserted empty when absent.
  std::vector<std::uint32_t>& slot_mut(std::uint32_t slot) {
    if (direct_) {
      Slot& s = slots_[slot];
      if (s.key == kEmptySlot) {
        s.key = slot;
        ++used_;
      }
      return s.list;
    }
    if (slots_.empty()) rehash(8);
    std::size_t mask = slots_.size() - 1;
    std::size_t i = slot & mask;
    while (slots_[i].key != slot) {
      if (slots_[i].key == kEmptySlot) {
        if ((used_ + 1) * 4 > slots_.size() * 3) {
          rehash(slots_.size() * 2);
          mask = slots_.size() - 1;
          i = slot & mask;
          while (slots_[i].key != kEmptySlot) i = (i + 1) & mask;
        }
        slots_[i].key = slot;
        ++used_;
        return slots_[i].list;
      }
      i = (i + 1) & mask;
    }
    return slots_[i].list;
  }

  /// Retirement audit: every present list has been drained.
  bool all_empty() const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptySlot && !s.list.empty()) return false;
    }
    return true;
  }

  std::size_t used() const { return used_; }
  bool direct() const { return direct_; }

  /// Direct mode: allocate one slot per key in [0, domain) and index without
  /// probing. Call before any insertion; every later slot value must be
  /// < domain. Worth its footprint only when the domain is small.
  void reserve_domain(std::size_t domain) {
    slots_ = std::vector<Slot>(domain);
    direct_ = true;
  }

  /// Sparse mode: pre-size the probe table (next power of two >= `slots` /
  /// 0.75 load) so the expected candidate set inserts without a rehash
  /// chain. No-op when the table is already at least that large.
  void reserve_slots(std::size_t slots) {
    std::size_t capacity = 8;
    while (slots * 4 > capacity * 3) capacity *= 2;
    if (capacity > slots_.size()) rehash(capacity);
  }

 private:
  /// Key and list side by side: the delta hot loops probe and then touch the
  /// list header, so both land on the same cache line. The hash is the
  /// identity (masked): slot keys are dense small integers (node ids, rack
  /// ids), which masked-identity spreads at least as well as any mixer while
  /// keeping adjacent ids adjacent — the watch burst walks a block's replica
  /// nodes in placement order, so consecutive probes share lines.
  struct Slot {
    std::uint32_t key = kEmptySlot;
    std::vector<std::uint32_t> list;
  };

  static const std::vector<std::uint32_t>& empty_list() {
    static const std::vector<std::uint32_t> kNone;
    return kNone;
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(capacity);
    const std::size_t mask = capacity - 1;
    for (Slot& s : old) {
      if (s.key == kEmptySlot) continue;
      std::size_t j = s.key & mask;
      while (slots_[j].key != kEmptySlot) j = (j + 1) & mask;
      slots_[j].key = s.key;
      slots_[j].list = std::move(s.list);
    }
  }

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
  bool direct_ = false;
};

class LocalityIndex {
 public:
  /// Per-job candidate lists. Nodes live inside an unordered_map, so their
  /// addresses are stable for the job's lifetime; the JobTable caches a
  /// pointer in JobRuntime and queries through it without any hash lookup.
  struct JobState {
    /// node -> pending map indices with a replica on that node.
    CandidateMap by_node;
    /// rack -> pending map indices with >= 1 replica in that rack.
    CandidateMap by_rack;
  };

  /// `node_rack[n]` is the rack of node n; `num_racks` bounds its values.
  LocalityIndex(std::size_t num_nodes, std::vector<RackId> node_rack,
                std::size_t num_racks);

  /// --- replica deltas (NameNode observer) --------------------------------
  /// A visible replica of `block` appeared / disappeared on `node`. Must
  /// mirror the name node's location map exactly: one call per actual
  /// mutation, never a repeat.
  void replica_added(BlockId block, NodeId node);
  void replica_removed(BlockId block, NodeId node);

  /// --- pending-map lifecycle (JobTable) ----------------------------------
  /// Map `map_index` of `job` (reading `block`) entered the pending set.
  void watch_map(JobId job, std::size_t map_index, BlockId block);
  /// ... left the pending set (launched, or dropped by a job kill).
  void unwatch_map(JobId job, std::size_t map_index, BlockId block);
  /// The job left the active list with no pending maps; frees its state.
  void job_retired(JobId job);

  /// --- queries ------------------------------------------------------------
  /// Pending map indices of `job` whose block is on `node` / in `node`'s
  /// rack. Unknown jobs (or jobs with no candidates) return an empty vector.
  const std::vector<std::uint32_t>& node_candidates(JobId job,
                                                    NodeId node) const;
  const std::vector<std::uint32_t>& rack_candidates(JobId job,
                                                    NodeId node) const;

  /// Hash-free variants over a cached JobState (the scheduling hot path:
  /// the Fair scheduler probes every active job per slot offer, so a map
  /// lookup per probe showed up in large-run profiles).
  const std::vector<std::uint32_t>& node_candidates(const JobState& state,
                                                    NodeId node) const {
    return state.by_node.find(static_cast<std::uint32_t>(node));
  }
  const std::vector<std::uint32_t>& rack_candidates(const JobState& state,
                                                    NodeId node) const {
    return state.by_rack.find(static_cast<std::uint32_t>(node_rack_[node]));
  }

  /// Create-or-get the job's candidate state. The returned pointer is
  /// stable until job_retired(job).
  JobState* job_state_ptr(JobId job) { return &job_state(job); }

  /// --- introspection (tests / validate) -----------------------------------
  std::size_t tracked_job_count() const { return jobs_.size(); }
  std::size_t replica_count(BlockId block) const;
  /// True iff the mirror believes `node` holds a replica of `block`.
  bool mirrors_replica(BlockId block, NodeId node) const;

 private:
  /// One pending map waiting on a block's replica set. Carries the owning
  /// job's state pointer so replica deltas touch no hash table per watcher.
  struct Watcher {
    JobId job;
    std::uint32_t map_index;
    JobState* state;
  };

  JobState& job_state(JobId job);
  /// Replicas of `block` currently in `rack` (per the mirror).
  std::size_t rack_replicas(BlockId block, RackId rack) const;
  static void drop_candidate(std::vector<std::uint32_t>& candidates,
                             std::uint32_t map_index);

  std::size_t num_nodes_;
  std::size_t num_racks_;
  std::vector<RackId> node_rack_;

  /// Slab-backed maps (watcher and job nodes churn at task / job rate).
  template <typename K, typename V>
  using IndexMap =
      std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                         common::SlabAllocator<std::pair<const K, V>>>;

  /// Mirror of NameNode::locations, maintained from deltas.
  IndexMap<BlockId, std::vector<NodeId>> block_nodes_;
  /// block -> pending maps reading it (a job may appear more than once if
  /// several of its maps share a block).
  IndexMap<BlockId, std::vector<Watcher>> watchers_;
  IndexMap<JobId, JobState> jobs_;
};

}  // namespace dare::sched
