// Inverted locality index: replica location -> pending map tasks.
//
// The JobTracker's hottest question is "does job J have a pending map whose
// input block has a replica on node N (or in N's rack)?". The seed answered
// it by scanning every pending map of the job against the name node's block
// map — O(pending maps) per job per scheduling opportunity, and the DARE
// policies make the question *more* frequent by creating replicas that turn
// misses into hits. This index inverts the relationship and maintains it
// incrementally:
//
//   by_node[job][node] = pending map indices of `job` whose block has a
//                        visible replica on `node`
//   by_rack[job][rack] = pending map indices whose block has >= 1 visible
//                        replica anywhere in `rack`
//
// Two event streams keep it current:
//  * replica deltas from the NameNode (static placement at file create,
//    dynamic DARE replicas appearing/evicting via heartbeat, node death
//    dropping every replica on the node, rejoin re-adoption, repair copies);
//  * watch/unwatch calls from the JobTable as maps enter and leave the
//    pending set (job arrival, launch, failure requeue, job kill).
//
// Equivalence with the linear scan: the scan returns the *first* pending
// position whose block matches, so JobTable answers queries by taking the
// argmin of pending-position over the candidate set (see
// JobRuntime::pending_pos). Candidate-vector order therefore never affects
// results, which keeps the structure deterministic even though replica
// deltas can arrive in unordered-map order from NameNode::node_failed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dare::sched {

class LocalityIndex {
 public:
  /// Per-job candidate lists. Nodes live inside an unordered_map, so their
  /// addresses are stable for the job's lifetime; the JobTable caches a
  /// pointer in JobRuntime and queries through it without any hash lookup.
  struct JobState {
    /// node -> pending map indices with a replica on that node.
    std::vector<std::vector<std::uint32_t>> by_node;
    /// rack -> pending map indices with >= 1 replica in that rack.
    std::vector<std::vector<std::uint32_t>> by_rack;
  };

  /// `node_rack[n]` is the rack of node n; `num_racks` bounds its values.
  LocalityIndex(std::size_t num_nodes, std::vector<RackId> node_rack,
                std::size_t num_racks);

  /// --- replica deltas (NameNode observer) --------------------------------
  /// A visible replica of `block` appeared / disappeared on `node`. Must
  /// mirror the name node's location map exactly: one call per actual
  /// mutation, never a repeat.
  void replica_added(BlockId block, NodeId node);
  void replica_removed(BlockId block, NodeId node);

  /// --- pending-map lifecycle (JobTable) ----------------------------------
  /// Map `map_index` of `job` (reading `block`) entered the pending set.
  void watch_map(JobId job, std::size_t map_index, BlockId block);
  /// ... left the pending set (launched, or dropped by a job kill).
  void unwatch_map(JobId job, std::size_t map_index, BlockId block);
  /// The job left the active list with no pending maps; frees its state.
  void job_retired(JobId job);

  /// --- queries ------------------------------------------------------------
  /// Pending map indices of `job` whose block is on `node` / in `node`'s
  /// rack. Unknown jobs (or jobs with no candidates) return an empty vector.
  const std::vector<std::uint32_t>& node_candidates(JobId job,
                                                    NodeId node) const;
  const std::vector<std::uint32_t>& rack_candidates(JobId job,
                                                    NodeId node) const;

  /// Hash-free variants over a cached JobState (the scheduling hot path:
  /// the Fair scheduler probes every active job per slot offer, so a map
  /// lookup per probe showed up in large-run profiles).
  const std::vector<std::uint32_t>& node_candidates(const JobState& state,
                                                    NodeId node) const {
    return state.by_node[node];
  }
  const std::vector<std::uint32_t>& rack_candidates(const JobState& state,
                                                    NodeId node) const {
    return state.by_rack[node_rack_[node]];
  }

  /// Create-or-get the job's candidate state. The returned pointer is
  /// stable until job_retired(job).
  JobState* job_state_ptr(JobId job) { return &job_state(job); }

  /// --- introspection (tests / validate) -----------------------------------
  std::size_t tracked_job_count() const { return jobs_.size(); }
  std::size_t replica_count(BlockId block) const;
  /// True iff the mirror believes `node` holds a replica of `block`.
  bool mirrors_replica(BlockId block, NodeId node) const;

 private:
  /// One pending map waiting on a block's replica set. Carries the owning
  /// job's state pointer so replica deltas touch no hash table per watcher.
  struct Watcher {
    JobId job;
    std::uint32_t map_index;
    JobState* state;
  };

  JobState& job_state(JobId job);
  /// Replicas of `block` currently in `rack` (per the mirror).
  std::size_t rack_replicas(BlockId block, RackId rack) const;
  static void drop_candidate(std::vector<std::uint32_t>& candidates,
                             std::uint32_t map_index);

  std::size_t num_nodes_;
  std::size_t num_racks_;
  std::vector<RackId> node_rack_;

  /// Mirror of NameNode::locations, maintained from deltas.
  std::unordered_map<BlockId, std::vector<NodeId>> block_nodes_;
  /// block -> pending maps reading it (a job may appear more than once if
  /// several of its maps share a block).
  std::unordered_map<BlockId, std::vector<Watcher>> watchers_;
  std::unordered_map<JobId, JobState> jobs_;
};

}  // namespace dare::sched
