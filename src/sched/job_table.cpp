#include "sched/job_table.h"

#include <algorithm>
#include <stdexcept>

#include "common/invariant.h"
#include "sched/locality_index.h"

namespace dare::sched {

void JobTable::attach_locality_index(LocalityIndex* index) {
  if (index == nullptr) {
    throw std::invalid_argument("JobTable: null locality index");
  }
  if (!jobs_.empty()) {
    throw std::logic_error(
        "JobTable: locality index must attach before the first job");
  }
  index_ = index;
}

void JobTable::watch_pending(JobId id, const JobRuntime& rt,
                             std::size_t map_index) {
  if (index_ != nullptr) {
    index_->watch_map(id, map_index, rt.spec.maps[map_index].block);
  }
}

void JobTable::unwatch_pending(JobId id, const JobRuntime& rt,
                               std::size_t map_index) {
  if (index_ != nullptr) {
    index_->unwatch_map(id, map_index, rt.spec.maps[map_index].block);
  }
}

void JobTable::mark_fair_dirty(JobId id, JobRuntime& rt) {
  if (!rt.fair_dirty) {
    rt.fair_dirty = true;
    fair_dirty_.push_back(id);
  }
}

std::vector<JobId> JobTable::consume_fair_dirty() {
  std::vector<JobId> drained;
  drained.swap(fair_dirty_);
  for (JobId id : drained) {
    // Retiring marks the job dirty one last time (so the scheduler drops
    // its share-set entry); under release-on-retire the runtime may already
    // be gone by the time the journal drains.
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) it->second.fair_dirty = false;
  }
  return drained;
}

void JobTable::set_retire_observer(RetireObserver observer) {
  if (!jobs_.empty()) {
    throw std::logic_error(
        "JobTable: retire observer must install before the first job");
  }
  retire_observer_ = std::move(observer);
}

void JobTable::release_job(JobId id) {
  ++released_jobs_;
  jobs_.erase(id);
}

void JobTable::update_reduce_ready(JobRuntime& rt) {
  const std::pair<std::size_t, JobRuntime*> key{rt.arrival_seq, &rt};
  if (rt.active && rt.maps_done() && rt.pending_reduces > 0) {
    reduce_ready_.insert(key);
  } else {
    reduce_ready_.erase(key);
  }
}

void JobTable::update_map_ready(JobRuntime& rt) {
  const std::pair<std::size_t, JobRuntime*> key{rt.arrival_seq, &rt};
  if (rt.active && !rt.pending_maps.empty()) {
    map_ready_.insert(key);
  } else {
    map_ready_.erase(key);
  }
}

void JobTable::retire_active(JobId id, JobRuntime& rt) {
  DARE_INVARIANT(rt.active, "JobTable: retiring a job that is not active");
  reduce_ready_.erase({rt.arrival_seq, &rt});
  map_ready_.erase({rt.arrival_seq, &rt});
  if (rt.active_prev != nullptr) {
    rt.active_prev->active_next = rt.active_next;
  } else {
    active_head_ = rt.active_next;
  }
  if (rt.active_next != nullptr) {
    rt.active_next->active_prev = rt.active_prev;
  } else {
    active_tail_ = rt.active_prev;
  }
  rt.active = false;
  rt.active_prev = nullptr;
  rt.active_next = nullptr;
  --active_count_;
  mark_fair_dirty(id, rt);
  if (index_ != nullptr) {
    index_->job_retired(id);
    rt.locality = nullptr;
  }
  if (retire_observer_) {
    retire_observer_(rt);
    // A job can retire while losing clone attempts are still in flight
    // (the winning map completes the job; the clones are killed and drain
    // through finish_clone afterwards). Defer the release until the last
    // clone retires so the fair-share accounting they carry stays valid.
    if (rt.running_clones == 0) release_job(id);
  }
}

void JobTable::add_job(const JobSpec& spec) {
  if (spec.id == kInvalidJob) {
    throw std::invalid_argument("JobTable: job needs a valid id");
  }
  if (jobs_.count(spec.id)) {
    throw std::logic_error("JobTable: duplicate job id");
  }
  if (spec.maps.empty()) {
    throw std::invalid_argument("JobTable: job needs at least one map task");
  }
  JobRuntime rt;
  rt.spec = spec;
  rt.pending_maps.resize(spec.maps.size());
  rt.pending_pos.resize(spec.maps.size());
  for (std::size_t i = 0; i < spec.maps.size(); ++i) {
    rt.pending_maps[i] = i;
    rt.pending_pos[i] = i;
  }
  rt.pending_reduces = spec.reduces;
  rt.arrival_seq = order_.size();
  rt.inv_weight = 1.0 / (spec.weight > 0.0 ? spec.weight : 1.0);
  total_pending_maps_ += rt.pending_maps.size();
  total_pending_reduces_ += rt.pending_reduces;

  // Link at the tail of the active list (arrival order). Links are set
  // after emplace so they point at the map-resident node, which is
  // reference-stable for the job's lifetime.
  rt.active = true;
  auto& stored = jobs_.emplace(spec.id, std::move(rt)).first->second;
  if (jobs_.size() > peak_resident_jobs_) peak_resident_jobs_ = jobs_.size();
  stored.active_prev = active_tail_;
  stored.active_next = nullptr;
  if (active_tail_ != nullptr) {
    active_tail_->active_next = &stored;
  } else {
    active_head_ = &stored;
  }
  active_tail_ = &stored;
  ++active_count_;
  order_.push_back(spec.id);

  mark_fair_dirty(spec.id, stored);
  update_map_ready(stored);
  if (index_ != nullptr) stored.locality = index_->job_state_ptr(spec.id);
  for (std::size_t i = 0; i < stored.spec.maps.size(); ++i) {
    watch_pending(spec.id, stored, i);
  }
}

JobRuntime& JobTable::job(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTable: unknown job");
  return it->second;
}

const JobRuntime& JobTable::job(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTable: unknown job");
  return it->second;
}

bool JobTable::has_job(JobId id) const { return jobs_.count(id) != 0; }

std::optional<std::size_t> JobTable::find_local_map(
    JobId id, NodeId node, const BlockLocator& locator) const {
  return find_local_map(job(id), node, locator);
}

std::optional<std::size_t> JobTable::find_local_map(
    const JobRuntime& rt, NodeId node, const BlockLocator& locator) const {
  if (index_ != nullptr && rt.locality != nullptr) {
    // Argmin of pending position over the indexed candidates == the first
    // match of the front-to-back scan below. (Retired jobs have a null
    // locality pointer and fall through to the scan of their — empty —
    // pending set.)
    std::size_t best = JobRuntime::kNotPending;
    for (std::uint32_t mi : index_->node_candidates(*rt.locality, node)) {
      const std::size_t pos = rt.pending_pos[mi];
      DARE_INVARIANT(pos != JobRuntime::kNotPending,
                     "JobTable: locality index lists a non-pending map");
      best = std::min(best, pos);
    }
    if (best == JobRuntime::kNotPending) return std::nullopt;
    return best;
  }
  for (std::size_t i = 0; i < rt.pending_maps.size(); ++i) {
    const MapTaskSpec& task = rt.spec.maps[rt.pending_maps[i]];
    if (locator.is_local(node, task.block)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> JobTable::find_rack_local_map(
    JobId id, NodeId node, const BlockLocator& locator) const {
  return find_rack_local_map(job(id), node, locator);
}

std::optional<std::size_t> JobTable::find_rack_local_map(
    const JobRuntime& rt, NodeId node, const BlockLocator& locator) const {
  if (index_ != nullptr && rt.locality != nullptr) {
    std::size_t best = JobRuntime::kNotPending;
    for (std::uint32_t mi : index_->rack_candidates(*rt.locality, node)) {
      const std::size_t pos = rt.pending_pos[mi];
      DARE_INVARIANT(pos != JobRuntime::kNotPending,
                     "JobTable: locality index lists a non-pending map");
      best = std::min(best, pos);
    }
    if (best == JobRuntime::kNotPending) return std::nullopt;
    return best;
  }
  for (std::size_t i = 0; i < rt.pending_maps.size(); ++i) {
    const MapTaskSpec& task = rt.spec.maps[rt.pending_maps[i]];
    if (locator.is_rack_local(node, task.block)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> JobTable::find_any_map(JobId id) const {
  const JobRuntime& rt = job(id);
  if (rt.pending_maps.empty()) return std::nullopt;
  return 0;
}

std::size_t JobTable::launch_map(JobId id, std::size_t pending_index,
                                 Locality locality) {
  JobRuntime& rt = job(id);
  if (pending_index >= rt.pending_maps.size()) {
    throw std::out_of_range("JobTable: bad pending map index");
  }
  const std::size_t map_index = rt.pending_maps[pending_index];
  unwatch_pending(id, rt, map_index);
  // Swap-erase: pending order is not semantically meaningful.
  const std::size_t moved = rt.pending_maps.back();
  rt.pending_maps[pending_index] = moved;
  rt.pending_maps.pop_back();
  rt.pending_pos[moved] = pending_index;
  rt.pending_pos[map_index] = JobRuntime::kNotPending;
  ++rt.running_maps;
  switch (locality) {
    case Locality::kNodeLocal:
      ++rt.local_launches;
      break;
    case Locality::kRackLocal:
      ++rt.rack_local_launches;
      break;
    case Locality::kOffRack:
      ++rt.remote_launches;
      break;
  }
  --total_pending_maps_;
  ++total_running_;
  mark_fair_dirty(id, rt);
  // Launching the last pending map drops the job from the map-ready set.
  if (rt.pending_maps.empty()) update_map_ready(rt);
  return map_index;
}

void JobTable::requeue_running_map(JobId id, std::size_t map_index,
                                   Locality locality) {
  JobRuntime& rt = job(id);
  if (rt.running_maps == 0) {
    throw std::logic_error("JobTable: requeue_running_map with none running");
  }
  if (map_index >= rt.spec.maps.size()) {
    throw std::out_of_range("JobTable: bad map index");
  }
  --rt.running_maps;
  rt.pending_maps.push_back(map_index);
  rt.pending_pos[map_index] = rt.pending_maps.size() - 1;
  switch (locality) {
    case Locality::kNodeLocal:
      --rt.local_launches;
      break;
    case Locality::kRackLocal:
      --rt.rack_local_launches;
      break;
    case Locality::kOffRack:
      --rt.remote_launches;
      break;
  }
  ++total_pending_maps_;
  --total_running_;
  mark_fair_dirty(id, rt);
  // 0 -> 1 pending: the job re-enters the map-ready set.
  if (rt.pending_maps.size() == 1) update_map_ready(rt);
  watch_pending(id, rt, map_index);
}

void JobTable::launch_clone(JobId id) {
  JobRuntime& rt = job(id);
  ++rt.running_clones;
  // Clones occupy slots, so the fair share they consume must be visible to
  // the scheduler — but they stay out of total_running_ and the map sums
  // (the original attempt carries the task through the accounting).
  mark_fair_dirty(id, rt);
}

void JobTable::finish_clone(JobId id) {
  JobRuntime& rt = job(id);
  if (rt.running_clones == 0) {
    throw std::logic_error("JobTable: finish_clone with none running");
  }
  --rt.running_clones;
  mark_fair_dirty(id, rt);
  // Last clone of an already-retired job: the deferred release (see
  // retire_active) happens now.
  if (retire_observer_ && !rt.active && rt.running_clones == 0) {
    release_job(id);
  }
}

void JobTable::requeue_running_reduce(JobId id) {
  JobRuntime& rt = job(id);
  if (rt.running_reduces == 0) {
    throw std::logic_error(
        "JobTable: requeue_running_reduce with none running");
  }
  --rt.running_reduces;
  ++rt.pending_reduces;
  ++total_pending_reduces_;
  --total_running_;
  // 0 -> 1 pending while maps_done(): the job re-enters the ready set.
  update_reduce_ready(rt);
}

TransitionResult JobTable::complete_map(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.running_maps == 0) {
    throw std::logic_error("JobTable: complete_map with none running");
  }
  --rt.running_maps;
  ++rt.completed_maps;
  --total_running_;
  mark_fair_dirty(id, rt);
  TransitionResult result;
  result.arrival = rt.spec.arrival;
  if (rt.spec.reduces == 0 && rt.done()) {
    rt.completion = now;
    result.job_done = true;
    retire_active(id, rt);  // may destroy rt — no reads past this point
    return result;
  }
  // The last map completing flips maps_done(): the job may become
  // reduce-ready.
  update_reduce_ready(rt);
  result.reduces_ready = rt.maps_done() && rt.pending_reduces > 0;
  return result;
}

void JobTable::launch_reduce(JobId id) {
  JobRuntime& rt = job(id);
  if (!rt.maps_done()) {
    throw std::logic_error("JobTable: reduce before maps finished");
  }
  if (rt.pending_reduces == 0) {
    throw std::logic_error("JobTable: no pending reduces");
  }
  --rt.pending_reduces;
  ++rt.running_reduces;
  --total_pending_reduces_;
  ++total_running_;
  // Launching the last pending reduce drops the job from the ready set.
  update_reduce_ready(rt);
}

TransitionResult JobTable::complete_reduce(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.running_reduces == 0) {
    throw std::logic_error("JobTable: complete_reduce with none running");
  }
  --rt.running_reduces;
  ++rt.completed_reduces;
  --total_running_;
  TransitionResult result;
  result.arrival = rt.spec.arrival;
  if (rt.done()) {
    rt.completion = now;
    result.job_done = true;
    retire_active(id, rt);  // may destroy rt — no reads past this point
  }
  return result;
}

void JobTable::fail_job(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.done()) {
    throw std::logic_error("JobTable: fail_job on a finished job");
  }
  // Drop the job's outstanding work from the global aggregates before
  // zeroing the per-job counters, so pending+running+completed bookkeeping
  // stays consistent for the jobs that remain.
  total_pending_maps_ -= rt.pending_maps.size();
  total_pending_reduces_ -= rt.pending_reduces;
  total_running_ -= rt.running_maps + rt.running_reduces;
  for (std::size_t map_index : rt.pending_maps) {
    unwatch_pending(id, rt, map_index);
    rt.pending_pos[map_index] = JobRuntime::kNotPending;
  }
  rt.pending_maps.clear();
  rt.running_maps = 0;
  rt.pending_reduces = 0;
  rt.running_reduces = 0;
  rt.failed = true;
  rt.completion = now;
  retire_active(id, rt);
}

}  // namespace dare::sched
