#include "sched/job_table.h"

#include <algorithm>
#include <stdexcept>

namespace dare::sched {

void JobTable::add_job(const JobSpec& spec) {
  if (spec.id == kInvalidJob) {
    throw std::invalid_argument("JobTable: job needs a valid id");
  }
  if (jobs_.count(spec.id)) {
    throw std::logic_error("JobTable: duplicate job id");
  }
  if (spec.maps.empty()) {
    throw std::invalid_argument("JobTable: job needs at least one map task");
  }
  JobRuntime rt;
  rt.spec = spec;
  rt.pending_maps.resize(spec.maps.size());
  for (std::size_t i = 0; i < spec.maps.size(); ++i) rt.pending_maps[i] = i;
  rt.pending_reduces = spec.reduces;
  total_pending_maps_ += rt.pending_maps.size();
  total_pending_reduces_ += rt.pending_reduces;
  jobs_.emplace(spec.id, std::move(rt));
  order_.push_back(spec.id);
  active_.push_back(spec.id);
}

JobRuntime& JobTable::job(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTable: unknown job");
  return it->second;
}

const JobRuntime& JobTable::job(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("JobTable: unknown job");
  return it->second;
}

bool JobTable::has_job(JobId id) const { return jobs_.count(id) != 0; }

std::optional<std::size_t> JobTable::find_local_map(
    JobId id, NodeId node, const BlockLocator& locator) const {
  const JobRuntime& rt = job(id);
  for (std::size_t i = 0; i < rt.pending_maps.size(); ++i) {
    const MapTaskSpec& task = rt.spec.maps[rt.pending_maps[i]];
    if (locator.is_local(node, task.block)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> JobTable::find_rack_local_map(
    JobId id, NodeId node, const BlockLocator& locator) const {
  const JobRuntime& rt = job(id);
  for (std::size_t i = 0; i < rt.pending_maps.size(); ++i) {
    const MapTaskSpec& task = rt.spec.maps[rt.pending_maps[i]];
    if (locator.is_rack_local(node, task.block)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> JobTable::find_any_map(JobId id) const {
  const JobRuntime& rt = job(id);
  if (rt.pending_maps.empty()) return std::nullopt;
  return 0;
}

std::size_t JobTable::launch_map(JobId id, std::size_t pending_index,
                                 Locality locality) {
  JobRuntime& rt = job(id);
  if (pending_index >= rt.pending_maps.size()) {
    throw std::out_of_range("JobTable: bad pending map index");
  }
  const std::size_t map_index = rt.pending_maps[pending_index];
  // Swap-erase: pending order is not semantically meaningful.
  rt.pending_maps[pending_index] = rt.pending_maps.back();
  rt.pending_maps.pop_back();
  ++rt.running_maps;
  switch (locality) {
    case Locality::kNodeLocal:
      ++rt.local_launches;
      break;
    case Locality::kRackLocal:
      ++rt.rack_local_launches;
      break;
    case Locality::kOffRack:
      ++rt.remote_launches;
      break;
  }
  --total_pending_maps_;
  ++total_running_;
  return map_index;
}

void JobTable::requeue_running_map(JobId id, std::size_t map_index,
                                   Locality locality) {
  JobRuntime& rt = job(id);
  if (rt.running_maps == 0) {
    throw std::logic_error("JobTable: requeue_running_map with none running");
  }
  if (map_index >= rt.spec.maps.size()) {
    throw std::out_of_range("JobTable: bad map index");
  }
  --rt.running_maps;
  rt.pending_maps.push_back(map_index);
  switch (locality) {
    case Locality::kNodeLocal:
      --rt.local_launches;
      break;
    case Locality::kRackLocal:
      --rt.rack_local_launches;
      break;
    case Locality::kOffRack:
      --rt.remote_launches;
      break;
  }
  ++total_pending_maps_;
  --total_running_;
}

void JobTable::requeue_running_reduce(JobId id) {
  JobRuntime& rt = job(id);
  if (rt.running_reduces == 0) {
    throw std::logic_error(
        "JobTable: requeue_running_reduce with none running");
  }
  --rt.running_reduces;
  ++rt.pending_reduces;
  ++total_pending_reduces_;
  --total_running_;
}

void JobTable::complete_map(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.running_maps == 0) {
    throw std::logic_error("JobTable: complete_map with none running");
  }
  --rt.running_maps;
  ++rt.completed_maps;
  --total_running_;
  if (rt.spec.reduces == 0 && rt.done()) {
    rt.completion = now;
    const auto it = std::find(active_.begin(), active_.end(), id);
    if (it != active_.end()) active_.erase(it);
  }
}

void JobTable::launch_reduce(JobId id) {
  JobRuntime& rt = job(id);
  if (!rt.maps_done()) {
    throw std::logic_error("JobTable: reduce before maps finished");
  }
  if (rt.pending_reduces == 0) {
    throw std::logic_error("JobTable: no pending reduces");
  }
  --rt.pending_reduces;
  ++rt.running_reduces;
  --total_pending_reduces_;
  ++total_running_;
}

void JobTable::complete_reduce(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.running_reduces == 0) {
    throw std::logic_error("JobTable: complete_reduce with none running");
  }
  --rt.running_reduces;
  ++rt.completed_reduces;
  --total_running_;
  if (rt.done()) {
    rt.completion = now;
    const auto it = std::find(active_.begin(), active_.end(), id);
    if (it != active_.end()) active_.erase(it);
  }
}

void JobTable::fail_job(JobId id, SimTime now) {
  JobRuntime& rt = job(id);
  if (rt.done()) {
    throw std::logic_error("JobTable: fail_job on a finished job");
  }
  // Drop the job's outstanding work from the global aggregates before
  // zeroing the per-job counters, so pending+running+completed bookkeeping
  // stays consistent for the jobs that remain.
  total_pending_maps_ -= rt.pending_maps.size();
  total_pending_reduces_ -= rt.pending_reduces;
  total_running_ -= rt.running_maps + rt.running_reduces;
  rt.pending_maps.clear();
  rt.running_maps = 0;
  rt.pending_reduces = 0;
  rt.running_reduces = 0;
  rt.failed = true;
  rt.completion = now;
  const auto it = std::find(active_.begin(), active_.end(), id);
  if (it != active_.end()) active_.erase(it);
}

}  // namespace dare::sched
