// Hadoop's default FIFO scheduler (JobQueueTaskScheduler).
//
// Jobs are served strictly in arrival order: the first job with pending
// maps supplies the task. Within that job the scheduler prefers a map whose
// input block is local to the requesting node, but — crucially for the
// paper's motivation — it never waits: if the head job has no local work for
// this node, a non-local map is launched immediately. With small jobs this
// yields the poor baseline locality of Fig. 7a.
#pragma once

#include "sched/scheduler.h"

namespace dare::sched {

class FifoScheduler final : public Scheduler {
 public:
  std::optional<MapSelection> select_map(NodeId node, SimTime now,
                                         JobTable& jobs,
                                         const BlockLocator& locator) override;
  std::optional<JobId> select_reduce(JobTable& jobs) override;
  std::string name() const override { return "fifo"; }
};

}  // namespace dare::sched
