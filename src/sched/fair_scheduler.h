// Fair scheduler with delay scheduling (Zaharia et al., EuroSys'10), as
// shipped in Hadoop's Fair scheduler and used in the paper's evaluation.
//
// Fairness: scheduling opportunities go to the active job with the fewest
// running tasks (equal weights), so small jobs are not starved behind large
// ones. Locality: when the chosen job has no map local to the requesting
// node it is *skipped* rather than launched non-locally; only after a job
// has waited `delay` (wall-clock simulation time since it first declined an
// opportunity) may it launch a non-local map — the "small delay" the paper
// refers to.
//
// Share ordering is maintained incrementally: a std::set keyed by
// (running_maps * inv_weight, arrival_seq) is patched from the JobTable's
// fair-share journal on each opportunity, replacing the seed's
// collect + stable_sort of every active job per slot offer. The legacy sort
// is kept behind `incremental = false` as the A/B baseline for the
// equivalence oracle and benchmarks; both paths produce bit-identical
// selection sequences (same share product, same tie-breaking).
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "sched/scheduler.h"

namespace dare::sched {

class FairScheduler final : public Scheduler {
 public:
  /// Two-level delay scheduling, as in the original delay-scheduling paper:
  /// a job waits up to `node_delay` for a node-local slot before accepting
  /// a rack-local launch, and a further `rack_delay` before accepting an
  /// off-rack launch. Zero delays behave greedily (never wait). The
  /// single-argument form uses rack_delay = node_delay.
  FairScheduler(SimDuration node_delay, SimDuration rack_delay,
                bool incremental = true);
  explicit FairScheduler(SimDuration delay);

  std::optional<MapSelection> select_map(NodeId node, SimTime now,
                                         JobTable& jobs,
                                         const BlockLocator& locator) override;
  std::optional<JobId> select_reduce(JobTable& jobs) override;
  std::string name() const override { return "fair"; }

  SimDuration node_delay() const { return node_delay_; }
  SimDuration rack_delay() const { return rack_delay_; }

 private:
  /// Fair ordering key: smallest weighted share first, arrival order on
  /// ties (arrival_seq is unique, so the comparison is a strict weak order
  /// without consulting the id). Carries the runtime pointer so iterating
  /// the set needs no per-job hash lookup.
  struct ShareKey {
    double share = 0.0;
    std::size_t seq = 0;
    JobId id = kInvalidJob;
    JobRuntime* rt = nullptr;  ///< not part of the ordering
    bool operator<(const ShareKey& other) const {
      if (share != other.share) return share < other.share;
      return seq < other.seq;
    }
  };

  /// Bring share_order_ up to date with `jobs` (full rebuild on first sight
  /// of a table, journal drain afterwards).
  void sync_share_order(JobTable& jobs);
  void update_share_entry(JobTable& jobs, JobId id);
  void insert_share_entry(JobId id, JobRuntime& rt);
  /// One job's turn at the opportunity: returns a selection, or nullopt to
  /// move on to the next job in fair order.
  std::optional<MapSelection> try_job(JobRuntime& rt, NodeId node, SimTime now,
                                      JobTable& jobs,
                                      const BlockLocator& locator);

  SimDuration node_delay_;
  SimDuration rack_delay_;
  bool incremental_;

  /// Incremental-mode state. Valid for one JobTable at a time; seeing a
  /// different table triggers a rebuild (fixtures construct fresh pairs, so
  /// in practice this fires once).
  const JobTable* synced_table_ = nullptr;
  /// Slab-backed: every fair-share journal entry erases and reinserts one
  /// tree node, so the arena turns the scheduler's steady-state churn into
  /// freelist pops.
  std::set<ShareKey, std::less<ShareKey>, common::SlabAllocator<ShareKey>>
      share_order_;
  std::unordered_map<JobId, ShareKey, std::hash<JobId>, std::equal_to<JobId>,
                     common::SlabAllocator<std::pair<const JobId, ShareKey>>>
      share_keys_;

  /// Legacy-mode scratch, reused across calls so the per-opportunity sort
  /// at least stops allocating.
  std::vector<JobRuntime*> scratch_order_;
};

}  // namespace dare::sched
