// Fair scheduler with delay scheduling (Zaharia et al., EuroSys'10), as
// shipped in Hadoop's Fair scheduler and used in the paper's evaluation.
//
// Fairness: scheduling opportunities go to the active job with the fewest
// running tasks (equal weights), so small jobs are not starved behind large
// ones. Locality: when the chosen job has no map local to the requesting
// node it is *skipped* rather than launched non-locally; only after a job
// has waited `delay` (wall-clock simulation time since it first declined an
// opportunity) may it launch a non-local map — the "small delay" the paper
// refers to.
#pragma once

#include "sched/scheduler.h"

namespace dare::sched {

class FairScheduler final : public Scheduler {
 public:
  /// Two-level delay scheduling, as in the original delay-scheduling paper:
  /// a job waits up to `node_delay` for a node-local slot before accepting
  /// a rack-local launch, and a further `rack_delay` before accepting an
  /// off-rack launch. Zero delays behave greedily (never wait). The
  /// single-argument form uses rack_delay = node_delay.
  FairScheduler(SimDuration node_delay, SimDuration rack_delay);
  explicit FairScheduler(SimDuration delay);

  std::optional<MapSelection> select_map(NodeId node, SimTime now,
                                         JobTable& jobs,
                                         const BlockLocator& locator) override;
  std::optional<JobId> select_reduce(JobTable& jobs) override;
  std::string name() const override { return "fair"; }

  SimDuration node_delay() const { return node_delay_; }
  SimDuration rack_delay() const { return rack_delay_; }

 private:
  SimDuration node_delay_;
  SimDuration rack_delay_;
};

}  // namespace dare::sched
