// Runtime state of all submitted jobs: the JobTracker's bookkeeping.
//
// The schedulers (FIFO / Fair) are pure selection strategies over this
// table; launching, completion, and metric accounting mutate it through the
// methods below so invariants (pending + running + completed == total) hold
// by construction.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sched/job.h"

namespace dare::sched {

/// Oracle answering "does `node` hold a visible replica of `block`?" and
/// "is a replica of `block` in the same rack as `node`?".
/// Backed by the name node + topology in production; fakeable in tests.
class BlockLocator {
 public:
  virtual ~BlockLocator() = default;
  virtual bool is_local(NodeId node, BlockId block) const = 0;
  /// Rack locality; single-rack topologies return true for every block.
  /// Default: no rack information (everything off-rack unless node-local).
  virtual bool is_rack_local(NodeId node, BlockId block) const {
    return is_local(node, block);
  }
};

/// How close a launched map task is to its input data — Hadoop's three
/// locality tiers.
enum class Locality { kNodeLocal, kRackLocal, kOffRack };

struct JobRuntime {
  JobSpec spec;

  /// Indices into spec.maps still waiting to launch.
  std::vector<std::size_t> pending_maps;
  std::size_t running_maps = 0;
  std::size_t completed_maps = 0;

  std::size_t pending_reduces = 0;
  std::size_t running_reduces = 0;
  std::size_t completed_reduces = 0;

  SimTime completion = kTimeNever;

  /// Terminal failure: a task attempt exhausted its retry budget and the
  /// whole job was killed (Hadoop semantics). `completion` records the kill
  /// time; the job counts as terminally accounted but not successful.
  bool failed = false;

  /// Locality accounting per tier.
  std::size_t local_launches = 0;       ///< node-local
  std::size_t rack_local_launches = 0;  ///< same rack, different node
  std::size_t remote_launches = 0;      ///< off-rack

  /// Delay-scheduling state (Fair scheduler): when the job first declined a
  /// scheduling opportunity waiting for locality; kTimeNever when it is not
  /// currently waiting.
  SimTime waiting_since = kTimeNever;

  bool maps_done() const {
    return pending_maps.empty() && running_maps == 0;
  }
  bool reduces_done() const {
    return completed_reduces == spec.reduces;
  }
  bool done() const { return failed || (maps_done() && reduces_done()); }
  std::size_t total_maps() const { return spec.maps.size(); }
};

class JobTable {
 public:
  /// Register an arrived job; its maps become pending, reduces blocked.
  void add_job(const JobSpec& spec);

  JobRuntime& job(JobId id);
  const JobRuntime& job(JobId id) const;
  bool has_job(JobId id) const;

  /// Ids of jobs not yet complete, in arrival (submission) order.
  const std::vector<JobId>& active_jobs() const { return active_; }

  /// Ids of all jobs ever submitted, in arrival order.
  const std::vector<JobId>& all_jobs() const { return order_; }

  /// Find a pending map of `job` whose block is local to `node`.
  std::optional<std::size_t> find_local_map(JobId job, NodeId node,
                                            const BlockLocator& locator) const;

  /// Find a pending map of `job` whose block has a replica in `node`'s rack
  /// (not necessarily on the node itself).
  std::optional<std::size_t> find_rack_local_map(
      JobId job, NodeId node, const BlockLocator& locator) const;

  /// Any pending map of `job` (the first pending one).
  std::optional<std::size_t> find_any_map(JobId job) const;

  /// --- state transitions ------------------------------------------------
  /// Launch pending map `pending_index` (an index into pending_maps, not
  /// into spec.maps). Returns the spec.maps index launched.
  std::size_t launch_map(JobId job, std::size_t pending_index,
                         Locality locality);

  /// A running map failed (its node died): put it back in the pending set
  /// and undo its locality accounting contribution.
  void requeue_running_map(JobId job, std::size_t map_index,
                           Locality locality);

  /// A running reduce failed: back to pending.
  void requeue_running_reduce(JobId job);

  /// A running map finished. Jobs with zero reduces complete when their
  /// last map does.
  void complete_map(JobId job, SimTime now);

  /// Launch one reduce. Requires maps_done() and pending_reduces > 0.
  void launch_reduce(JobId job);

  /// A running reduce finished; when the job completes, record the time and
  /// retire it from the active list.
  void complete_reduce(JobId job, SimTime now);

  /// Kill a job after a task attempt exhausted its retries: mark it failed,
  /// drop its pending/running work from the aggregates, and retire it from
  /// the active list. The caller is responsible for cancelling the job's
  /// in-flight attempt events. Throws if the job is already done or failed.
  void fail_job(JobId job, SimTime now);

  /// --- aggregates ---------------------------------------------------------
  std::size_t total_pending_maps() const { return total_pending_maps_; }
  std::size_t total_pending_reduces() const { return total_pending_reduces_; }
  std::size_t total_running() const { return total_running_; }
  bool all_done() const {
    return active_.empty();
  }

 private:
  std::unordered_map<JobId, JobRuntime> jobs_;
  std::vector<JobId> order_;
  std::vector<JobId> active_;
  std::size_t total_pending_maps_ = 0;
  std::size_t total_pending_reduces_ = 0;
  std::size_t total_running_ = 0;
};

}  // namespace dare::sched
