// Runtime state of all submitted jobs: the JobTracker's bookkeeping.
//
// The schedulers (FIFO / Fair) are pure selection strategies over this
// table; launching, completion, and metric accounting mutate it through the
// methods below so invariants (pending + running + completed == total) hold
// by construction.
//
// Locality queries run in one of two modes:
//  * with a LocalityIndex attached (production), find_local_map /
//    find_rack_local_map answer from the inverted index in O(candidates on
//    the node) by taking the argmin of pending position — bit-identical to
//    the scan below;
//  * without one (unit tests with fake locators, or the A/B "legacy" mode),
//    they scan every pending map against the BlockLocator.
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "sched/job.h"
#include "sched/locality_index.h"

namespace dare::sched {

/// Oracle answering "does `node` hold a visible replica of `block`?" and
/// "is a replica of `block` in the same rack as `node`?".
/// Backed by the name node + topology in production; fakeable in tests.
class BlockLocator {
 public:
  virtual ~BlockLocator() = default;
  virtual bool is_local(NodeId node, BlockId block) const = 0;
  /// Rack locality; single-rack topologies return true for every block.
  /// Default: no rack information (everything off-rack unless node-local).
  virtual bool is_rack_local(NodeId node, BlockId block) const {
    return is_local(node, block);
  }
};

/// How close a launched map task is to its input data — Hadoop's three
/// locality tiers.
enum class Locality { kNodeLocal, kRackLocal, kOffRack };

/// What a completion transition did to its job — returned by value so
/// callers never have to re-read the JobRuntime after the call (with a
/// retire observer installed, a completed job's runtime may already have
/// been released when the call returns).
struct TransitionResult {
  /// This transition completed the job (its completion time is `now`).
  bool job_done = false;
  /// The job's submission time (always valid, even after release).
  SimTime arrival = kTimeNever;
  /// The job has maps done and reduces waiting to launch.
  bool reduces_ready = false;
};

struct JobRuntime {
  /// pending_pos value for a map task that is not currently pending.
  static constexpr std::size_t kNotPending = static_cast<std::size_t>(-1);

  JobSpec spec;

  /// Indices into spec.maps still waiting to launch.
  std::vector<std::size_t> pending_maps;
  /// Inverse of pending_maps: spec.maps index -> its position in
  /// pending_maps, kNotPending while launched/completed. Lets the locality
  /// index answer "earliest pending candidate" without scanning.
  std::vector<std::size_t> pending_pos;
  std::size_t running_maps = 0;
  std::size_t completed_maps = 0;
  /// Proactive clone attempts currently running for this job. Clones ride
  /// outside the pending/running/completed map accounting (the original
  /// attempt carries the task), but they occupy real slots and therefore
  /// count toward the job's fair share.
  std::size_t running_clones = 0;

  std::size_t pending_reduces = 0;
  std::size_t running_reduces = 0;
  std::size_t completed_reduces = 0;

  SimTime completion = kTimeNever;

  /// Terminal failure: a task attempt exhausted its retry budget and the
  /// whole job was killed (Hadoop semantics). `completion` records the kill
  /// time; the job counts as terminally accounted but not successful.
  bool failed = false;

  /// Locality accounting per tier.
  std::size_t local_launches = 0;       ///< node-local
  std::size_t rack_local_launches = 0;  ///< same rack, different node
  std::size_t remote_launches = 0;      ///< off-rack

  /// Delay-scheduling state (Fair scheduler): when the job first declined a
  /// scheduling opportunity waiting for locality; kTimeNever when it is not
  /// currently waiting.
  SimTime waiting_since = kTimeNever;

  /// Submission index (position in all_jobs()); breaks fair-share ties in
  /// arrival order without re-deriving it from the order vector.
  std::size_t arrival_seq = 0;
  /// Cached 1.0 / max(spec.weight, default): the fair share is computed as
  /// running_maps * inv_weight on every comparison, so the division happens
  /// once per job instead of once per scheduling opportunity. Both the
  /// incremental and the legacy fair paths use this product, keeping their
  /// floating-point results bit-identical.
  double inv_weight = 1.0;

  /// Membership + links of the intrusive active list (see active_jobs()).
  /// Pointers, not ids: iteration must not pay a hash lookup per step
  /// (JobRuntime nodes are reference-stable inside the unordered_map).
  bool active = false;
  JobRuntime* active_prev = nullptr;
  JobRuntime* active_next = nullptr;

  /// Dedup flag for the fair-share change journal.
  bool fair_dirty = false;

  /// Cached pointer to this job's LocalityIndex candidate lists (null when
  /// no index is attached, or after retirement). Lets the find_*_map hot
  /// path read candidates directly instead of hashing the JobId per probe.
  LocalityIndex::JobState* locality = nullptr;

  bool maps_done() const {
    return pending_maps.empty() && running_maps == 0;
  }
  /// Weighted fair share consumed by this job's running work (original map
  /// attempts plus proactive clones). Both the incremental and the legacy
  /// fair paths call this, keeping their floating-point results
  /// bit-identical; with cloning disabled running_clones is always 0 and
  /// the product reduces to the historical running_maps * inv_weight.
  double fair_share() const {
    return static_cast<double>(running_maps + running_clones) * inv_weight;
  }
  bool reduces_done() const {
    return completed_reduces == spec.reduces;
  }
  bool done() const { return failed || (maps_done() && reduces_done()); }
  std::size_t total_maps() const { return spec.maps.size(); }
};

class JobTable;

/// Forward-iterable view of the not-yet-complete jobs in arrival order,
/// backed by an intrusive doubly-linked list threaded through JobRuntime —
/// retirement from the middle is O(1) (the seed erased from a vector), and
/// iteration chases pointers instead of hashing a JobId per step (the
/// schedulers walk this list on every scheduling opportunity, so per-step
/// lookups dominated large-run profiles).
class ActiveJobs {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = JobRuntime;
    using difference_type = std::ptrdiff_t;
    using pointer = JobRuntime*;
    using reference = JobRuntime&;

    iterator() = default;
    explicit iterator(JobRuntime* rt) : rt_(rt) {}

    JobRuntime& operator*() const { return *rt_; }
    JobRuntime* operator->() const { return rt_; }
    iterator& operator++() {
      rt_ = rt_->active_next;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const iterator& other) const { return rt_ == other.rt_; }
    bool operator!=(const iterator& other) const { return rt_ != other.rt_; }

   private:
    JobRuntime* rt_ = nullptr;
  };

  iterator begin() const;
  iterator end() const { return iterator(nullptr); }
  bool empty() const;
  std::size_t size() const;
  /// First (oldest) active job. Requires !empty().
  JobId front() const;

 private:
  friend class JobTable;
  explicit ActiveJobs(const JobTable* table) : table_(table) {}
  const JobTable* table_;
};

class JobTable {
 public:
  JobTable() = default;
  /// Not copyable/movable: the active list is threaded through map-resident
  /// JobRuntime nodes, and schedulers cache the table's address.
  JobTable(const JobTable&) = delete;
  JobTable& operator=(const JobTable&) = delete;

  /// Register an arrived job; its maps become pending, reduces blocked.
  void add_job(const JobSpec& spec);

  JobRuntime& job(JobId id);
  const JobRuntime& job(JobId id) const;
  bool has_job(JobId id) const;

  /// Ids of jobs not yet complete, in arrival (submission) order.
  ActiveJobs active_jobs() const { return ActiveJobs(this); }

  /// Ids of all jobs ever submitted, in arrival order.
  const std::vector<JobId>& all_jobs() const { return order_; }

  /// Attach the inverted locality index; from then on every pending-map
  /// transition is published to it and the find_*_map queries answer from
  /// it (the BlockLocator argument is ignored). Must be attached before the
  /// first add_job; the index must outlive the table's mutations.
  void attach_locality_index(LocalityIndex* index);
  bool has_locality_index() const { return index_ != nullptr; }

  /// Find a pending map of `job` whose block is local to `node`.
  /// Returns the smallest matching position in pending_maps (the same
  /// element a front-to-back scan finds first).
  std::optional<std::size_t> find_local_map(JobId job, NodeId node,
                                            const BlockLocator& locator) const;

  /// Find a pending map of `job` whose block has a replica in `node`'s rack
  /// (not necessarily on the node itself).
  std::optional<std::size_t> find_rack_local_map(
      JobId job, NodeId node, const BlockLocator& locator) const;

  /// Any pending map of `job` (the first pending one).
  std::optional<std::size_t> find_any_map(JobId job) const;

  /// Lookup-free variants for callers already holding the runtime (the
  /// schedulers, which iterate active_jobs()).
  std::optional<std::size_t> find_local_map(const JobRuntime& rt, NodeId node,
                                            const BlockLocator& locator) const;
  std::optional<std::size_t> find_rack_local_map(
      const JobRuntime& rt, NodeId node, const BlockLocator& locator) const;

  /// --- state transitions ------------------------------------------------
  /// Launch pending map `pending_index` (an index into pending_maps, not
  /// into spec.maps). Returns the spec.maps index launched.
  std::size_t launch_map(JobId job, std::size_t pending_index,
                         Locality locality);

  /// A running map failed (its node died): put it back in the pending set
  /// and undo its locality accounting contribution.
  void requeue_running_map(JobId job, std::size_t map_index,
                           Locality locality);

  /// A running reduce failed: back to pending.
  void requeue_running_reduce(JobId job);

  /// A proactive clone attempt launched for `job`: bumps running_clones and
  /// republishes the fair-share key. Clones never touch the pending /
  /// running / completed map sums.
  void launch_clone(JobId job);

  /// A clone attempt retired (won the race, was killed by the winner, swept
  /// by node loss, or its job failed). Throws std::logic_error when no
  /// clone is running — the cluster retires each clone exactly once.
  void finish_clone(JobId job);

  /// A running map finished. Jobs with zero reduces complete when their
  /// last map does. The returned TransitionResult carries everything the
  /// caller needs — do not re-read the runtime after a job_done result when
  /// a retire observer is installed.
  TransitionResult complete_map(JobId job, SimTime now);

  /// Launch one reduce. Requires maps_done() and pending_reduces > 0.
  void launch_reduce(JobId job);

  /// A running reduce finished; when the job completes, record the time and
  /// retire it from the active list. Same re-read caveat as complete_map.
  TransitionResult complete_reduce(JobId job, SimTime now);

  /// Kill a job after a task attempt exhausted its retries: mark it failed,
  /// drop its pending/running work from the aggregates, and retire it from
  /// the active list. The caller is responsible for cancelling the job's
  /// in-flight attempt events. Throws if the job is already done or failed.
  void fail_job(JobId job, SimTime now);

  /// --- reduce-ready set ---------------------------------------------------
  /// Active jobs with maps_done() and pending_reduces > 0, keyed by
  /// arrival_seq so iteration is in arrival order — exactly the subset (and
  /// order) the seed's select_reduce scan visited, without walking jobs
  /// still in their map phase. Maintained incrementally on the transitions
  /// that can change membership; the schedulers use it when a locality
  /// index is attached (the A/B legacy mode keeps the seed's full scan).
  using ReduceReadySet =
      std::set<std::pair<std::size_t, JobRuntime*>,
               std::less<std::pair<std::size_t, JobRuntime*>>,
               common::SlabAllocator<std::pair<std::size_t, JobRuntime*>>>;
  const ReduceReadySet& reduce_ready() const { return reduce_ready_; }

  /// --- map-ready set ------------------------------------------------------
  /// Active jobs with pending maps, keyed by arrival_seq. The FIFO scheduler
  /// always launches from the first such job (it never declines), so its
  /// selection reduces to this set's first element — the seed's scan paid
  /// O(active jobs) per opportunity walking the reduce-phase prefix, which
  /// dominated large-run profiles. Same indexed-mode gating as reduce_ready.
  const ReduceReadySet& map_ready() const { return map_ready_; }

  /// --- fair-share change journal -----------------------------------------
  /// Jobs whose fair-share key (running maps, weight) or set membership
  /// (active with pending maps) may have changed since the last drain, each
  /// listed at most once. The FairScheduler drains this instead of
  /// re-sorting every active job per scheduling opportunity.
  std::vector<JobId> consume_fair_dirty();

  /// --- aggregates ---------------------------------------------------------
  std::size_t total_pending_maps() const { return total_pending_maps_; }
  std::size_t total_pending_reduces() const { return total_pending_reduces_; }
  std::size_t total_running() const { return total_running_; }
  bool all_done() const { return active_count_ == 0; }

  /// --- retirement / O(active) residency ----------------------------------
  /// Observer invoked exactly once per job as it retires (completes or
  /// fails), while its runtime is still fully readable. Installing an
  /// observer also switches the table to release-on-retire: once the
  /// observer has run and the job's last clone attempt has finished, the
  /// JobRuntime is destroyed and the table's residency stays O(active jobs)
  /// instead of O(all jobs ever submitted). Callers must then treat the
  /// observer callback as their only chance to copy per-job metrics out.
  using RetireObserver = std::function<void(const JobRuntime&)>;
  void set_retire_observer(RetireObserver observer);

  /// Runtimes currently held (active + retired-but-not-released). Without a
  /// retire observer this equals all_jobs().size().
  std::size_t resident_jobs() const { return jobs_.size(); }
  /// Runtimes released so far under release-on-retire.
  std::size_t released_jobs() const { return released_jobs_; }
  /// High-water mark of resident_jobs(): the quantity the O(active)
  /// residency discipline bounds (streamed runs keep it near the live
  /// backlog, far below the total job count).
  std::size_t peak_resident_jobs() const { return peak_resident_jobs_; }

 private:
  friend class ActiveJobs;

  /// Unlink from the active list (idempotent per job: callers retire at
  /// most once because done() flips exactly once). With a retire observer
  /// installed this may destroy `rt` — callers must not touch it after.
  void retire_active(JobId id, JobRuntime& rt);
  /// Destroy a retired job's runtime (release-on-retire mode only).
  void release_job(JobId id);
  void mark_fair_dirty(JobId id, JobRuntime& rt);
  /// Recompute `rt`'s reduce_ready_ membership after a transition.
  void update_reduce_ready(JobRuntime& rt);
  /// Recompute `rt`'s map_ready_ membership after a pending-set transition.
  void update_map_ready(JobRuntime& rt);
  /// Publish a pending-set entry/exit to the locality index, if attached.
  void watch_pending(JobId id, const JobRuntime& rt, std::size_t map_index);
  void unwatch_pending(JobId id, const JobRuntime& rt, std::size_t map_index);

  /// Slab-backed: a released JobRuntime node is recycled by a later arrival
  /// instead of round-tripping through the heap, so under release-on-retire
  /// the steady-state churn of a streamed run allocates nothing.
  std::unordered_map<JobId, JobRuntime, std::hash<JobId>, std::equal_to<JobId>,
                     common::SlabAllocator<std::pair<const JobId, JobRuntime>>>
      jobs_;
  std::vector<JobId> order_;
  JobRuntime* active_head_ = nullptr;
  JobRuntime* active_tail_ = nullptr;
  std::size_t active_count_ = 0;
  LocalityIndex* index_ = nullptr;
  ReduceReadySet reduce_ready_;
  ReduceReadySet map_ready_;
  std::vector<JobId> fair_dirty_;
  std::size_t total_pending_maps_ = 0;
  std::size_t total_pending_reduces_ = 0;
  std::size_t total_running_ = 0;
  RetireObserver retire_observer_;
  std::size_t released_jobs_ = 0;
  std::size_t peak_resident_jobs_ = 0;
};

inline ActiveJobs::iterator ActiveJobs::begin() const {
  return iterator(table_->active_head_);
}

inline bool ActiveJobs::empty() const { return table_->active_count_ == 0; }

inline std::size_t ActiveJobs::size() const { return table_->active_count_; }

inline JobId ActiveJobs::front() const {
  return table_->active_head_->spec.id;
}

}  // namespace dare::sched
