// Stochastic node-churn model: when nodes fail, how they fail, and how long
// they stay down.
//
// Real clusters do not fail on a script. Each worker alternates between an
// up period (exponential, mean MTBF) and a down period (exponential, mean
// MTTR). A failure is *transient* (the machine reboots and rejoins with its
// disk contents stale but intact) or *permanent* (the disk is lost with the
// node) with a configurable split, matching the recovery taxonomy used by
// HDFS operators. Failures can optionally be rack-correlated: a sampled
// fraction of failures takes the victim's whole rack down with it (switch
// or PDU loss), which is the scenario HDFS's rack-aware placement defends
// against. Independently, any completed task attempt can be failed with a
// small probability (task JVM crashes), exercising Hadoop's attempt-retry
// and blacklisting machinery.
//
// Everything is driven by a forked `Rng` stream, so enabling churn never
// perturbs the draws of other components and every schedule is
// bit-reproducible from the seed (this directory is covered by
// tools/dare_lint.py's determinism rules).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"

namespace dare::faults {

/// How a node failure affects its disk.
enum class FaultKind {
  kTransient,  ///< node returns after a downtime; disk contents stale but kept
  kPermanent,  ///< node (and its disk) is gone for good
};

struct FaultInjectionParams {
  /// Master switch; when false no fault process is created and runs are
  /// bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Mean time between failures per node, seconds (exponential).
  double mtbf_s = 600.0;

  /// Mean time to recovery for transient failures, seconds (exponential).
  double mttr_s = 45.0;

  /// Fraction of failures that are permanent (disk lost, no rejoin).
  double permanent_fraction = 0.15;

  /// Probability that a failure takes the victim's whole rack down with it
  /// (top-of-rack switch / PDU loss). Ignored on single-rack topologies.
  double rack_correlation = 0.0;

  /// Probability that an otherwise-successful task attempt fails on
  /// completion (task JVM crash). Drives attempt retries and blacklisting.
  double task_failure_prob = 0.0;

  /// The injector never reduces the physically-live worker count below this
  /// floor (a cluster with no survivors cannot finish any run).
  std::size_t min_live_workers = 3;
};

/// Silent data-corruption model: per-replica bit rot discovered on read plus
/// latent whole-replica sector loss striking idle copies in the background.
struct CorruptionParams {
  /// Master switch; when false no corruption process is created and runs are
  /// bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Expected checksum failures per gigabyte scanned. Each verified read of
  /// `bytes` flips its replica corrupt with probability
  /// 1 - exp(-bitrot_per_gb * bytes / 1e9).
  double bitrot_per_gb = 0.0;

  /// Mean time between latent sector-loss events cluster-wide, seconds
  /// (exponential). Each event silently corrupts one replica on one random
  /// live node; the damage surfaces only when a read verifies the copy.
  /// Zero disables the latent process (bit rot only).
  double sector_mtbf_s = 0.0;
};

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN or non-positive rates, fractions outside [0, 1],
/// or (when enabled) a live-worker floor at or above the worker count.
void validate_fault_params(const FaultInjectionParams& params,
                           std::size_t worker_count);

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN/negative rates (sector_mtbf_s may be zero to
/// disable the latent process, but not negative).
void validate_corruption_params(const CorruptionParams& params);

/// One sampled node failure.
struct FailureSample {
  FaultKind kind = FaultKind::kTransient;
  /// Transient only: how long the node stays down before rejoining.
  SimDuration downtime = 0;
  /// Whether this failure takes the victim's rack peers down too.
  bool rack_correlated = false;
};

/// Per-cluster failure sampler. One instance serves every node (the draws
/// interleave in event order, which is deterministic); all state lives in a
/// forked RNG stream.
class FaultProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument when
  /// the parameters are out of range (non-positive MTBF/MTTR, probabilities
  /// outside [0, 1]).
  FaultProcess(const FaultInjectionParams& params, Rng& parent);

  /// Time until the next failure of a node that is up now.
  SimDuration sample_uptime();

  /// Kind, downtime, and rack correlation of a failure happening now.
  FailureSample sample_failure();

  /// One Bernoulli trial of the per-attempt task failure probability.
  bool sample_task_failure();

  const FaultInjectionParams& params() const { return params_; }

 private:
  FaultInjectionParams params_;
  Rng rng_;
};

/// Per-cluster corruption sampler. All state lives in a forked RNG stream so
/// enabling corruption never perturbs the draws of other components.
class CorruptionProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument (via
  /// validate_corruption_params) when the parameters are out of range.
  CorruptionProcess(const CorruptionParams& params, Rng& parent);

  /// One Bernoulli trial: does scanning `bytes` of a replica detect fresh
  /// bit rot? Always draws exactly once, so the stream position is
  /// independent of the outcome.
  bool sample_read_corruption(Bytes bytes);

  /// Time until the next latent sector-loss event. Only meaningful when
  /// sector_mtbf_s > 0.
  SimDuration sample_latent_interval();

  /// Uniform draw in [0, 1) used to pick the victim node/replica of a
  /// latent event. Kept as a raw fraction so the caller can map it onto
  /// whatever candidate list exists at event time without burning a
  /// variable number of draws.
  double pick_fraction();

  const CorruptionParams& params() const { return params_; }

 private:
  CorruptionParams params_;
  Rng rng_;
};

}  // namespace dare::faults
