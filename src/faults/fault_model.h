// Stochastic node-churn model: when nodes fail, how they fail, and how long
// they stay down.
//
// Real clusters do not fail on a script. Each worker alternates between an
// up period (exponential, mean MTBF) and a down period (exponential, mean
// MTTR). A failure is *transient* (the machine reboots and rejoins with its
// disk contents stale but intact) or *permanent* (the disk is lost with the
// node) with a configurable split, matching the recovery taxonomy used by
// HDFS operators. Failures can optionally be rack-correlated: a sampled
// fraction of failures takes the victim's whole rack down with it (switch
// or PDU loss), which is the scenario HDFS's rack-aware placement defends
// against. Independently, any completed task attempt can be failed with a
// small probability (task JVM crashes), exercising Hadoop's attempt-retry
// and blacklisting machinery.
//
// Everything is driven by a forked `Rng` stream, so enabling churn never
// perturbs the draws of other components and every schedule is
// bit-reproducible from the seed (this directory is covered by
// tools/dare_lint.py's determinism rules).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"

namespace dare::faults {

/// How a node failure affects its disk.
enum class FaultKind {
  kTransient,  ///< node returns after a downtime; disk contents stale but kept
  kPermanent,  ///< node (and its disk) is gone for good
};

struct FaultInjectionParams {
  /// Master switch; when false no fault process is created and runs are
  /// bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Mean time between failures per node, seconds (exponential).
  double mtbf_s = 600.0;

  /// Mean time to recovery for transient failures, seconds (exponential).
  double mttr_s = 45.0;

  /// Fraction of failures that are permanent (disk lost, no rejoin).
  double permanent_fraction = 0.15;

  /// Probability that a failure takes the victim's whole rack down with it
  /// (top-of-rack switch / PDU loss). Ignored on single-rack topologies.
  double rack_correlation = 0.0;

  /// Probability that an otherwise-successful task attempt fails on
  /// completion (task JVM crash). Drives attempt retries and blacklisting.
  double task_failure_prob = 0.0;

  /// The injector never reduces the physically-live worker count below this
  /// floor (a cluster with no survivors cannot finish any run).
  std::size_t min_live_workers = 3;
};

/// Silent data-corruption model: per-replica bit rot discovered on read plus
/// latent whole-replica sector loss striking idle copies in the background.
struct CorruptionParams {
  /// Master switch; when false no corruption process is created and runs are
  /// bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Expected checksum failures per gigabyte scanned. Each verified read of
  /// `bytes` flips its replica corrupt with probability
  /// 1 - exp(-bitrot_per_gb * bytes / 1e9).
  double bitrot_per_gb = 0.0;

  /// Mean time between latent sector-loss events cluster-wide, seconds
  /// (exponential). Each event silently corrupts one replica on one random
  /// live node; the damage surfaces only when a read verifies the copy.
  /// Zero disables the latent process (bit rot only).
  double sector_mtbf_s = 0.0;
};

/// Straggler / degraded-mode model: nodes that limp rather than fail.
///
/// Two independent mechanisms, both on the same forked stream:
///  - *Persistent degradation*: each node alternates between nominal speed
///    and a degraded mode (exponential onset/recovery) during which its
///    compute and disk are slowed by constant factors. Optionally
///    rack-correlated (a shared switch or PDU limps, dragging the victim's
///    rack peers into degradation with it).
///  - *Heavy-tailed task inflation*: any launched task attempt can have its
///    service time multiplied by a bounded-Pareto (or clamped lognormal)
///    factor, reproducing the heavy-tailed attempt durations that motivate
///    proactive cloning (arXiv 1501.02330).
struct StragglerParams {
  /// Master switch; when false no straggler process is created and runs are
  /// bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Mean time between degraded-mode onsets per node, seconds (exponential).
  double degrade_mtbf_s = 240.0;

  /// Mean length of a degraded episode, seconds (exponential).
  double degrade_duration_s = 60.0;

  /// Compute-time multiplier while a node is degraded (>= 1).
  double compute_slowdown = 3.0;

  /// Disk-read multiplier while a replica holder is degraded (>= 1). Slows
  /// both local reads on the degraded node and the disk leg of remote reads
  /// served from it.
  double disk_slowdown = 2.0;

  /// Probability that a degraded-mode onset drags the victim's rack peers
  /// into the same episode (limping top-of-rack switch). Ignored on
  /// single-rack topologies.
  double rack_correlation = 0.0;

  /// Per-attempt probability of heavy-tailed service-time inflation.
  double tail_prob = 0.0;

  /// Bounded-Pareto shape of the inflation factor (smaller = heavier tail).
  double tail_alpha = 1.5;

  /// Upper bound of the inflation factor; the factor is drawn from
  /// [1, tail_cap]. Must be greater than 1.
  double tail_cap = 10.0;

  /// When true the inflation factor is a Lognormal(0, tail_sigma) draw
  /// clamped to [1, tail_cap] instead of a bounded Pareto.
  bool tail_lognormal = false;

  /// Sigma of the underlying normal for the lognormal tail variant.
  double tail_sigma = 0.75;
};

/// Network-fault model: the interconnect limps or tears, the machines stay
/// up.
///
/// Two independent per-rack episode chains, both on the same forked stream:
///  - *Rack partitions*: a top-of-rack switch outage cuts the whole rack off
///    from the rest of the cluster (and from the master). Heartbeats across
///    the boundary are lost, so the PR 2 missed-beat detector declares the
///    rack's nodes dead even though they are physically alive; when the
///    partition heals they re-register and the NameNode reconciles their
///    block reports exactly as for a rebooted node.
///  - *Uplink degradation*: a rack's uplink is congested/renegotiated for a
///    while — cross-rack transfers touching the rack keep a fraction of
///    their bandwidth and see their latency inflated.
struct NetworkFaultParams {
  /// Master switch; when false no network-fault process is created and runs
  /// are bit-identical to a build without this subsystem.
  bool enabled = false;

  /// Mean time between rack-partition onsets per rack, seconds
  /// (exponential). Partitions never fire on single-rack topologies and at
  /// most rack_count-1 racks are partitioned at once (the cluster always
  /// keeps a connected majority side with the master).
  double partition_mtbf_s = 900.0;

  /// Mean length of a partition episode, seconds (exponential).
  double partition_duration_s = 45.0;

  /// Mean time between uplink-degradation onsets per rack, seconds
  /// (exponential).
  double link_degrade_mtbf_s = 400.0;

  /// Mean length of an uplink-degradation episode, seconds (exponential).
  double link_degrade_duration_s = 60.0;

  /// Fraction of bandwidth a degraded uplink keeps, in (0, 1].
  double bandwidth_cut = 0.25;

  /// Latency multiplier on transfers crossing a degraded uplink (>= 1).
  double latency_inflation = 4.0;

  /// Fail-fast penalty a reader pays when its preferred replica sits behind
  /// a partitioned boundary: the connect attempt times out quickly and the
  /// read retries from a reachable replica. Charged once per affected read;
  /// no RNG draw (a constant keeps disabled runs bit-identical).
  double connect_timeout_s = 0.25;
};

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN or non-positive rates, fractions outside [0, 1],
/// or (when enabled) a live-worker floor at or above the worker count.
void validate_fault_params(const FaultInjectionParams& params,
                           std::size_t worker_count);

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN/negative rates (sector_mtbf_s may be zero to
/// disable the latent process, but not negative).
void validate_corruption_params(const CorruptionParams& params);

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN or non-positive rates, slowdowns below 1,
/// probabilities outside [0, 1], or a tail cap at or below 1.
void validate_straggler_params(const StragglerParams& params);

/// Throws std::invalid_argument naming the offending field when `params`
/// is out of range: NaN or non-positive rates, a bandwidth cut outside
/// (0, 1], a latency inflation below 1, or a negative connect timeout.
void validate_netfault_params(const NetworkFaultParams& params);

/// One sampled node failure.
struct FailureSample {
  FaultKind kind = FaultKind::kTransient;
  /// Transient only: how long the node stays down before rejoining.
  SimDuration downtime = 0;
  /// Whether this failure takes the victim's rack peers down too.
  bool rack_correlated = false;
};

/// Per-cluster failure sampler. One instance serves every node (the draws
/// interleave in event order, which is deterministic); all state lives in a
/// forked RNG stream.
class FaultProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument when
  /// the parameters are out of range (non-positive MTBF/MTTR, probabilities
  /// outside [0, 1]).
  FaultProcess(const FaultInjectionParams& params, Rng& parent);

  /// Time until the next failure of a node that is up now.
  SimDuration sample_uptime();

  /// Kind, downtime, and rack correlation of a failure happening now.
  FailureSample sample_failure();

  /// One Bernoulli trial of the per-attempt task failure probability.
  bool sample_task_failure();

  const FaultInjectionParams& params() const { return params_; }

 private:
  FaultInjectionParams params_;
  Rng rng_;
};

/// Per-cluster corruption sampler. All state lives in a forked RNG stream so
/// enabling corruption never perturbs the draws of other components.
class CorruptionProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument (via
  /// validate_corruption_params) when the parameters are out of range.
  CorruptionProcess(const CorruptionParams& params, Rng& parent);

  /// One Bernoulli trial: does scanning `bytes` of a replica detect fresh
  /// bit rot? Always draws exactly once, so the stream position is
  /// independent of the outcome.
  bool sample_read_corruption(Bytes bytes);

  /// Time until the next latent sector-loss event. Only meaningful when
  /// sector_mtbf_s > 0.
  SimDuration sample_latent_interval();

  /// Uniform draw in [0, 1) used to pick the victim node/replica of a
  /// latent event. Kept as a raw fraction so the caller can map it onto
  /// whatever candidate list exists at event time without burning a
  /// variable number of draws.
  double pick_fraction();

  const CorruptionParams& params() const { return params_; }

 private:
  CorruptionParams params_;
  Rng rng_;
};

/// One sampled degraded-mode onset.
struct DegradeSample {
  /// How long the episode lasts before the node recovers nominal speed.
  SimDuration duration = 0;
  /// Whether this onset drags the victim's rack peers into degradation too.
  bool rack_correlated = false;
};

/// Per-cluster straggler sampler. One instance serves every node (the draws
/// interleave in event order, which is deterministic); all state lives in a
/// forked RNG stream so enabling stragglers never perturbs the draws of
/// other components.
class StragglerProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument (via
  /// validate_straggler_params) when the parameters are out of range.
  StragglerProcess(const StragglerParams& params, Rng& parent);

  /// Time until the next degraded-mode onset of a node running at nominal
  /// speed now.
  SimDuration sample_degrade_uptime();

  /// Duration and rack correlation of a degraded episode starting now.
  DegradeSample sample_degrade();

  /// Per-attempt service-time inflation factor (>= 1; exactly 1 when the
  /// tail coin misses). The heavy-tailed factor is drawn on every call so
  /// the stream position is independent of the coin's outcome.
  double sample_task_inflation();

  const StragglerParams& params() const { return params_; }

 private:
  StragglerParams params_;
  Rng rng_;
};

/// Per-cluster network-fault sampler. One instance serves every rack's
/// partition and uplink-degradation episode chains (the draws interleave in
/// event order, which is deterministic); all state lives in a forked RNG
/// stream so enabling network faults never perturbs the draws of other
/// components. Every sampler draws exactly once per call, so the stream
/// position is independent of what the caller does with the sample.
class NetworkFaultProcess {
 public:
  /// Forks a child stream off `parent`. Throws std::invalid_argument (via
  /// validate_netfault_params) when the parameters are out of range.
  NetworkFaultProcess(const NetworkFaultParams& params, Rng& parent);

  /// Time until the next partition onset of a rack that is connected now.
  SimDuration sample_partition_uptime();

  /// Length of a partition episode starting now.
  SimDuration sample_partition_duration();

  /// Time until the next uplink-degradation onset of a rack whose uplink is
  /// nominal now.
  SimDuration sample_link_uptime();

  /// Length of an uplink-degradation episode starting now.
  SimDuration sample_link_duration();

  const NetworkFaultParams& params() const { return params_; }

 private:
  NetworkFaultParams params_;
  Rng rng_;
};

}  // namespace dare::faults
