#include "faults/fault_model.h"

#include <algorithm>
#include <stdexcept>

namespace dare::faults {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultProcess: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

FaultProcess::FaultProcess(const FaultInjectionParams& params, Rng& parent)
    : params_(params), rng_(parent.fork()) {
  if (params_.mtbf_s <= 0.0) {
    throw std::invalid_argument("FaultProcess: mtbf_s must be positive");
  }
  if (params_.mttr_s <= 0.0) {
    throw std::invalid_argument("FaultProcess: mttr_s must be positive");
  }
  check_probability(params_.permanent_fraction, "permanent_fraction");
  check_probability(params_.rack_correlation, "rack_correlation");
  check_probability(params_.task_failure_prob, "task_failure_prob");
}

SimDuration FaultProcess::sample_uptime() {
  return std::max<SimDuration>(from_millis(1.0),
                               from_seconds(rng_.exponential(1.0 / params_.mtbf_s)));
}

FailureSample FaultProcess::sample_failure() {
  FailureSample sample;
  sample.kind = rng_.bernoulli(params_.permanent_fraction)
                    ? FaultKind::kPermanent
                    : FaultKind::kTransient;
  // Downtime is drawn for every failure so the draw sequence (and therefore
  // everything downstream) does not depend on the kind chosen above.
  sample.downtime = std::max<SimDuration>(
      from_millis(1.0), from_seconds(rng_.exponential(1.0 / params_.mttr_s)));
  sample.rack_correlated = rng_.bernoulli(params_.rack_correlation);
  return sample;
}

bool FaultProcess::sample_task_failure() {
  return rng_.bernoulli(params_.task_failure_prob);
}

}  // namespace dare::faults
