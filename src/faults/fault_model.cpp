#include "faults/fault_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/distributions.h"

namespace dare::faults {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultProcess: ") + what +
                                " must be in [0, 1]");
  }
}

// Negated comparisons so NaN (which fails every comparison) is rejected by
// the same branch as an out-of-range value.
void require_positive(double x, const char* field) {
  if (!(x > 0.0)) {
    throw std::invalid_argument(std::string(field) + " must be positive");
  }
}

void require_nonnegative(double x, const char* field) {
  if (!(x >= 0.0)) {
    throw std::invalid_argument(std::string(field) + " must be non-negative");
  }
}

void require_fraction(double p, const char* field) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(field) + " must be in [0, 1]");
  }
}

void require_at_least(double x, double lo, const char* field) {
  if (!(x >= lo)) {
    throw std::invalid_argument(std::string(field) + " must be at least " +
                                std::to_string(static_cast<int>(lo)));
  }
}

}  // namespace

void validate_fault_params(const FaultInjectionParams& params,
                           std::size_t worker_count) {
  require_positive(params.mtbf_s, "FaultInjectionParams.mtbf_s");
  require_positive(params.mttr_s, "FaultInjectionParams.mttr_s");
  require_fraction(params.permanent_fraction,
                   "FaultInjectionParams.permanent_fraction");
  require_fraction(params.rack_correlation,
                   "FaultInjectionParams.rack_correlation");
  require_fraction(params.task_failure_prob,
                   "FaultInjectionParams.task_failure_prob");
  // The floor only bites when the injector actually runs; small test
  // clusters routinely carry the default floor with churn disabled.
  if (params.enabled && params.min_live_workers >= worker_count) {
    throw std::invalid_argument(
        "FaultInjectionParams.min_live_workers must be below the worker "
        "count (the injector could otherwise never fire)");
  }
}

void validate_corruption_params(const CorruptionParams& params) {
  require_nonnegative(params.bitrot_per_gb, "CorruptionParams.bitrot_per_gb");
  require_nonnegative(params.sector_mtbf_s, "CorruptionParams.sector_mtbf_s");
  if (params.enabled && !(params.bitrot_per_gb > 0.0) &&
      !(params.sector_mtbf_s > 0.0)) {
    throw std::invalid_argument(
        "CorruptionParams.enabled requires bitrot_per_gb or sector_mtbf_s "
        "to be positive");
  }
}

void validate_straggler_params(const StragglerParams& params) {
  require_positive(params.degrade_mtbf_s, "StragglerParams.degrade_mtbf_s");
  require_positive(params.degrade_duration_s,
                   "StragglerParams.degrade_duration_s");
  require_at_least(params.compute_slowdown, 1.0,
                   "StragglerParams.compute_slowdown");
  require_at_least(params.disk_slowdown, 1.0, "StragglerParams.disk_slowdown");
  require_fraction(params.rack_correlation,
                   "StragglerParams.rack_correlation");
  require_fraction(params.tail_prob, "StragglerParams.tail_prob");
  require_positive(params.tail_alpha, "StragglerParams.tail_alpha");
  // The Pareto lower bound is pinned at 1 (no deflation), so the cap must
  // sit strictly above it for the sampler to have any support.
  if (!(params.tail_cap > 1.0)) {
    throw std::invalid_argument(
        "StragglerParams.tail_cap must be greater than 1");
  }
  require_positive(params.tail_sigma, "StragglerParams.tail_sigma");
}

void validate_netfault_params(const NetworkFaultParams& params) {
  require_positive(params.partition_mtbf_s,
                   "NetworkFaultParams.partition_mtbf_s");
  require_positive(params.partition_duration_s,
                   "NetworkFaultParams.partition_duration_s");
  require_positive(params.link_degrade_mtbf_s,
                   "NetworkFaultParams.link_degrade_mtbf_s");
  require_positive(params.link_degrade_duration_s,
                   "NetworkFaultParams.link_degrade_duration_s");
  // A zero cut would stall every cross-rack transfer forever; degraded
  // links limp, partitions are what tears connectivity.
  require_positive(params.bandwidth_cut, "NetworkFaultParams.bandwidth_cut");
  require_fraction(params.bandwidth_cut, "NetworkFaultParams.bandwidth_cut");
  require_at_least(params.latency_inflation, 1.0,
                   "NetworkFaultParams.latency_inflation");
  require_nonnegative(params.connect_timeout_s,
                      "NetworkFaultParams.connect_timeout_s");
}

FaultProcess::FaultProcess(const FaultInjectionParams& params, Rng& parent)
    : params_(params), rng_(parent.fork()) {
  if (params_.mtbf_s <= 0.0) {
    throw std::invalid_argument("FaultProcess: mtbf_s must be positive");
  }
  if (params_.mttr_s <= 0.0) {
    throw std::invalid_argument("FaultProcess: mttr_s must be positive");
  }
  check_probability(params_.permanent_fraction, "permanent_fraction");
  check_probability(params_.rack_correlation, "rack_correlation");
  check_probability(params_.task_failure_prob, "task_failure_prob");
}

SimDuration FaultProcess::sample_uptime() {
  return std::max<SimDuration>(from_millis(1.0),
                               from_seconds(rng_.exponential(1.0 / params_.mtbf_s)));
}

FailureSample FaultProcess::sample_failure() {
  FailureSample sample;
  sample.kind = rng_.bernoulli(params_.permanent_fraction)
                    ? FaultKind::kPermanent
                    : FaultKind::kTransient;
  // Downtime is drawn for every failure so the draw sequence (and therefore
  // everything downstream) does not depend on the kind chosen above.
  sample.downtime = std::max<SimDuration>(
      from_millis(1.0), from_seconds(rng_.exponential(1.0 / params_.mttr_s)));
  sample.rack_correlated = rng_.bernoulli(params_.rack_correlation);
  return sample;
}

bool FaultProcess::sample_task_failure() {
  return rng_.bernoulli(params_.task_failure_prob);
}

CorruptionProcess::CorruptionProcess(const CorruptionParams& params,
                                     Rng& parent)
    : params_(params), rng_(parent.fork()) {
  validate_corruption_params(params_);
}

bool CorruptionProcess::sample_read_corruption(Bytes bytes) {
  // P(at least one flipped bit over `bytes` scanned) under a Poisson rate of
  // bitrot_per_gb events per GB; expm1 keeps tiny rates exact.
  const double p =
      -std::expm1(-params_.bitrot_per_gb * static_cast<double>(bytes) / 1e9);
  return rng_.bernoulli(p);
}

SimDuration CorruptionProcess::sample_latent_interval() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.sector_mtbf_s)));
}

double CorruptionProcess::pick_fraction() { return rng_.uniform(); }

StragglerProcess::StragglerProcess(const StragglerParams& params, Rng& parent)
    : params_(params), rng_(parent.fork()) {
  validate_straggler_params(params_);
}

SimDuration StragglerProcess::sample_degrade_uptime() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.degrade_mtbf_s)));
}

DegradeSample StragglerProcess::sample_degrade() {
  DegradeSample sample;
  // Both fields are drawn on every call so the draw sequence (and therefore
  // everything downstream) never depends on how a sample is used.
  sample.duration = std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.degrade_duration_s)));
  sample.rack_correlated = rng_.bernoulli(params_.rack_correlation);
  return sample;
}

double StragglerProcess::sample_task_inflation() {
  const bool tail = rng_.bernoulli(params_.tail_prob);
  // The factor is drawn whether or not the coin hit (fixed draw count per
  // call; see sample_failure for the same rule on the churn stream).
  double factor;
  if (params_.tail_lognormal) {
    factor = std::clamp(Lognormal(0.0, params_.tail_sigma).sample(rng_), 1.0,
                        params_.tail_cap);
  } else {
    factor =
        BoundedPareto(1.0, params_.tail_cap, params_.tail_alpha).sample(rng_);
  }
  return tail ? factor : 1.0;
}

NetworkFaultProcess::NetworkFaultProcess(const NetworkFaultParams& params,
                                         Rng& parent)
    : params_(params), rng_(parent.fork()) {
  validate_netfault_params(params_);
}

SimDuration NetworkFaultProcess::sample_partition_uptime() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.partition_mtbf_s)));
}

SimDuration NetworkFaultProcess::sample_partition_duration() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.partition_duration_s)));
}

SimDuration NetworkFaultProcess::sample_link_uptime() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.link_degrade_mtbf_s)));
}

SimDuration NetworkFaultProcess::sample_link_duration() {
  return std::max<SimDuration>(
      from_millis(1.0),
      from_seconds(rng_.exponential(1.0 / params_.link_degrade_duration_s)));
}

}  // namespace dare::faults
