#include "analysis/trace_analysis.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dare::analysis {

namespace {

std::unordered_map<FileId, std::size_t> count_accesses(
    const workload::AccessTrace& trace) {
  std::unordered_map<FileId, std::size_t> counts;
  for (const auto& ev : trace.events) ++counts[ev.file];
  return counts;
}

}  // namespace

std::vector<PopularityEntry> popularity_ranking(
    const workload::AccessTrace& trace) {
  const auto counts = count_accesses(trace);
  std::vector<PopularityEntry> entries;
  entries.reserve(trace.files.size());
  for (const auto& file : trace.files) {
    const auto it = counts.find(file.id);
    entries.push_back(PopularityEntry{
        file.id, it == counts.end() ? 0 : it->second, file.blocks});
  }
  std::sort(entries.begin(), entries.end(),
            [](const PopularityEntry& a, const PopularityEntry& b) {
              if (a.accesses != b.accesses) return a.accesses > b.accesses;
              return a.file < b.file;
            });
  return entries;
}

std::vector<PopularityEntry> weighted_popularity_ranking(
    const workload::AccessTrace& trace) {
  auto entries = popularity_ranking(trace);
  std::sort(entries.begin(), entries.end(),
            [](const PopularityEntry& a, const PopularityEntry& b) {
              if (a.weighted() != b.weighted()) {
                return a.weighted() > b.weighted();
              }
              return a.file < b.file;
            });
  return entries;
}

EmpiricalCdf age_at_access_cdf(const workload::AccessTrace& trace) {
  std::unordered_map<FileId, SimTime> created;
  created.reserve(trace.files.size());
  for (const auto& file : trace.files) created[file.id] = file.created;
  EmpiricalCdf cdf;
  for (const auto& ev : trace.events) {
    const auto it = created.find(ev.file);
    if (it == created.end()) {
      throw std::invalid_argument("trace event references unknown file");
    }
    cdf.add(to_seconds(ev.time - it->second));
  }
  return cdf;
}

std::size_t minimal_window_slots(const std::vector<SimTime>& times,
                                 SimDuration slot, double coverage) {
  if (times.empty()) return 0;
  if (slot <= 0) throw std::invalid_argument("minimal_window_slots: slot<=0");
  // Bucket into slots relative to the first access.
  const SimTime t0 = times.front();
  std::unordered_map<std::int64_t, std::size_t> buckets;
  std::int64_t max_bucket = 0;
  for (SimTime t : times) {
    const std::int64_t b = (t - t0) / slot;
    ++buckets[b];
    max_bucket = std::max(max_bucket, b);
  }
  const auto n_slots = static_cast<std::size_t>(max_bucket) + 1;
  std::vector<std::size_t> counts(n_slots, 0);
  // Each bucket writes its own slot; visit order cannot matter.
  // dare-lint: allow(unordered-iteration)
  for (const auto& [b, c] : buckets) {
    counts[static_cast<std::size_t>(b)] = c;
  }
  const auto needed = static_cast<std::size_t>(
      std::max<double>(1.0, coverage * static_cast<double>(times.size())));
  // Prefix sums + two pointers: smallest window with sum >= needed.
  std::size_t best = n_slots;
  std::size_t left = 0;
  std::size_t sum = 0;
  for (std::size_t right = 0; right < n_slots; ++right) {
    sum += counts[right];
    while (sum - counts[left] >= needed && left < right) {
      sum -= counts[left];
      ++left;
    }
    if (sum >= needed) best = std::min(best, right - left + 1);
  }
  return best;
}

std::size_t max_in_window(const std::vector<SimTime>& times,
                          SimDuration window) {
  if (times.empty()) return 0;
  if (window <= 0) throw std::invalid_argument("max_in_window: window<=0");
  std::size_t best = 1;
  std::size_t left = 0;
  for (std::size_t right = 0; right < times.size(); ++right) {
    while (times[right] - times[left] >= window) ++left;
    best = std::max(best, right - left + 1);
  }
  return best;
}

std::vector<ConcurrencyEntry> peak_concurrency(
    const workload::AccessTrace& trace, SimDuration window) {
  std::unordered_map<FileId, std::vector<SimTime>> per_file;
  for (const auto& ev : trace.events) per_file[ev.file].push_back(ev.time);

  std::vector<ConcurrencyEntry> entries;
  entries.reserve(per_file.size());
  // Entries are fully re-sorted below (total order: accesses desc, file asc),
  // so the hash-map visit order never reaches the result.
  // dare-lint: allow(unordered-iteration)
  for (auto& [file, times] : per_file) {
    std::sort(times.begin(), times.end());
    entries.push_back(
        ConcurrencyEntry{file, times.size(), max_in_window(times, window)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const ConcurrencyEntry& a, const ConcurrencyEntry& b) {
              if (a.accesses != b.accesses) return a.accesses > b.accesses;
              return a.file < b.file;
            });
  return entries;
}

WindowDistribution burst_window_distribution(
    const workload::AccessTrace& trace, const WindowOptions& options) {
  // Collect per-file access times inside the requested interval.
  std::unordered_map<FileId, std::vector<SimTime>> per_file;
  for (const auto& ev : trace.events) {
    if (options.begin && ev.time < *options.begin) continue;
    if (options.end && ev.time >= *options.end) continue;
    per_file[ev.file].push_back(ev.time);
  }

  // "Big files": the most popular files jointly holding big_file_fraction of
  // all in-interval accesses.
  std::vector<std::pair<FileId, std::size_t>> ranked;
  std::size_t total_accesses = 0;
  // Order-independent: the sum commutes and `ranked` is re-sorted with a
  // total order (count desc, file asc) right below.
  // dare-lint: allow(unordered-iteration)
  for (const auto& [file, times] : per_file) {
    ranked.emplace_back(file, times.size());
    total_accesses += times.size();
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<FileId> big;
  std::size_t cum = 0;
  for (const auto& [file, count] : ranked) {
    if (total_accesses > 0 &&
        static_cast<double>(cum) >=
            options.big_file_fraction * static_cast<double>(total_accesses)) {
      break;
    }
    big.push_back(file);
    cum += count;
  }

  // Distribution of minimal windows.
  std::unordered_map<std::size_t, double> weight_at_window;
  double total_weight = 0.0;
  std::size_t max_window = 0;
  for (FileId file : big) {
    auto& times = per_file[file];
    std::sort(times.begin(), times.end());
    const std::size_t w =
        minimal_window_slots(times, options.slot, options.coverage);
    if (w == 0) continue;
    const double weight = options.weight_by_accesses
                              ? static_cast<double>(times.size())
                              : 1.0;
    weight_at_window[w] += weight;
    total_weight += weight;
    max_window = std::max(max_window, w);
  }

  WindowDistribution dist;
  dist.files_considered = big.size();
  dist.fraction.assign(max_window + 1, 0.0);
  if (total_weight > 0.0) {
    // Each window size writes its own fraction slot; order cannot matter.
    // dare-lint: allow(unordered-iteration)
    for (const auto& [w, wt] : weight_at_window) {
      dist.fraction[w] = wt / total_weight;
    }
  }
  return dist;
}

}  // namespace dare::analysis
