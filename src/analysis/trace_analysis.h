// Access-pattern analytics reproducing Section III of the paper.
//
// All functions are pure over an AccessTrace, so they work equally on the
// synthetic Yahoo-style trace and on any converted real audit log.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "workload/yahoo_trace.h"

namespace dare::analysis {

/// One row of the Fig. 2 popularity plot.
struct PopularityEntry {
  FileId file = kInvalidFile;
  std::size_t accesses = 0;
  std::size_t blocks = 1;
  /// accesses weighted by the number of blocks in the file.
  std::size_t weighted() const { return accesses * blocks; }
};

/// Files ranked by access count, descending (rank 1 = most popular).
std::vector<PopularityEntry> popularity_ranking(
    const workload::AccessTrace& trace);

/// Same entries re-sorted by block-weighted popularity, descending.
std::vector<PopularityEntry> weighted_popularity_ranking(
    const workload::AccessTrace& trace);

/// Fig. 3: CDF of file age (seconds) at the time of each access.
EmpiricalCdf age_at_access_cdf(const workload::AccessTrace& trace);

/// Options for the Fig. 4/5 burst-window analysis.
struct WindowOptions {
  SimDuration slot = from_seconds(3600);  ///< one-hour slots
  double coverage = 0.8;                  ///< fraction of accesses to cover
  /// Restrict to accesses inside [begin, end) (Fig. 5: one day); nullopt =
  /// whole trace (Fig. 4).
  std::optional<SimTime> begin;
  std::optional<SimTime> end;
  /// Only consider the most-popular files jointly holding this fraction of
  /// all accesses ("big files" in the paper's captions).
  double big_file_fraction = 0.8;
  /// Weight each file by its access count instead of equally (the (b)
  /// subfigures).
  bool weight_by_accesses = false;
};

/// Result: distribution of minimal-window sizes over files.
struct WindowDistribution {
  /// fraction[w] = (weighted) fraction of files whose smallest window of
  /// consecutive slots covering `coverage` of their accesses has size w
  /// (w in slots; index 0 unused).
  std::vector<double> fraction;
  std::size_t files_considered = 0;
};

WindowDistribution burst_window_distribution(
    const workload::AccessTrace& trace, const WindowOptions& options);

/// Smallest number of consecutive `slot`-sized windows containing at least
/// `coverage` of the given sorted access times. Exposed for testing.
std::size_t minimal_window_slots(const std::vector<SimTime>& times,
                                 SimDuration slot, double coverage);

/// Per-file access concurrency: the maximum number of accesses to one file
/// starting within any window of length `window` — the quantity Scarlett
/// sizes replica counts from, and what makes a "hotspot" hot. Returned in
/// popularity-rank order (most accessed file first).
struct ConcurrencyEntry {
  FileId file = kInvalidFile;
  std::size_t accesses = 0;
  std::size_t peak_concurrency = 0;
};

std::vector<ConcurrencyEntry> peak_concurrency(
    const workload::AccessTrace& trace, SimDuration window);

/// Maximum number of elements of sorted `times` within any half-open
/// interval of length `window`. Exposed for testing.
std::size_t max_in_window(const std::vector<SimTime>& times,
                          SimDuration window);

}  // namespace dare::analysis
