// Periodic cluster-wide gauge samples: the curve behind the end-of-run
// aggregates (queue depth behind makespan, budget occupancy behind Fig. 9,
// per-node popularity-index cv behind Fig. 11's endpoint).
//
// Samples are taken by a simulation event the cluster schedules every
// `ClusterOptions::trace_sample_interval` while a tracer is attached; the
// sampling event is cancelled the moment the run finishes so it can never
// extend the makespan or perturb the fingerprint.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace dare::obs {

/// One sample of the cluster-wide gauges.
struct TimeSeriesSample {
  SimTime t = 0;                  ///< simulation time, microseconds
  std::size_t pending_maps = 0;   ///< backlog across active jobs
  std::size_t pending_reduces = 0;
  std::size_t running_tasks = 0;  ///< maps + reduces currently executing
  double slot_utilization = 0.0;  ///< busy slots / total slots, live nodes
  double budget_occupancy = 0.0;  ///< mean dynamic bytes / budget, live nodes
  double popularity_cv = 0.0;     ///< cv of per-node popularity indices
};

class TimeSeries {
 public:
  void add(const TimeSeriesSample& sample) { samples_.push_back(sample); }

  const std::vector<TimeSeriesSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  void clear() { samples_.clear(); }

  /// Flat CSV (header + one row per sample), locale-independent round-trip
  /// doubles. Deterministic: same run, byte-identical output.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TimeSeriesSample> samples_;
};

}  // namespace dare::obs
