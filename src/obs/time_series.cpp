#include "obs/time_series.h"

#include <ostream>

#include "common/csv.h"

namespace dare::obs {

void TimeSeries::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header({"t_s", "pending_maps", "pending_reduces", "running_tasks",
              "slot_utilization", "budget_occupancy", "popularity_cv"});
  for (const TimeSeriesSample& s : samples_) {
    csv.row({format_double(to_seconds(s.t)),
             std::to_string(s.pending_maps),
             std::to_string(s.pending_reduces),
             std::to_string(s.running_tasks),
             format_double(s.slot_utilization),
             format_double(s.budget_occupancy),
             format_double(s.popularity_cv)});
  }
}

}  // namespace dare::obs
