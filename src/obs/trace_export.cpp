#include "obs/trace_export.h"

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "obs/trace_collector.h"

namespace dare::obs {

namespace {

// Chrome trace `tid` layout: fixed tracks first, then one per worker node.
constexpr int kSchedulerTid = 1;
constexpr int kNameNodeTid = 2;
constexpr int kNodeTidBase = 3;

int event_tid(const TraceEvent& e) {
  switch (kind_track(e.kind)) {
    case Track::kScheduler: return kSchedulerTid;
    case Track::kNameNode: return kNameNodeTid;
    case Track::kNode: break;
  }
  // Node-track events with no node (shouldn't happen) fall back to the
  // scheduler track rather than inventing a bogus tid.
  return e.node >= 0 ? kNodeTidBase + static_cast<int>(e.node)
                     : kSchedulerTid;
}

/// Kinds that open a duration slice on a node track.
bool is_open_kind(EventKind kind) {
  return kind == EventKind::kMapLaunched ||
         kind == EventKind::kMapSpeculated ||
         kind == EventKind::kCloneLaunched ||
         kind == EventKind::kReduceLaunched;
}

/// Kinds that close the matching slice (task attempt ends on the node).
bool is_close_kind(EventKind kind) {
  return kind == EventKind::kMapFinished ||
         kind == EventKind::kMapKilled ||
         kind == EventKind::kCloneKilled ||
         kind == EventKind::kTaskAttemptFault ||
         kind == EventKind::kReduceFinished ||
         kind == EventKind::kReduceRequeued;
}

bool is_reduce_kind(EventKind kind) {
  return kind == EventKind::kReduceLaunched ||
         kind == EventKind::kReduceFinished ||
         kind == EventKind::kReduceRequeued;
}

/// Display name of a task-execution slice, keyed by its opening kind.
const char* slice_name(EventKind open_kind) {
  switch (open_kind) {
    case EventKind::kMapSpeculated: return "map (speculative)";
    case EventKind::kCloneLaunched: return "map (clone)";
    case EventKind::kReduceLaunched: return "reduce";
    default: return "map";
  }
}

void write_args(std::ostream& out, const TraceEvent& e) {
  out << "{\"job\":" << e.job << ",\"task\":" << e.task << ",\"detail\":"
      << e.detail << ",\"value\":" << format_double(e.value);
  if (e.kind == EventKind::kReplicaSkipped) {
    out << ",\"reason\":\""
        << skip_reason_name(static_cast<SkipReason>(e.detail)) << "\"";
  }
  out << "}";
}

class JsonEventWriter {
 public:
  explicit JsonEventWriter(std::ostream& out) : out_(out) {}

  std::ostream& begin() {
    out_ << (first_ ? "    " : ",\n    ");
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(const TraceCollector& trace, std::ostream& out) {
  const auto& events = trace.events();

  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  JsonEventWriter w(out);

  // Track-name metadata. Node tracks come from the set of nodes actually
  // seen, iterated in sorted order for byte-stable output.
  std::set<NodeId> nodes;
  for (const TraceEvent& e : events) {
    if (kind_track(e.kind) == Track::kNode && e.node >= 0) {
      nodes.insert(e.node);
    }
  }
  w.begin() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"dare-sim\"}}";
  w.begin() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
            << kSchedulerTid << ",\"args\":{\"name\":\"scheduler\"}}";
  w.begin() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
            << kNameNodeTid << ",\"args\":{\"name\":\"namenode\"}}";
  for (NodeId n : nodes) {
    w.begin() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
              << kNodeTidBase + static_cast<int>(n)
              << ",\"args\":{\"name\":\"node-" << n << "\"}}";
  }

  // Pair task-attempt launch/end events into duration slices. Key is
  // (node, job, task, is_reduce); a stack tolerates pathological nesting.
  using SliceKey = std::tuple<NodeId, JobId, std::int64_t, bool>;
  std::map<SliceKey, std::vector<std::size_t>> open;  // -> event indices

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (is_open_kind(e.kind)) {
      open[SliceKey{e.node, e.job, e.task, is_reduce_kind(e.kind)}]
          .push_back(i);
      continue;
    }
    if (is_close_kind(e.kind)) {
      const SliceKey key{e.node, e.job, e.task, is_reduce_kind(e.kind)};
      const auto it = open.find(key);
      if (it != open.end() && !it->second.empty()) {
        const TraceEvent& start = events[it->second.back()];
        it->second.pop_back();
        w.begin() << "{\"name\":\"" << slice_name(start.kind)
                  << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << event_tid(start)
                  << ",\"ts\":" << start.t << ",\"dur\":" << (e.t - start.t)
                  << ",\"args\":{\"job\":" << e.job << ",\"task\":" << e.task
                  << ",\"end\":\"" << kind_name(e.kind) << "\",\"locality\":"
                  << start.detail << ",\"value\":" << format_double(e.value)
                  << "}}";
        continue;
      }
      // No matching launch (e.g. trace enabled mid-run): fall through to an
      // instant event so the record is not lost.
    }
    w.begin() << "{\"name\":\"" << kind_name(e.kind)
              << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
              << event_tid(e) << ",\"ts\":" << e.t << ",\"args\":";
    write_args(out, e);
    out << "}";
  }

  // Attempts still running when collection stopped: surface as instants.
  for (const auto& [key, stack] : open) {
    for (const std::size_t idx : stack) {
      const TraceEvent& e = events[idx];
      w.begin() << "{\"name\":\"" << kind_name(e.kind)
                << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
                << event_tid(e) << ",\"ts\":" << e.t << ",\"args\":";
      write_args(out, e);
      out << "}";
    }
  }

  // Time-series gauges as Perfetto counter tracks.
  for (const TimeSeriesSample& s : trace.series().samples()) {
    w.begin() << "{\"name\":\"backlog\",\"ph\":\"C\",\"pid\":1,\"ts\":"
              << s.t << ",\"args\":{\"pending_maps\":" << s.pending_maps
              << ",\"pending_reduces\":" << s.pending_reduces
              << ",\"running\":" << s.running_tasks << "}}";
    w.begin() << "{\"name\":\"slot_utilization\",\"ph\":\"C\",\"pid\":1,"
                 "\"ts\":" << s.t << ",\"args\":{\"util\":"
              << format_double(s.slot_utilization) << "}}";
    w.begin() << "{\"name\":\"budget_occupancy\",\"ph\":\"C\",\"pid\":1,"
                 "\"ts\":" << s.t << ",\"args\":{\"occupancy\":"
              << format_double(s.budget_occupancy) << "}}";
    w.begin() << "{\"name\":\"popularity_cv\",\"ph\":\"C\",\"pid\":1,"
                 "\"ts\":" << s.t << ",\"args\":{\"cv\":"
              << format_double(s.popularity_cv) << "}}";
  }

  out << "\n  ]\n}\n";
}

void write_events_csv(const TraceCollector& trace, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"t_us", "kind", "node", "job", "task", "detail", "value"});
  for (const TraceEvent& e : trace.events()) {
    csv.row({std::to_string(e.t), kind_name(e.kind),
             std::to_string(e.node), std::to_string(e.job),
             std::to_string(e.task), std::to_string(e.detail),
             format_double(e.value)});
  }
}

}  // namespace dare::obs
