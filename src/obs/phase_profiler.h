// PhaseProfiler: scoped process-CPU timers attributing simulator cost to
// phases (scheduling, replication, heartbeats, churn, sampling, the event
// loop as a whole).
//
// This is the ONE place in the instrumented stack allowed to read a real
// clock, and its readings never enter trace events, RunResult, or
// metrics::fingerprint — they exist purely for bench reporting. Event
// timestamps stay sim-time-only (enforced by dare_lint over src/obs).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace dare::obs {

enum class Phase : std::uint8_t {
  kSchedule = 0,  ///< map/reduce selection + launch (try_assign_all)
  kReplication,   ///< policy on_map_task: adopt/skip/evict decisions
  kHeartbeat,     ///< heartbeat processing + dynamic-report reconciliation
  kChurn,         ///< failure injection, detection ticks, repair, rejoin
  kSampling,      ///< time-series gauge collection
  kEventLoop,     ///< the whole Simulation::run drain (superset of above)
  kPhaseCount,    ///< sentinel
};

const char* phase_name(Phase phase);

class PhaseProfiler {
 public:
  static constexpr std::size_t kPhases =
      static_cast<std::size_t>(Phase::kPhaseCount);

  void add(Phase phase, std::int64_t cpu_ns);

  std::int64_t total_ns(Phase phase) const;
  std::uint64_t calls(Phase phase) const;
  void reset();

  /// Human-readable table: one line per phase with calls, total CPU ms,
  /// and mean ns/call.
  void write_report(std::ostream& out) const;

  /// Current process-CPU time in nanoseconds
  /// (clock_gettime(CLOCK_PROCESS_CPUTIME_ID) — same clock as the tracked
  /// bench baseline, immune to wall-clock steal on shared machines).
  static std::int64_t process_cpu_ns();

  /// Peak resident-set size of this process in bytes (getrusage ru_maxrss;
  /// 0 where unsupported). Like process_cpu_ns() this is bench-reporting
  /// telemetry only: it never enters trace events, RunResult, or
  /// metrics::fingerprint. Note the kernel high-water mark never decreases,
  /// so per-configuration measurements must run in separate processes (see
  /// bench/bench_scale.cpp).
  static std::int64_t peak_rss_bytes();

 private:
  struct Bucket {
    std::int64_t ns = 0;
    std::uint64_t calls = 0;
  };
  std::array<Bucket, kPhases> buckets_{};
};

/// RAII scope crediting its lifetime to `phase`. A null profiler makes the
/// scope a no-op that never reads the clock, so instrumented code pays one
/// predicted branch when profiling is off.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ns_ = PhaseProfiler::process_cpu_ns();
  }
  ~PhaseScope() {
    if (profiler_ != nullptr) {
      profiler_->add(phase_, PhaseProfiler::process_cpu_ns() - start_ns_);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  std::int64_t start_ns_ = 0;
};

}  // namespace dare::obs
