#include "obs/phase_profiler.h"

#include <cstdio>
#include <ctime>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dare::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSchedule: return "schedule";
    case Phase::kReplication: return "replication";
    case Phase::kHeartbeat: return "heartbeat";
    case Phase::kChurn: return "churn";
    case Phase::kSampling: return "sampling";
    case Phase::kEventLoop: return "event_loop";
    case Phase::kPhaseCount: break;
  }
  return "unknown";
}

void PhaseProfiler::add(Phase phase, std::int64_t cpu_ns) {
  auto& bucket = buckets_[static_cast<std::size_t>(phase)];
  bucket.ns += cpu_ns;
  ++bucket.calls;
}

std::int64_t PhaseProfiler::total_ns(Phase phase) const {
  return buckets_[static_cast<std::size_t>(phase)].ns;
}

std::uint64_t PhaseProfiler::calls(Phase phase) const {
  return buckets_[static_cast<std::size_t>(phase)].calls;
}

void PhaseProfiler::reset() { buckets_ = {}; }

void PhaseProfiler::write_report(std::ostream& out) const {
  out << "phase         calls        cpu_ms      ns/call\n";
  for (std::size_t i = 0; i < kPhases; ++i) {
    const Bucket& b = buckets_[i];
    const double ms = static_cast<double>(b.ns) * 1e-6;
    const double per_call =
        b.calls ? static_cast<double>(b.ns) / static_cast<double>(b.calls)
                : 0.0;
    char line[128];
    std::snprintf(line, sizeof line, "%-12s %6llu %13.3f %12.1f\n",
                  phase_name(static_cast<Phase>(i)),
                  static_cast<unsigned long long>(b.calls), ms, per_call);
    out << line;
  }
  const std::int64_t rss = peak_rss_bytes();
  if (rss > 0) {
    char line[64];
    std::snprintf(line, sizeof line, "peak RSS     %10.1f MiB\n",
                  static_cast<double>(rss) / (1024.0 * 1024.0));
    out << line;
  }
}

std::int64_t PhaseProfiler::process_cpu_ns() {
  timespec ts{};
  // CPU cost attribution, not event time: this reading never reaches a
  // TraceEvent, RunResult, or fingerprint — the one sanctioned real clock.
  // dare-lint: allow(banned-randomness)
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
         static_cast<std::int64_t>(ts.tv_nsec);
}

std::int64_t PhaseProfiler::peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace dare::obs
