// Typed, sim-time-stamped trace events: the structured record every
// instrumented component (cluster, schedulers, replication policies,
// DataNode, NameNode, faults glue) appends to the TraceCollector.
//
// Timestamps are ALWAYS simulation time (integer microseconds) — never a
// wall clock — so a traced run is as deterministic as the run itself and
// two seeded runs export byte-identical traces. Wall-clock cost lives in
// the separate PhaseProfiler, which is excluded from fingerprints.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace dare::obs {

/// Every event kind the simulator can emit. The numeric values are part of
/// the CSV export format; append new kinds at the end, never reorder.
enum class EventKind : std::uint8_t {
  // Task lifecycle (cluster glue).
  kJobSubmitted = 0,   ///< detail = maps, value = reduces
  kMapLaunched,        ///< task = map index, detail = locality tier (0/1/2)
  kMapSpeculated,      ///< backup attempt launched; fields as kMapLaunched
  kMapFinished,        ///< detail = 1 when a speculative attempt won,
                       ///< value = duration (s)
  kMapKilled,          ///< losing attempt cancelled or swept by node loss
  kMapRequeued,        ///< attempt re-queued (node loss / injected failure)
  kReduceLaunched,     ///< task = attempt id
  kReduceFinished,     ///< task = attempt id, value = duration (s)
  kReduceRequeued,     ///< reduce returned to the backlog after node loss
  kJobFinished,        ///< value = turnaround (s)
  kJobFailed,          ///< killed after a task exhausted its attempt budget
  kTaskAttemptFault,   ///< injected (fault-model) attempt failure

  // Replication decisions (per-node policies, remote reads only).
  kReplicaAdopted,     ///< task = block, value = budget occupancy after
  kReplicaSkipped,     ///< task = block, detail = SkipReason, value = occ.
  kReplicaEvicted,     ///< task = victim block, detail = aging passes,
                       ///< value = access count at eviction

  // Storage / membership (DataNode, NameNode, faults glue).
  kDiskReclaim,        ///< lazy tombstone sweep; detail = replicas reclaimed
  kHeartbeat,          ///< DataNode heartbeat processed by the NameNode
  kNodeFailed,         ///< physical failure; detail = FaultKind,
                       ///< value = downtime (s, 0 = permanent)
  kNodeDeclaredDead,   ///< NameNode missed-heartbeat declaration
  kNodeRejoined,       ///< detail = 1 full re-registration, 0 blip
  kBlockRepaired,      ///< task = block re-replicated onto `node`

  // Scheduler decisions.
  kSchedulerDecision,  ///< detail = locality tier chosen,
                       ///< value = delay-scheduling wait (s)
  kDelayWait,          ///< job declined `node` and started its delay clock

  // Data integrity (corruption process, checksum reads, quarantine).
  kReplicaCorrupted,   ///< task = block silently corrupted on `node`
  kChecksumFailed,     ///< task = block whose read on `node` failed verify
  kReplicaQuarantined, ///< task = block dropped from `node`'s location list
  kDataLoss,           ///< task = block with no clean replica left

  // Stragglers & cloning (straggler process, detection, clone lifecycle).
  kNodeDegraded,       ///< degraded-mode onset; detail = 1 rack-correlated,
                       ///< value = compute slowdown factor
  kNodeDegradeEnded,   ///< node recovered nominal speed
  kStragglerDetected,  ///< NameNode flagged `node` slow; value = EWMA ratio
  kStragglerCleared,   ///< backoff expired, node re-admitted on probation
  kCloneLaunched,      ///< proactive clone attempt; fields as kMapLaunched
  kCloneKilled,        ///< clone attempt cancelled (lost the race, swept by
                       ///< node loss, or its job failed)

  // Network faults & prioritized repair (netfault process, repair queue).
  kLinkDegraded,       ///< uplink-degradation onset; detail = rack,
                       ///< value = episode length (s)
  kPartitionStarted,   ///< rack cut off; detail = rack, value = length (s)
  kPartitionHealed,    ///< rack reconnected; detail = rack
  kRepairRetried,      ///< task = block re-enqueued with backoff,
                       ///< detail = retries so far
  kRepairPreempted,    ///< task = bulk block deferred behind the critical
                       ///< class this tick

  kKindCount,          ///< sentinel, not a real kind
};

/// Reasons a policy declined to adopt a remotely-read block
/// (kReplicaSkipped's `detail` field).
enum class SkipReason : std::uint8_t {
  kCoinFailed = 0,   ///< ElephantTrap probability draw came up false
  kTooLarge,         ///< block bigger than the node's entire budget
  kAlreadyPresent,   ///< replica already on disk (or adoption in flight)
  kNoVictim,         ///< eviction could not free enough budget
  kBelowThreshold,   ///< trap count below the promotion threshold
  kQuarantined,      ///< block is locally quarantined after a bad-block report
};

/// Stable display name, e.g. "map_launched". Never localized.
const char* kind_name(EventKind kind);

/// Display name for a SkipReason, e.g. "coin_failed".
const char* skip_reason_name(SkipReason reason);

/// Which exporter track an event belongs to (Chrome trace `tid`).
enum class Track : std::uint8_t {
  kScheduler,  ///< job lifecycle + scheduler decisions
  kNameNode,   ///< heartbeats, failure detection, rejoin, repair
  kNode,       ///< per-node: task execution, replication, disk, faults
};

Track kind_track(EventKind kind);

/// One trace record. Field meaning varies by kind (see EventKind comments);
/// unused fields keep their defaults so exports stay byte-stable.
struct TraceEvent {
  SimTime t = 0;                ///< simulation time, microseconds
  EventKind kind = EventKind::kKindCount;
  NodeId node = kInvalidNode;   ///< worker involved, if any
  JobId job = kInvalidJob;      ///< job involved, if any
  std::int64_t task = -1;       ///< map index / reduce attempt / block id
  std::int64_t detail = 0;      ///< kind-specific discriminant
  double value = 0.0;           ///< kind-specific magnitude
};

}  // namespace dare::obs
