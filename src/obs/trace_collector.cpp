#include "obs/trace_collector.h"

#include <stdexcept>

#include "common/invariant.h"

namespace dare::obs {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kJobSubmitted: return "job_submitted";
    case EventKind::kMapLaunched: return "map_launched";
    case EventKind::kMapSpeculated: return "map_speculated";
    case EventKind::kMapFinished: return "map_finished";
    case EventKind::kMapKilled: return "map_killed";
    case EventKind::kMapRequeued: return "map_requeued";
    case EventKind::kReduceLaunched: return "reduce_launched";
    case EventKind::kReduceFinished: return "reduce_finished";
    case EventKind::kReduceRequeued: return "reduce_requeued";
    case EventKind::kJobFinished: return "job_finished";
    case EventKind::kJobFailed: return "job_failed";
    case EventKind::kTaskAttemptFault: return "task_attempt_fault";
    case EventKind::kReplicaAdopted: return "replica_adopted";
    case EventKind::kReplicaSkipped: return "replica_skipped";
    case EventKind::kReplicaEvicted: return "replica_evicted";
    case EventKind::kDiskReclaim: return "disk_reclaim";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kNodeFailed: return "node_failed";
    case EventKind::kNodeDeclaredDead: return "node_declared_dead";
    case EventKind::kNodeRejoined: return "node_rejoined";
    case EventKind::kBlockRepaired: return "block_repaired";
    case EventKind::kSchedulerDecision: return "scheduler_decision";
    case EventKind::kDelayWait: return "delay_wait";
    case EventKind::kReplicaCorrupted: return "replica_corrupted";
    case EventKind::kChecksumFailed: return "checksum_failed";
    case EventKind::kReplicaQuarantined: return "replica_quarantined";
    case EventKind::kDataLoss: return "data_loss";
    case EventKind::kNodeDegraded: return "node_degraded";
    case EventKind::kNodeDegradeEnded: return "node_degrade_ended";
    case EventKind::kStragglerDetected: return "straggler_detected";
    case EventKind::kStragglerCleared: return "straggler_cleared";
    case EventKind::kCloneLaunched: return "clone_launched";
    case EventKind::kCloneKilled: return "clone_killed";
    case EventKind::kLinkDegraded: return "link_degraded";
    case EventKind::kPartitionStarted: return "partition_started";
    case EventKind::kPartitionHealed: return "partition_healed";
    case EventKind::kRepairRetried: return "repair_retried";
    case EventKind::kRepairPreempted: return "repair_preempted";
    case EventKind::kKindCount: break;
  }
  return "unknown";
}

const char* skip_reason_name(SkipReason reason) {
  switch (reason) {
    case SkipReason::kCoinFailed: return "coin_failed";
    case SkipReason::kTooLarge: return "too_large";
    case SkipReason::kAlreadyPresent: return "already_present";
    case SkipReason::kNoVictim: return "no_victim";
    case SkipReason::kBelowThreshold: return "below_threshold";
    case SkipReason::kQuarantined: return "quarantined";
  }
  return "unknown";
}

Track kind_track(EventKind kind) {
  switch (kind) {
    case EventKind::kJobSubmitted:
    case EventKind::kJobFinished:
    case EventKind::kJobFailed:
    case EventKind::kSchedulerDecision:
    case EventKind::kDelayWait:
      return Track::kScheduler;
    case EventKind::kHeartbeat:
    case EventKind::kNodeDeclaredDead:
    case EventKind::kNodeRejoined:
    case EventKind::kBlockRepaired:
    case EventKind::kReplicaQuarantined:
    case EventKind::kDataLoss:
    case EventKind::kStragglerDetected:
    case EventKind::kStragglerCleared:
    // Partition/link episodes and repair-queue decisions are cluster-scope
    // (their node field is kInvalidNode; the rack travels in `detail`), so
    // they live on the NameNode track rather than a per-node row.
    case EventKind::kLinkDegraded:
    case EventKind::kPartitionStarted:
    case EventKind::kPartitionHealed:
    case EventKind::kRepairRetried:
    case EventKind::kRepairPreempted:
      return Track::kNameNode;
    default:
      return Track::kNode;
  }
}

TraceCollector::TraceCollector() : clock_([] { return SimTime{0}; }) {}

TraceCollector::TraceCollector(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) {
    throw std::invalid_argument("TraceCollector: clock callback required");
  }
}

void TraceCollector::set_clock(Clock clock) {
  if (!clock) {
    throw std::invalid_argument("TraceCollector: clock callback required");
  }
  clock_ = std::move(clock);
}

void TraceCollector::record(EventKind kind, NodeId node, JobId job,
                            std::int64_t task, std::int64_t detail,
                            double value) {
#if DARE_INVARIANTS_ENABLED
  // Single-writer contract (see header): tsan only catches a cross-thread
  // collector share when a racy interleaving happens to occur; this pins the
  // owner on first use so the misuse aborts deterministically.
  if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
  DARE_INVARIANT(owner_ == std::this_thread::get_id(),
                 "TraceCollector shared across simulation threads; attach "
                 "one collector per run (or clear() between runs)");
#endif
  events_.push_back(TraceEvent{clock_(), kind, node, job, task, detail,
                               value});
}

void TraceCollector::clear() {
  events_.clear();
  series_.clear();
  owner_ = std::thread::id{};
}

void TraceCollector::job_submitted(JobId job, std::size_t maps,
                                   std::size_t reduces) {
  record(EventKind::kJobSubmitted, kInvalidNode, job, -1,
         static_cast<std::int64_t>(maps), static_cast<double>(reduces));
}

void TraceCollector::map_launched(NodeId node, JobId job,
                                  std::size_t map_index, int locality,
                                  bool speculative) {
  record(speculative ? EventKind::kMapSpeculated : EventKind::kMapLaunched,
         node, job, static_cast<std::int64_t>(map_index), locality);
}

void TraceCollector::map_finished(NodeId node, JobId job,
                                  std::size_t map_index, double duration_s,
                                  bool speculative_won) {
  record(EventKind::kMapFinished, node, job,
         static_cast<std::int64_t>(map_index), speculative_won ? 1 : 0,
         duration_s);
}

void TraceCollector::map_killed(NodeId node, JobId job,
                                std::size_t map_index) {
  record(EventKind::kMapKilled, node, job,
         static_cast<std::int64_t>(map_index));
}

void TraceCollector::map_requeued(NodeId node, JobId job,
                                  std::size_t map_index) {
  record(EventKind::kMapRequeued, node, job,
         static_cast<std::int64_t>(map_index));
}

void TraceCollector::reduce_launched(NodeId node, JobId job,
                                     std::int64_t attempt) {
  record(EventKind::kReduceLaunched, node, job, attempt);
}

void TraceCollector::reduce_finished(NodeId node, JobId job,
                                     std::int64_t attempt,
                                     double duration_s) {
  record(EventKind::kReduceFinished, node, job, attempt, 0, duration_s);
}

void TraceCollector::reduce_requeued(NodeId node, JobId job,
                                     std::int64_t attempt) {
  record(EventKind::kReduceRequeued, node, job, attempt);
}

void TraceCollector::job_finished(JobId job, double turnaround_s) {
  record(EventKind::kJobFinished, kInvalidNode, job, -1, 0, turnaround_s);
}

void TraceCollector::job_failed(JobId job) {
  record(EventKind::kJobFailed, kInvalidNode, job);
}

void TraceCollector::task_attempt_fault(NodeId node, JobId job,
                                        std::int64_t task) {
  record(EventKind::kTaskAttemptFault, node, job, task);
}

void TraceCollector::replica_adopted(NodeId node, BlockId block,
                                     double budget_occupancy) {
  record(EventKind::kReplicaAdopted, node, kInvalidJob, block, 0,
         budget_occupancy);
}

void TraceCollector::replica_skipped(NodeId node, BlockId block,
                                     SkipReason reason,
                                     double budget_occupancy) {
  record(EventKind::kReplicaSkipped, node, kInvalidJob, block,
         static_cast<std::int64_t>(reason), budget_occupancy);
}

void TraceCollector::replica_evicted(NodeId node, BlockId victim,
                                     double access_count,
                                     std::size_t aging_passes) {
  record(EventKind::kReplicaEvicted, node, kInvalidJob, victim,
         static_cast<std::int64_t>(aging_passes), access_count);
}

void TraceCollector::disk_reclaim(NodeId node,
                                  std::size_t replicas_reclaimed) {
  record(EventKind::kDiskReclaim, node, kInvalidJob, -1,
         static_cast<std::int64_t>(replicas_reclaimed));
}

void TraceCollector::heartbeat(NodeId node) {
  record(EventKind::kHeartbeat, node);
}

void TraceCollector::node_failed(NodeId node, int fault_kind,
                                 double downtime_s) {
  record(EventKind::kNodeFailed, node, kInvalidJob, -1, fault_kind,
         downtime_s);
}

void TraceCollector::node_declared_dead(NodeId node) {
  record(EventKind::kNodeDeclaredDead, node);
}

void TraceCollector::node_rejoined(NodeId node, bool full_reregistration) {
  record(EventKind::kNodeRejoined, node, kInvalidJob, -1,
         full_reregistration ? 1 : 0);
}

void TraceCollector::block_repaired(NodeId node, BlockId block) {
  record(EventKind::kBlockRepaired, node, kInvalidJob, block);
}

void TraceCollector::replica_corrupted(NodeId node, BlockId block) {
  record(EventKind::kReplicaCorrupted, node, kInvalidJob, block);
}

void TraceCollector::checksum_failed(NodeId node, BlockId block) {
  record(EventKind::kChecksumFailed, node, kInvalidJob, block);
}

void TraceCollector::replica_quarantined(NodeId node, BlockId block) {
  record(EventKind::kReplicaQuarantined, node, kInvalidJob, block);
}

void TraceCollector::data_loss(BlockId block) {
  record(EventKind::kDataLoss, kInvalidNode, kInvalidJob, block);
}

void TraceCollector::node_degraded(NodeId node, bool rack_correlated,
                                   double compute_slowdown) {
  record(EventKind::kNodeDegraded, node, kInvalidJob, -1,
         rack_correlated ? 1 : 0, compute_slowdown);
}

void TraceCollector::node_degrade_ended(NodeId node) {
  record(EventKind::kNodeDegradeEnded, node);
}

void TraceCollector::straggler_detected(NodeId node, double ewma_ratio) {
  record(EventKind::kStragglerDetected, node, kInvalidJob, -1, 0, ewma_ratio);
}

void TraceCollector::straggler_cleared(NodeId node) {
  record(EventKind::kStragglerCleared, node);
}

void TraceCollector::clone_launched(NodeId node, JobId job,
                                    std::size_t map_index, int locality) {
  record(EventKind::kCloneLaunched, node, job,
         static_cast<std::int64_t>(map_index), locality);
}

void TraceCollector::clone_killed(NodeId node, JobId job,
                                  std::size_t map_index) {
  record(EventKind::kCloneKilled, node, job,
         static_cast<std::int64_t>(map_index));
}

void TraceCollector::link_degraded(RackId rack, double duration_s) {
  record(EventKind::kLinkDegraded, kInvalidNode, kInvalidJob, -1,
         static_cast<std::int64_t>(rack), duration_s);
}

void TraceCollector::partition_started(RackId rack, double duration_s) {
  record(EventKind::kPartitionStarted, kInvalidNode, kInvalidJob, -1,
         static_cast<std::int64_t>(rack), duration_s);
}

void TraceCollector::partition_healed(RackId rack) {
  record(EventKind::kPartitionHealed, kInvalidNode, kInvalidJob, -1,
         static_cast<std::int64_t>(rack));
}

void TraceCollector::repair_retried(BlockId block, std::size_t retries) {
  record(EventKind::kRepairRetried, kInvalidNode, kInvalidJob, block,
         static_cast<std::int64_t>(retries));
}

void TraceCollector::repair_preempted(BlockId block) {
  record(EventKind::kRepairPreempted, kInvalidNode, kInvalidJob, block);
}

void TraceCollector::scheduler_decision(NodeId node, JobId job, int locality,
                                        double waited_s) {
  record(EventKind::kSchedulerDecision, node, job, -1, locality, waited_s);
}

void TraceCollector::delay_wait(NodeId node, JobId job) {
  record(EventKind::kDelayWait, node, job);
}

}  // namespace dare::obs
