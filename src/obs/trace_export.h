// Exporters for a collected trace.
//
//  * write_chrome_trace — Chrome trace-event JSON ("traceEvents" array),
//    loadable in chrome://tracing and https://ui.perfetto.dev. One timeline
//    track per worker node plus dedicated scheduler and namenode tracks;
//    task executions become duration ("X") slices by pairing launch and
//    finish/kill events, everything else is an instant ("i") event.
//    Timestamps are the events' simulation-time microseconds verbatim.
//
//  * write_events_csv — flat CSV of every event (one row each) for the
//    analysis library and ad-hoc tooling.
//
// Both exporters are deterministic functions of the collected events: two
// traced runs of the same seed produce byte-identical output.
#pragma once

#include <iosfwd>

namespace dare::obs {

class TraceCollector;

void write_chrome_trace(const TraceCollector& trace, std::ostream& out);

void write_events_csv(const TraceCollector& trace, std::ostream& out);

}  // namespace dare::obs
