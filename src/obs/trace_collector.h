// TraceCollector: the append-only sink every instrumented component writes
// through. Components hold a raw `TraceCollector*` that is null when tracing
// is disabled; every emission site is guarded by `if (tracer_)`, so the
// disabled path costs one predicted branch and the run stays
// fingerprint-identical either way (tracing only observes, never decides).
//
// Timestamps come from a clock callback (the simulation's now()) injected at
// construction, so emitters never need a Simulation reference and events can
// never carry a wall clock.
//
// Deliberately unsynchronized: one collector belongs to one simulation
// thread (run_parallel sweeps attach one collector per run), so the hot
// record() path carries no mutex. That single-writer contract is enforced —
// not just documented — in invariant-enabled builds: the first record()
// pins the owning thread and any record() from another thread aborts with
// context. clear() unpins, so drivers may reuse a collector across runs
// that land on different pool workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/types.h"
#include "obs/time_series.h"
#include "obs/trace_event.h"

namespace dare::obs {

class TraceCollector {
 public:
  using Clock = std::function<SimTime()>;

  /// Collector whose clock reads 0 until set_clock rebinds it. This is the
  /// constructor external drivers use: ClusterOptions borrows the collector
  /// and the Cluster rebinds it to its own simulation clock at attach time.
  TraceCollector();

  /// `clock` supplies the simulation time for every event (required).
  explicit TraceCollector(Clock clock);

  /// Rebind the timestamp source (e.g. to a Cluster's simulation clock).
  /// Throws std::invalid_argument on a null clock.
  void set_clock(Clock clock);

  /// Append one event stamped with clock(). The typed emitters below are
  /// thin wrappers that document the field mapping; prefer them.
  void record(EventKind kind, NodeId node, JobId job = kInvalidJob,
              std::int64_t task = -1, std::int64_t detail = 0,
              double value = 0.0);

  // --- task lifecycle -----------------------------------------------------
  void job_submitted(JobId job, std::size_t maps, std::size_t reduces);
  void map_launched(NodeId node, JobId job, std::size_t map_index,
                    int locality, bool speculative);
  void map_finished(NodeId node, JobId job, std::size_t map_index,
                    double duration_s, bool speculative_won);
  void map_killed(NodeId node, JobId job, std::size_t map_index);
  void map_requeued(NodeId node, JobId job, std::size_t map_index);
  void reduce_launched(NodeId node, JobId job, std::int64_t attempt);
  void reduce_finished(NodeId node, JobId job, std::int64_t attempt,
                       double duration_s);
  void reduce_requeued(NodeId node, JobId job, std::int64_t attempt);
  void job_finished(JobId job, double turnaround_s);
  void job_failed(JobId job);
  void task_attempt_fault(NodeId node, JobId job, std::int64_t task);

  // --- replication decisions (remote reads only) --------------------------
  void replica_adopted(NodeId node, BlockId block, double budget_occupancy);
  void replica_skipped(NodeId node, BlockId block, SkipReason reason,
                       double budget_occupancy);
  void replica_evicted(NodeId node, BlockId victim, double access_count,
                       std::size_t aging_passes);

  // --- storage / membership ----------------------------------------------
  void disk_reclaim(NodeId node, std::size_t replicas_reclaimed);
  void heartbeat(NodeId node);
  void node_failed(NodeId node, int fault_kind, double downtime_s);
  void node_declared_dead(NodeId node);
  void node_rejoined(NodeId node, bool full_reregistration);
  void block_repaired(NodeId node, BlockId block);

  // --- data integrity -----------------------------------------------------
  void replica_corrupted(NodeId node, BlockId block);
  void checksum_failed(NodeId node, BlockId block);
  void replica_quarantined(NodeId node, BlockId block);
  void data_loss(BlockId block);

  // --- stragglers & cloning -----------------------------------------------
  void node_degraded(NodeId node, bool rack_correlated,
                     double compute_slowdown);
  void node_degrade_ended(NodeId node);
  void straggler_detected(NodeId node, double ewma_ratio);
  void straggler_cleared(NodeId node);
  void clone_launched(NodeId node, JobId job, std::size_t map_index,
                      int locality);
  void clone_killed(NodeId node, JobId job, std::size_t map_index);

  // --- network faults & prioritized repair --------------------------------
  void link_degraded(RackId rack, double duration_s);
  void partition_started(RackId rack, double duration_s);
  void partition_healed(RackId rack);
  void repair_retried(BlockId block, std::size_t retries);
  void repair_preempted(BlockId block);

  // --- scheduler ----------------------------------------------------------
  void scheduler_decision(NodeId node, JobId job, int locality,
                          double waited_s);
  void delay_wait(NodeId node, JobId job);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  TimeSeries& series() { return series_; }
  const TimeSeries& series() const { return series_; }

  /// Drop all collected events and samples (reuse across runs).
  void clear();

 private:
  Clock clock_;
  std::vector<TraceEvent> events_;
  TimeSeries series_;
  /// First thread to record(); default-constructed means unpinned. Checked
  /// only in invariant-enabled builds (see header comment).
  std::thread::id owner_;
};

}  // namespace dare::obs
