// Descriptive statistics of a workload: what the SWIM paper calls the
// "workload suite" characterization. Used by examples to print what is
// about to be replayed, and by tests to assert the generators produce the
// documented shapes (wl1 = long stream of small jobs; wl2 = small jobs
// after large jobs).
#pragma once

#include <cstddef>

#include "common/stats.h"
#include "workload/workload.h"

namespace dare::workload {

struct WorkloadStats {
  std::size_t jobs = 0;
  std::size_t files = 0;

  /// Maps per job (== blocks of the input file).
  double mean_maps = 0.0;
  double max_maps = 0.0;
  /// Fraction of jobs with at most 2 map tasks ("small jobs").
  double small_job_fraction = 0.0;

  /// Arrival process.
  double duration_s = 0.0;           ///< last arrival - first arrival
  double mean_interarrival_s = 0.0;
  double peak_rate_jobs_per_s = 0.0;  ///< max jobs in any 10 s window / 10

  /// Data volumes.
  Bytes total_input_bytes = 0;
  Bytes total_shuffle_bytes = 0;

  /// Popularity skew: fraction of accesses going to the top 10% of files
  /// (by access count).
  double top_decile_access_share = 0.0;
};

/// Compute the characterization. O(jobs log jobs).
WorkloadStats characterize(const Workload& workload);

}  // namespace dare::workload
