// Generative model of the Yahoo! HDFS audit log analyzed in Section III.
//
// The real data set (ydata-hdfs-audit-logs-v1_0, second week of Jan 2010,
// 4000-node cluster) is distributed under an agreement and unavailable here.
// Section III only consumes four aggregate properties, all of which this
// generator reproduces by construction:
//   Fig. 2 — heavy-tailed file popularity spanning ~4 decades of accesses;
//   Fig. 3 — age-at-access CDF: ~50 % of accesses before ~10 h of file age,
//            ~80 % within the first day;
//   Fig. 4 — bimodal 80 %-coverage windows: most files bursty (~1 h),
//            a second mode of daily-accessed files needing the whole week;
//   Fig. 5 — within a single day, significant accesses lie within one hour.
//
// Files belong to one of two access classes:
//   kBursty — all accesses cluster shortly after creation (job data sets);
//   kDaily  — accesses recur every day at roughly the same hour (periodic
//             analytics over a common time-varying data set).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dare::workload {

struct TraceFileInfo {
  FileId id = kInvalidFile;
  SimTime created = 0;
  std::size_t blocks = 1;
};

struct AccessEvent {
  FileId file = kInvalidFile;
  SimTime time = 0;
};

struct AccessTrace {
  std::vector<TraceFileInfo> files;
  std::vector<AccessEvent> events;  ///< sorted by time ascending

  SimTime span = 0;  ///< trace horizon (one week by default)
};

struct YahooTraceOptions {
  std::size_t files = 2000;
  std::size_t total_accesses = 200000;
  double zipf_s = 1.25;            ///< popularity skew (Fig. 2 slope)
  double daily_fraction = 0.2;     ///< fraction of files in the daily class (stratified by rank)
  SimTime span = from_seconds(7 * 24 * 3600.0);
  std::size_t min_blocks = 1;
  std::size_t max_blocks = 64;
  std::uint64_t seed = 7;
};

AccessTrace generate_yahoo_trace(const YahooTraceOptions& options);

}  // namespace dare::workload
