// Plain-text serialization of synthesized workloads, so experiments can be
// replayed bit-identically outside the generator (and users can hand-edit
// or substitute their own traces, e.g. ones converted from real SWIM data).
//
// Format (line oriented, '#' comments):
//   workload <name>
//   blocksize <bytes>
//   file <blocks>                      # catalog entry, in index order
//   job <arrival_us> <file_index> <reduces> <map_cpu_us> <reduce_cpu_us>
//       followed by <shuffle_bytes>
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace dare::workload {

/// Serialize a workload to a stream. Throws std::ios_base::failure on I/O
/// errors (the stream's exception mask is honored).
void write_workload(std::ostream& out, const Workload& workload);

/// Parse a workload; throws std::invalid_argument with a line number on any
/// malformed input, including jobs referencing out-of-range files.
Workload read_workload(std::istream& in);

/// Convenience: round-trip through a string.
std::string workload_to_string(const Workload& workload);
Workload workload_from_string(const std::string& text);

}  // namespace dare::workload
