#include "workload/workload.h"

#include <algorithm>
#include <stdexcept>

namespace dare::workload {

std::vector<std::size_t> Workload::file_access_counts() const {
  std::vector<std::size_t> counts(catalog.size(), 0);
  for (const auto& job : jobs) {
    if (job.file_index >= counts.size()) {
      throw std::out_of_range("Workload: job references missing file");
    }
    ++counts[job.file_index];
  }
  return counts;
}

DiscreteDistribution small_file_popularity(const CatalogSpec& catalog,
                                           double zipf_s) {
  ZipfDistribution zipf(catalog.small_files, zipf_s);
  std::vector<double> weights(catalog.small_files);
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = zipf.pmf(i);
  return DiscreteDistribution(std::move(weights));
}

namespace {

/// Shared per-job parameter synthesis: CPU demand and reduce shape follow
/// the input size. The trace mixes input-bound jobs (small shuffles; map
/// reads dominate) with a minority of output-bound jobs (heavy shuffles and
/// reduce work) — the mixture the paper invokes in Section V-C to explain
/// why dynamic replication expedites some tasks more than others.
JobTemplate synthesize_job(SimTime arrival, std::size_t file_index,
                           std::size_t file_blocks, Rng& rng) {
  JobTemplate job;
  job.arrival = arrival;
  job.file_index = file_index;
  job.map_cpu = from_seconds(rng.uniform(0.5, 2.0));
  job.reduces = std::clamp<std::size_t>(file_blocks / 4, 1, 8);
  const bool output_bound = rng.bernoulli(0.3);
  if (output_bound) {
    job.reduce_cpu = from_seconds(rng.uniform(3.0, 8.0));
    job.shuffle_bytes = static_cast<Bytes>(file_blocks) * 48 * kMiB;
  } else {
    job.reduce_cpu = from_seconds(rng.uniform(1.0, 3.0));
    job.shuffle_bytes = static_cast<Bytes>(file_blocks) * 4 * kMiB;
  }
  return job;
}

/// wl1's generator loop as a pull stream. The Rng is the workload's root
/// stream copied at its post-catalog position, so job i's draws are exactly
/// the draws the materialized loop made for job i.
class Wl1Stream final : public JobStream {
 public:
  Wl1Stream(const Rng& rng, const WorkloadOptions& options,
            std::vector<std::size_t> file_blocks)
      : rng_(rng),
        options_(options),
        file_blocks_(std::move(file_blocks)),
        popularity_(small_file_popularity(options.catalog, options.zipf_s)),
        lambda_(1.0 / options.small_interarrival_s) {}

  std::optional<JobTemplate> next() override {
    if (produced_ == options_.num_jobs) return std::nullopt;
    ++produced_;
    t_ += from_seconds(rng_.exponential(lambda_));
    const std::size_t file = popularity_.sample(rng_);
    return synthesize_job(t_, file, file_blocks_[file], rng_);
  }

 private:
  Rng rng_;
  WorkloadOptions options_;
  std::vector<std::size_t> file_blocks_;  ///< catalog index -> block count
  DiscreteDistribution popularity_;
  double lambda_;
  SimTime t_ = 0;
  std::size_t produced_ = 0;
};

/// wl2's generator loop as a pull stream (large job every large_period,
/// burst of fast small arrivals after each). Same draw-for-draw contract as
/// Wl1Stream.
class Wl2Stream final : public JobStream {
 public:
  Wl2Stream(const Rng& rng, const WorkloadOptions& options,
            std::vector<std::size_t> file_blocks)
      : rng_(rng),
        options_(options),
        file_blocks_(std::move(file_blocks)),
        popularity_(small_file_popularity(options.catalog, options.zipf_s)),
        lambda_(1.0 / options.small_interarrival_s),
        burst_lambda_(1.0 / options.burst_interarrival_s) {}

  std::optional<JobTemplate> next() override {
    if (produced_ == options_.num_jobs) return std::nullopt;
    const std::size_t i = produced_++;
    const bool large =
        options_.large_period > 0 && i % options_.large_period == 0 && i > 0;
    if (large) {
      t_ += from_seconds(rng_.exponential(lambda_));
      // Full scan over one of the large files.
      const std::size_t file =
          options_.catalog.small_files +
          static_cast<std::size_t>(
              rng_.uniform_int(options_.catalog.large_files));
      burst_remaining_ = options_.burst_length;
      return synthesize_job(t_, file, file_blocks_[file], rng_);
    }
    // Small jobs arrive faster right after a large job (the wl2 pattern).
    const double rate = burst_remaining_ > 0 ? burst_lambda_ : lambda_;
    if (burst_remaining_ > 0) --burst_remaining_;
    t_ += from_seconds(rng_.exponential(rate));
    const std::size_t file = popularity_.sample(rng_);
    return synthesize_job(t_, file, file_blocks_[file], rng_);
  }

 private:
  Rng rng_;
  WorkloadOptions options_;
  std::vector<std::size_t> file_blocks_;
  DiscreteDistribution popularity_;
  double lambda_;
  double burst_lambda_;
  SimTime t_ = 0;
  std::size_t produced_ = 0;
  std::size_t burst_remaining_ = 0;
};

std::vector<std::size_t> catalog_block_counts(
    const std::vector<FileSpec>& catalog) {
  std::vector<std::size_t> blocks;
  blocks.reserve(catalog.size());
  for (const auto& file : catalog) blocks.push_back(file.blocks);
  return blocks;
}

}  // namespace

std::vector<std::size_t> WorkloadSpec::file_access_counts() const {
  std::vector<std::size_t> counts(catalog.size(), 0);
  const auto stream = open();
  while (const auto job = stream->next()) {
    if (job->file_index >= counts.size()) {
      throw std::out_of_range("WorkloadSpec: job references missing file");
    }
    ++counts[job->file_index];
  }
  return counts;
}

WorkloadSpec make_wl1_spec(const WorkloadOptions& options) {
  WorkloadSpec spec;
  spec.name = "wl1";
  spec.catalog_spec = options.catalog;
  spec.num_jobs = options.num_jobs;
  // Root stream: the generator is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  spec.catalog = build_catalog(options.catalog, rng);
  // The factory captures the post-catalog generator state by value: every
  // open() resumes from the exact stream position the materialized loop had
  // after building the catalog.
  spec.open = [rng, options,
               blocks = catalog_block_counts(spec.catalog)]() {
    return std::unique_ptr<JobStream>(
        std::make_unique<Wl1Stream>(rng, options, blocks));
  };
  return spec;
}

WorkloadSpec make_wl2_spec(const WorkloadOptions& options) {
  if (options.catalog.large_files == 0) {
    throw std::invalid_argument("make_wl2: needs large files in the catalog");
  }
  WorkloadSpec spec;
  spec.name = "wl2";
  spec.catalog_spec = options.catalog;
  spec.num_jobs = options.num_jobs;
  // Root stream: the generator is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  spec.catalog = build_catalog(options.catalog, rng);
  spec.open = [rng, options,
               blocks = catalog_block_counts(spec.catalog)]() {
    return std::unique_ptr<JobStream>(
        std::make_unique<Wl2Stream>(rng, options, blocks));
  };
  return spec;
}

Workload materialize(const WorkloadSpec& spec) {
  Workload wl;
  wl.name = spec.name;
  wl.catalog_spec = spec.catalog_spec;
  wl.catalog = spec.catalog;
  wl.jobs.reserve(spec.num_jobs);
  const auto stream = spec.open();
  while (auto job = stream->next()) wl.jobs.push_back(*job);
  return wl;
}

Workload make_wl1(const WorkloadOptions& options) {
  return materialize(make_wl1_spec(options));
}

Workload make_wl2(const WorkloadOptions& options) {
  return materialize(make_wl2_spec(options));
}

}  // namespace dare::workload
