#include "workload/workload.h"

#include <algorithm>
#include <stdexcept>

namespace dare::workload {

std::vector<std::size_t> Workload::file_access_counts() const {
  std::vector<std::size_t> counts(catalog.size(), 0);
  for (const auto& job : jobs) {
    if (job.file_index >= counts.size()) {
      throw std::out_of_range("Workload: job references missing file");
    }
    ++counts[job.file_index];
  }
  return counts;
}

DiscreteDistribution small_file_popularity(const CatalogSpec& catalog,
                                           double zipf_s) {
  ZipfDistribution zipf(catalog.small_files, zipf_s);
  std::vector<double> weights(catalog.small_files);
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = zipf.pmf(i);
  return DiscreteDistribution(std::move(weights));
}

namespace {

/// Shared per-job parameter synthesis: CPU demand and reduce shape follow
/// the input size. The trace mixes input-bound jobs (small shuffles; map
/// reads dominate) with a minority of output-bound jobs (heavy shuffles and
/// reduce work) — the mixture the paper invokes in Section V-C to explain
/// why dynamic replication expedites some tasks more than others.
JobTemplate synthesize_job(SimTime arrival, std::size_t file_index,
                           std::size_t file_blocks, Rng& rng) {
  JobTemplate job;
  job.arrival = arrival;
  job.file_index = file_index;
  job.map_cpu = from_seconds(rng.uniform(0.5, 2.0));
  job.reduces = std::clamp<std::size_t>(file_blocks / 4, 1, 8);
  const bool output_bound = rng.bernoulli(0.3);
  if (output_bound) {
    job.reduce_cpu = from_seconds(rng.uniform(3.0, 8.0));
    job.shuffle_bytes = static_cast<Bytes>(file_blocks) * 48 * kMiB;
  } else {
    job.reduce_cpu = from_seconds(rng.uniform(1.0, 3.0));
    job.shuffle_bytes = static_cast<Bytes>(file_blocks) * 4 * kMiB;
  }
  return job;
}

}  // namespace

Workload make_wl1(const WorkloadOptions& options) {
  Workload wl;
  wl.name = "wl1";
  wl.catalog_spec = options.catalog;
  // Root stream: the generator is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  wl.catalog = build_catalog(options.catalog, rng);
  const DiscreteDistribution popularity =
      small_file_popularity(options.catalog, options.zipf_s);

  SimTime t = 0;
  const double lambda = 1.0 / options.small_interarrival_s;
  for (std::size_t i = 0; i < options.num_jobs; ++i) {
    t += from_seconds(rng.exponential(lambda));
    const std::size_t file = popularity.sample(rng);
    wl.jobs.push_back(
        synthesize_job(t, file, wl.catalog[file].blocks, rng));
  }
  return wl;
}

Workload make_wl2(const WorkloadOptions& options) {
  if (options.catalog.large_files == 0) {
    throw std::invalid_argument("make_wl2: needs large files in the catalog");
  }
  Workload wl;
  wl.name = "wl2";
  wl.catalog_spec = options.catalog;
  // Root stream: the generator is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  wl.catalog = build_catalog(options.catalog, rng);
  const DiscreteDistribution popularity =
      small_file_popularity(options.catalog, options.zipf_s);

  SimTime t = 0;
  const double lambda = 1.0 / options.small_interarrival_s;
  const double burst_lambda = 1.0 / options.burst_interarrival_s;
  std::size_t burst_remaining = 0;
  for (std::size_t i = 0; i < options.num_jobs; ++i) {
    const bool large =
        options.large_period > 0 && i % options.large_period == 0 && i > 0;
    if (large) {
      t += from_seconds(rng.exponential(lambda));
      // Full scan over one of the large files.
      const std::size_t file =
          options.catalog.small_files +
          static_cast<std::size_t>(rng.uniform_int(options.catalog.large_files));
      wl.jobs.push_back(
          synthesize_job(t, file, wl.catalog[file].blocks, rng));
      burst_remaining = options.burst_length;
      continue;
    }
    // Small jobs arrive faster right after a large job (the wl2 pattern).
    const double rate = burst_remaining > 0 ? burst_lambda : lambda;
    if (burst_remaining > 0) --burst_remaining;
    t += from_seconds(rng.exponential(rate));
    const std::size_t file = popularity.sample(rng);
    wl.jobs.push_back(
        synthesize_job(t, file, wl.catalog[file].blocks, rng));
  }
  return wl;
}

}  // namespace dare::workload
