#include "workload/swim_import.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace dare::workload {

Workload import_swim(std::istream& in, const SwimImportOptions& options) {
  if (options.block_size <= 0) {
    throw std::invalid_argument("SwimImport: block_size must be positive");
  }
  Workload wl;
  wl.name = "swim-import";
  wl.catalog_spec = CatalogSpec{};
  wl.catalog_spec.block_size = options.block_size;

  // Root stream: the importer is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  // Jobs with the same input size map to the same catalog file.
  std::map<std::size_t, std::size_t> blocks_to_file;

  std::string line;
  std::size_t line_no = 0;
  std::size_t row = 0;       // data rows seen (for the window selection)
  std::size_t imported = 0;  // jobs actually kept
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("swim trace line " + std::to_string(line_no) +
                                ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;  // blank

    double submit_s = 0.0;
    double inter_arrival_s = 0.0;
    double input_bytes = 0.0;
    double shuffle_bytes = 0.0;
    double output_bytes = 0.0;
    if (!(ls >> submit_s >> inter_arrival_s >> input_bytes >> shuffle_bytes >>
          output_bytes)) {
      fail("expected <name> <submit> <interarrival> <input> <shuffle> "
           "<output>");
    }
    if (submit_s < 0 || input_bytes < 0 || shuffle_bytes < 0 ||
        output_bytes < 0) {
      fail("negative field");
    }

    const std::size_t this_row = row++;
    if (this_row < options.first_job) continue;
    if (options.num_jobs != 0 && imported >= options.num_jobs) break;

    auto blocks = static_cast<std::size_t>(
        std::ceil(input_bytes / static_cast<double>(options.block_size)));
    blocks = std::max<std::size_t>(1, blocks);
    if (options.max_blocks_per_job != 0) {
      blocks = std::min(blocks, options.max_blocks_per_job);
    }

    const auto [it, inserted] =
        blocks_to_file.try_emplace(blocks, wl.catalog.size());
    if (inserted) {
      FileSpec file;
      file.name = "swim-" + std::to_string(blocks) + "b";
      file.blocks = blocks;
      wl.catalog.push_back(std::move(file));
    }

    JobTemplate job;
    job.arrival = from_seconds(submit_s * options.time_scale);
    job.file_index = it->second;
    job.map_cpu = from_seconds(rng.uniform(0.5, 2.0));
    job.reduces = std::clamp<std::size_t>(blocks / 4, 1, 8);
    job.reduce_cpu = from_seconds(rng.uniform(1.0, 3.0));
    job.shuffle_bytes = static_cast<Bytes>(shuffle_bytes);
    wl.jobs.push_back(job);
    ++imported;
  }
  if (wl.jobs.empty()) {
    throw std::invalid_argument("SwimImport: no jobs in the selected window");
  }
  // SWIM rows are usually sorted by submit time, but slices may not start
  // at zero and some published traces interleave job classes.
  std::sort(wl.jobs.begin(), wl.jobs.end(),
            [](const JobTemplate& a, const JobTemplate& b) {
              return a.arrival < b.arrival;
            });
  const SimTime t0 = wl.jobs.front().arrival;
  for (auto& job : wl.jobs) job.arrival -= t0;
  return wl;
}

Workload import_swim_string(const std::string& text,
                            const SwimImportOptions& options) {
  std::istringstream in(text);
  return import_swim(in, options);
}

}  // namespace dare::workload
