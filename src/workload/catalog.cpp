#include "workload/catalog.h"

#include <stdexcept>

namespace dare::workload {

std::vector<FileSpec> build_catalog(const CatalogSpec& spec, Rng& rng) {
  if (spec.small_files == 0) {
    throw std::invalid_argument("CatalogSpec: need small files");
  }
  if (spec.small_min_blocks == 0 || spec.large_min_blocks == 0 ||
      spec.small_min_blocks > spec.small_max_blocks ||
      spec.large_min_blocks > spec.large_max_blocks) {
    throw std::invalid_argument("CatalogSpec: bad block count ranges");
  }
  std::vector<FileSpec> catalog;
  catalog.reserve(spec.small_files + spec.large_files);
  for (std::size_t i = 0; i < spec.small_files; ++i) {
    FileSpec f;
    f.name = "small-" + std::to_string(i);
    f.blocks = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.small_min_blocks),
                        static_cast<std::int64_t>(spec.small_max_blocks)));
    catalog.push_back(std::move(f));
  }
  for (std::size_t i = 0; i < spec.large_files; ++i) {
    FileSpec f;
    f.name = "large-" + std::to_string(i);
    f.blocks = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.large_min_blocks),
                        static_cast<std::int64_t>(spec.large_max_blocks)));
    catalog.push_back(std::move(f));
  }
  return catalog;
}

}  // namespace dare::workload
