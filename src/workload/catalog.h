// The file population jobs read from.
//
// The catalog mimics the data-lake layout behind the Facebook SWIM traces:
// a large population of small files (a handful of 128 MB blocks — logs,
// partitions, samples) plus a modest set of large files (tens to a hundred
// blocks — the common data set full scans run over). Small files occupy the
// low popularity ranks; see workload.h for how jobs choose among them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dare::workload {

struct FileSpec {
  std::string name;
  std::size_t blocks = 1;
};

struct CatalogSpec {
  std::size_t small_files = 100;
  std::size_t small_min_blocks = 1;
  std::size_t small_max_blocks = 1;
  std::size_t large_files = 10;
  std::size_t large_min_blocks = 12;
  std::size_t large_max_blocks = 36;
  Bytes block_size = 128 * kMiB;
};

/// Build the catalog: small files first (indices [0, small_files)), then
/// large files. Block counts are drawn uniformly from the configured ranges.
std::vector<FileSpec> build_catalog(const CatalogSpec& spec, Rng& rng);

}  // namespace dare::workload
