// Importer for SWIM-format workload traces (Chen et al., MASCOTS'11).
//
// The paper replays jobs 0-499 (wl1) and 4800-5299 (wl2) of the Facebook
// trace published with SWIM's "Statistical Workload Injector for
// MapReduce". SWIM trace files are whitespace-separated lines:
//
//   <job-name> <submit_time_s> <inter_arrival_s> <map_input_bytes>
//   <shuffle_bytes> <reduce_output_bytes>
//
// This importer converts such a trace into our Workload format:
//   * every distinct input size becomes (or reuses) a catalog file with
//     ceil(input_bytes / block_size) blocks — SWIM does not publish file
//     identities, so jobs with identical input sizes are mapped to the same
//     file, which reconstructs file reuse for the repetitive small jobs
//     that dominate the Facebook trace;
//   * reduces and CPU demand are synthesized from the shuffle/output
//     volumes, mirroring workload.cpp's generator.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"
#include "workload/workload.h"

namespace dare::workload {

struct SwimImportOptions {
  Bytes block_size = 128 * kMiB;
  /// Import only rows [first_job, first_job + num_jobs); num_jobs = 0 means
  /// "to the end" — e.g. first_job=4800, num_jobs=500 selects the paper's
  /// wl2 window.
  std::size_t first_job = 0;
  std::size_t num_jobs = 0;
  /// Scale all arrival times (replay speed-up; SWIM traces span a day).
  double time_scale = 1.0;
  /// Cap on blocks per job (SWIM contains multi-TB scans; the simulator's
  /// clusters are small). 0 = no cap.
  std::size_t max_blocks_per_job = 512;
  std::uint64_t seed = 13;  ///< for the synthesized CPU demands
};

/// Parse a SWIM trace from a stream. Lines starting with '#' and blank
/// lines are skipped. Throws std::invalid_argument (with a line number) on
/// malformed rows.
Workload import_swim(std::istream& in, const SwimImportOptions& options);

/// Convenience: parse from a string.
Workload import_swim_string(const std::string& text,
                            const SwimImportOptions& options);

}  // namespace dare::workload
