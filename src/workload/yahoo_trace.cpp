#include "workload/yahoo_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/distributions.h"

namespace dare::workload {

namespace {

constexpr double kHour = 3600.0;
constexpr double kDay = 24 * kHour;

/// Distribution of a bursty file's *burst time* (age at which its accesses
/// cluster). Because each file's accesses sit within a narrow window around
/// this one draw, the aggregate age-at-access CDF across all bursty files
/// follows this distribution directly — calibrated so the mixture with the
/// daily class matches Fig. 3 (50 % of accesses by ~9 h 45 m, ~80 % within
/// the first day).
PiecewiseCdf burst_age_cdf() {
  return PiecewiseCdf({
      {0.0, 0.0},
      {60.0, 0.03},           // 1 minute
      {1 * kHour, 0.16},
      {4 * kHour, 0.40},
      {9.75 * kHour, 0.64},
      {18 * kHour, 0.88},
      {1 * kDay, 0.95},
      {2 * kDay, 0.99},
      {7 * kDay, 1.0},
  });
}

}  // namespace

AccessTrace generate_yahoo_trace(const YahooTraceOptions& options) {
  if (options.files == 0 || options.total_accesses == 0) {
    throw std::invalid_argument("YahooTrace: need files and accesses");
  }
  // Root stream: the generator is a top-level entry point seeded from its
  // own options. dare-lint: allow(rng-stream-discipline)
  Rng rng(options.seed);
  AccessTrace trace;
  trace.span = options.span;

  const ZipfDistribution zipf(options.files, options.zipf_s);
  const PiecewiseCdf burst_age = burst_age_cdf();
  const double span_s = to_seconds(options.span);

  trace.files.reserve(options.files);
  trace.events.reserve(options.total_accesses);

  // Stratified class assignment (every k-th rank is a daily file) keeps the
  // access-weighted class mix stable: a coin flip per file would let a single
  // head-of-Zipf file swing the aggregate Fig. 3 CDF by 20+ points.
  const std::size_t daily_stride =
      options.daily_fraction > 0.0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(1.0 / options.daily_fraction))
          : 0;

  for (std::size_t rank = 0; rank < options.files; ++rank) {
    // Offset the stride so the head-of-Zipf files stay bursty: the daily
    // class should hold roughly `daily_fraction` of *files*, while holding
    // clearly less than that of accesses (the paper's dominant access mode
    // is the short-lived burst shortly after creation).
    const bool daily =
        daily_stride != 0 && rank % daily_stride == daily_stride - 1;

    TraceFileInfo info;
    info.id = static_cast<FileId>(rank);
    info.blocks = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(options.min_blocks),
                        static_cast<std::int64_t>(options.max_blocks)));
    // Daily files are the long-lived common data set: created at the start
    // of the trace so their access pattern spans the whole week (the Fig. 4
    // spike near 121 hours). Bursty files appear throughout the week.
    if (daily) {
      info.created = from_seconds(rng.uniform(0.0, kDay));
    } else {
      info.created =
          from_seconds(rng.uniform(0.0, std::max(span_s - kDay, 1.0)));
    }
    trace.files.push_back(info);

    const auto accesses = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(options.total_accesses) * zipf.pmf(rank))));
    const double created_s = to_seconds(info.created);
    const double remaining_s = span_s - created_s;

    if (daily) {
      // Periodic analytics: every access lands on some later day, near the
      // file's personal peak hour (so within-day bursts are ~1 hour, Fig. 5).
      const int days_available =
          std::max(1, static_cast<int>(remaining_s / kDay));
      const double peak_hour = rng.uniform(8.0, 20.0);
      for (std::size_t a = 0; a < accesses; ++a) {
        const auto day = static_cast<double>(
            rng.uniform_int(static_cast<std::uint64_t>(days_available)));
        double tod_h = peak_hour + rng.normal(0.0, 0.5);
        tod_h = std::clamp(tod_h, 0.0, 23.99);
        double t = created_s + day * kDay + tod_h * kHour;
        t = std::clamp(t, created_s, span_s);
        trace.events.push_back({info.id, from_seconds(t)});
      }
    } else {
      // Bursty: the whole file is consumed in one tight burst at a single
      // age drawn from the calibrated CDF. Burst widths are lognormal —
      // mostly under an hour, occasionally several hours — which produces
      // the Fig. 4/5 window distribution (mass at 1 hour, thin tail).
      const double burst_at = burst_age.sample(rng);
      const double width_s =
          std::clamp(std::exp(rng.normal(std::log(0.4 * kHour), 1.0)),
                     60.0, 12.0 * kHour);
      for (std::size_t a = 0; a < accesses; ++a) {
        double age = burst_at + rng.uniform(0.0, width_s);
        age = std::min(age, remaining_s);
        trace.events.push_back({info.id, from_seconds(created_s + age)});
      }
    }
  }

  std::sort(trace.events.begin(), trace.events.end(),
            [](const AccessEvent& a, const AccessEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.file < b.file;
            });
  return trace;
}

}  // namespace dare::workload
