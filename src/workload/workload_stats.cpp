#include "workload/workload_stats.h"

#include <algorithm>

namespace dare::workload {

WorkloadStats characterize(const Workload& workload) {
  WorkloadStats stats;
  stats.jobs = workload.jobs.size();
  stats.files = workload.catalog.size();
  if (workload.jobs.empty()) return stats;

  OnlineStats maps;
  std::size_t small_jobs = 0;
  for (const auto& job : workload.jobs) {
    const auto blocks = workload.catalog.at(job.file_index).blocks;
    maps.add(static_cast<double>(blocks));
    if (blocks <= 2) ++small_jobs;
    stats.total_input_bytes +=
        static_cast<Bytes>(blocks) * workload.catalog_spec.block_size;
    stats.total_shuffle_bytes += job.shuffle_bytes;
  }
  stats.mean_maps = maps.mean();
  stats.max_maps = maps.max();
  stats.small_job_fraction =
      static_cast<double>(small_jobs) / static_cast<double>(stats.jobs);

  // Arrival process (jobs are sorted by arrival in our generators; sort a
  // copy to be safe for imported traces).
  std::vector<SimTime> arrivals;
  arrivals.reserve(stats.jobs);
  for (const auto& job : workload.jobs) arrivals.push_back(job.arrival);
  std::sort(arrivals.begin(), arrivals.end());
  stats.duration_s = to_seconds(arrivals.back() - arrivals.front());
  if (stats.jobs > 1) {
    stats.mean_interarrival_s =
        stats.duration_s / static_cast<double>(stats.jobs - 1);
  }
  // Peak rate over sliding 10 s windows (two pointers).
  const SimDuration window = from_seconds(10.0);
  std::size_t left = 0;
  std::size_t peak = 0;
  for (std::size_t right = 0; right < arrivals.size(); ++right) {
    while (arrivals[right] - arrivals[left] > window) ++left;
    peak = std::max(peak, right - left + 1);
  }
  stats.peak_rate_jobs_per_s = static_cast<double>(peak) / 10.0;

  // Popularity skew.
  auto counts = workload.file_access_counts();
  std::sort(counts.rbegin(), counts.rend());
  const std::size_t decile = std::max<std::size_t>(1, counts.size() / 10);
  std::size_t top = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < decile) top += counts[i];
  }
  stats.top_decile_access_share =
      total ? static_cast<double>(top) / static_cast<double>(total) : 0.0;
  return stats;
}

}  // namespace dare::workload
