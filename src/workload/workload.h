// SWIM-style synthetic Facebook workloads.
//
// The paper replays two 500-job segments of a Facebook 600-machine trace
// published with SWIM (Chen et al., MASCOTS'11):
//   wl1 (jobs 0-499):      a long sequence of small jobs — favors FIFO;
//   wl2 (jobs 4800-5299):  a pattern of small jobs following large jobs —
//                          favors the Fair scheduler.
// The trace itself is not redistributable, so these generators synthesize
// workloads with the same shape properties: heavy-tailed file popularity
// (the Fig. 6 CDF), Poisson job arrivals, and — for wl2 — periodic large
// full-scan jobs followed by bursts of small jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/types.h"
#include "workload/catalog.h"

namespace dare::workload {

/// One job to be materialized against the catalog at run time.
struct JobTemplate {
  SimTime arrival = 0;
  std::size_t file_index = 0;   ///< catalog index of the input file
  std::size_t reduces = 1;
  SimDuration map_cpu = 0;      ///< per map task
  SimDuration reduce_cpu = 0;   ///< per reduce task
  Bytes shuffle_bytes = 0;      ///< total shuffled bytes for the job
};

struct Workload {
  std::string name;
  CatalogSpec catalog_spec;
  std::vector<FileSpec> catalog;
  std::vector<JobTemplate> jobs;

  /// Number of accesses per catalog file in this workload (for popularity
  /// indices and the Fig. 6 CDF).
  std::vector<std::size_t> file_access_counts() const;
};

/// Pull-based job generator: next() yields job templates in arrival order
/// and std::nullopt once the stream is exhausted. Streams are single-pass;
/// open a fresh one (WorkloadSpec::open) to replay from the start.
class JobStream {
 public:
  virtual ~JobStream() = default;
  virtual std::optional<JobTemplate> next() = 0;
};

/// A workload described by its generator instead of a materialized job
/// vector: the catalog is built up front (HDFS loads it before the run),
/// jobs are drawn on demand as simulated time reaches their arrivals. A
/// spec's stream replays the exact RNG draw sequence of the materialized
/// generators, so `materialize(make_wl1_spec(o))` == `make_wl1(o)` template
/// for template — the equivalence tests pin this.
struct WorkloadSpec {
  std::string name;
  CatalogSpec catalog_spec;
  std::vector<FileSpec> catalog;
  /// Total jobs the stream will yield (known up front; arrival times are
  /// not).
  std::size_t num_jobs = 0;
  /// Factory for a fresh stream positioned at the first job. Each stream
  /// owns its own generator state; open() is const-cheap (no job is ever
  /// drawn eagerly).
  std::function<std::unique_ptr<JobStream>()> open;

  /// Number of accesses per catalog file: one extra counting replay of the
  /// stream — O(num_jobs) time, O(catalog) memory, no job storage.
  std::vector<std::size_t> file_access_counts() const;
};

struct WorkloadOptions {
  std::size_t num_jobs = 500;
  std::uint64_t seed = 1;
  /// Popularity skew over small files (Fig. 6 shape).
  double zipf_s = 1.4;
  /// Mean inter-arrival of small jobs, seconds, calibrated so a 19-worker
  /// cluster runs at high utilization — the regime in which head-of-line
  /// FIFO locality degrades to roughly replicas/nodes, as in the paper's
  /// Fig. 7. Lower = more queueing.
  double small_interarrival_s = 0.15;
  /// wl2 only: a large job every `large_period` jobs.
  std::size_t large_period = 25;
  /// wl2 only: inter-arrival of the small-job burst after a large job.
  double burst_interarrival_s = 0.1;
  std::size_t burst_length = 10;
  CatalogSpec catalog;
};

/// wl1: long sequence of small jobs, heavy-tailed file choice.
Workload make_wl1(const WorkloadOptions& options);

/// wl2: small jobs after large jobs.
Workload make_wl2(const WorkloadOptions& options);

/// Streaming variants: same catalogs, same draw-for-draw job sequences, but
/// jobs are generated on demand (hyperscale runs never hold 100k templates
/// in memory). make_wl1/make_wl2 are materialize() over these specs.
WorkloadSpec make_wl1_spec(const WorkloadOptions& options);
WorkloadSpec make_wl2_spec(const WorkloadOptions& options);

/// Drain a spec's stream into the classic vector-backed Workload (tests,
/// small runs, and the streamed-vs-materialized equivalence oracle).
Workload materialize(const WorkloadSpec& spec);

/// The file-popularity distribution used to draw inputs for small jobs —
/// exactly the distribution plotted in Fig. 6.
DiscreteDistribution small_file_popularity(const CatalogSpec& catalog,
                                           double zipf_s);

}  // namespace dare::workload
