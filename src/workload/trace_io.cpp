#include "workload/trace_io.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dare::workload {

void write_workload(std::ostream& out, const Workload& workload) {
  out << "# DARE workload trace v1\n";
  out << "workload " << workload.name << '\n';
  out << "blocksize " << workload.catalog_spec.block_size << '\n';
  for (const auto& file : workload.catalog) {
    out << "file " << file.blocks << '\n';
  }
  for (const auto& job : workload.jobs) {
    out << "job " << job.arrival << ' ' << job.file_index << ' '
        << job.reduces << ' ' << job.map_cpu << ' ' << job.reduce_cpu << ' '
        << job.shuffle_bytes << '\n';
  }
}

Workload read_workload(std::istream& in) {
  Workload wl;
  wl.catalog_spec = CatalogSpec{};
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "workload") {
      if (!(ls >> wl.name)) fail("workload needs a name");
      saw_header = true;
    } else if (kind == "blocksize") {
      if (!(ls >> wl.catalog_spec.block_size) ||
          wl.catalog_spec.block_size <= 0) {
        fail("bad blocksize");
      }
    } else if (kind == "file") {
      FileSpec f;
      if (!(ls >> f.blocks) || f.blocks == 0) fail("bad file entry");
      f.name = "file-" + std::to_string(wl.catalog.size());
      wl.catalog.push_back(std::move(f));
    } else if (kind == "job") {
      JobTemplate j;
      if (!(ls >> j.arrival >> j.file_index >> j.reduces >> j.map_cpu >>
            j.reduce_cpu >> j.shuffle_bytes)) {
        fail("bad job entry");
      }
      if (j.arrival < 0 || j.map_cpu < 0 || j.reduce_cpu < 0 ||
          j.shuffle_bytes < 0) {
        fail("negative job field");
      }
      if (j.file_index >= wl.catalog.size()) {
        fail("job references file not yet declared");
      }
      wl.jobs.push_back(j);
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!saw_header) {
    ++line_no;
    fail("missing 'workload' header");
  }
  if (wl.catalog.empty()) {
    fail("trace has no files");
  }
  return wl;
}

std::string workload_to_string(const Workload& workload) {
  std::ostringstream out;
  write_workload(out, workload);
  return out.str();
}

Workload workload_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_workload(in);
}

}  // namespace dare::workload
