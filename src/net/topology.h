// Cluster topology: which rack each node lives in and router-hop distances
// between node pairs.
//
// Two shapes matter for the paper:
//  * Dedicated single-rack cluster (CCT): every pair is 1 hop apart through
//    the top-of-rack switch.
//  * Virtualized public cloud (EC2): instances are scattered across racks and
//    aggregation pods by the provider; Fig. 1 of the paper shows most pairs
//    of a 20-node allocation are 4 hops apart. We model a three-tier tree
//    (ToR -> aggregation -> core) with randomized instance placement.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dare::net {

enum class TopologyKind {
  kSingleRack,  ///< dedicated cluster, one rack
  kMultiTier,   ///< cloud-style: racks grouped into aggregation pods
};

struct TopologyOptions {
  TopologyKind kind = TopologyKind::kSingleRack;
  std::size_t nodes = 20;
  /// Multi-tier only: how many racks instances are scattered over.
  std::size_t racks = 1;
  /// Multi-tier only: racks per aggregation pod.
  std::size_t racks_per_pod = 4;
};

class Topology {
 public:
  /// Build a topology; multi-tier placement is randomized via `rng`
  /// (every node is assigned a uniformly random rack, mimicking an IaaS
  /// provider spreading an allocation for availability).
  Topology(const TopologyOptions& options, Rng& rng);

  std::size_t node_count() const { return rack_of_.size(); }
  std::size_t rack_count() const { return racks_; }

  RackId rack_of(NodeId node) const;
  bool same_rack(NodeId a, NodeId b) const;

  /// Router hops between two nodes (0 for a node to itself).
  /// Single rack: 1. Multi-tier: 1 within a rack, 4 across racks within a
  /// pod, 5 across pods — matching the Fig. 1 mode at 4 hops.
  int hops(NodeId a, NodeId b) const;

  /// All distinct unordered pairs' hop counts (for the Fig. 1 histogram).
  std::vector<int> all_pair_hops() const;

 private:
  void check_node(NodeId node) const;

  TopologyKind kind_;
  std::size_t racks_ = 1;
  std::size_t racks_per_pod_ = 4;
  std::vector<RackId> rack_of_;
};

}  // namespace dare::net
