#include "net/profile.h"

#include <algorithm>

namespace dare::net {

ClusterProfile cct_profile(std::size_t nodes) {
  ClusterProfile p;
  p.name = "cct";
  p.topology.kind = TopologyKind::kSingleRack;
  p.topology.nodes = nodes;
  p.topology.racks = 1;

  // RTT: mean 0.18 ms, occasional ~2 ms outliers from switch queueing.
  p.latency.per_hop_ms = 0.03;
  p.latency.base_ms = 0.01;
  p.latency.jitter_mu = -2.2;   // lognormal median ~0.11 ms
  p.latency.jitter_sigma = 0.9;
  p.latency.spike_probability = 0.0015;
  p.latency.spike_min_ms = 1.0;
  p.latency.spike_max_ms = 2.2;

  // Gigabit Ethernet close to line rate, very low dispersion.
  p.bandwidth.mean = 117.5;
  p.bandwidth.stddev = 0.6;
  p.bandwidth.floor = 114.0;
  p.bandwidth.ceiling = 118.0;
  p.bandwidth.degraded_probability = 0.0;
  p.bandwidth.cross_pod_penalty = 1.0;

  // Dedicated SATA arrays: tight distribution around 157.8 MB/s.
  p.disk.mean = 157.8;
  p.disk.stddev = 6.0;
  p.disk.floor = 145.0;
  p.disk.ceiling = 167.0;
  p.disk.burst_probability = 0.0;
  return p;
}

ClusterProfile ec2_profile(std::size_t nodes) {
  ClusterProfile p;
  p.name = "ec2";
  p.topology.kind = TopologyKind::kMultiTier;
  p.topology.nodes = nodes;
  // Providers scatter an allocation widely: roughly one rack per two nodes.
  // Most racks share one aggregation pod, with a small spill-over pod —
  // this makes 4 hops the robust mode of the pair distance distribution
  // while keeping a minority of 5-hop (cross-pod) pairs, matching Fig. 1.
  p.topology.racks = nodes / 2 + 1;
  p.topology.racks_per_pod = std::max<std::size_t>(2, p.topology.racks - 1);

  // RTT: mean 0.77 ms with a heavy tail up to ~75 ms caused by hypervisor
  // processor sharing (Wang & Ng, INFOCOM'10).
  p.latency.per_hop_ms = 0.08;
  p.latency.base_ms = 0.02;
  p.latency.jitter_mu = -1.2;   // lognormal median ~0.3 ms
  p.latency.jitter_sigma = 1.1;
  p.latency.spike_probability = 0.004;
  p.latency.spike_min_ms = 10.0;
  p.latency.spike_max_ms = 75.0;

  // Shared NICs: mean 73.2 MB/s, large dispersion, occasional badly shared
  // pairs down to ~6 MB/s.
  p.bandwidth.mean = 78.0;
  p.bandwidth.stddev = 13.0;
  p.bandwidth.floor = 5.8;
  p.bandwidth.ceiling = 109.9;
  p.bandwidth.degraded_probability = 0.03;
  p.bandwidth.degraded_min = 5.8;
  p.bandwidth.degraded_max = 30.0;
  p.bandwidth.cross_pod_penalty = 0.9;
  // With ~2 instances per rack, an oversubscribed uplink binds only when
  // several cross-rack reads pile onto the same rack at once.
  p.bandwidth.rack_uplink_mbps = 250.0;

  // Instance store disks: mean 141.5 MB/s but huge variance — bursts up to
  // ~358 MB/s when no co-tenant is using the spindle.
  p.disk.mean = 125.0;
  p.disk.stddev = 35.0;
  p.disk.floor = 67.1;
  p.disk.ceiling = 357.9;
  p.disk.burst_probability = 0.08;
  p.disk.burst_min = 250.0;
  p.disk.burst_max = 357.9;
  return p;
}

}  // namespace dare::net
