#include "net/measurement.h"

#include <algorithm>

namespace dare::net {

std::vector<double> ping_all_pairs(Network& network,
                                   std::size_t pings_per_pair) {
  std::vector<double> samples;
  const auto n = network.topology().node_count();
  samples.reserve(n * (n - 1) * pings_per_pair);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      for (std::size_t k = 0; k < pings_per_pair; ++k) {
        samples.push_back(network.sample_rtt_ms(static_cast<NodeId>(a),
                                                static_cast<NodeId>(b)));
      }
    }
  }
  return samples;
}

double sample_disk_mbps(const DiskProfile& disk, Rng& rng) {
  double mbps;
  if (rng.bernoulli(disk.burst_probability)) {
    mbps = rng.uniform(disk.burst_min, disk.burst_max);
  } else {
    mbps = rng.normal(disk.mean, disk.stddev);
  }
  return std::clamp(mbps, disk.floor, disk.ceiling);
}

std::vector<double> disk_bandwidth_samples(const ClusterProfile& profile,
                                           std::size_t nodes,
                                           std::size_t samples_per_node,
                                           Rng& rng) {
  std::vector<double> samples;
  samples.reserve(nodes * samples_per_node);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t k = 0; k < samples_per_node; ++k) {
      samples.push_back(sample_disk_mbps(profile.disk, rng));
    }
  }
  return samples;
}

std::vector<double> iperf_samples(Network& network, std::size_t pairs,
                                  Rng& rng) {
  std::vector<double> samples;
  samples.reserve(pairs);
  const auto n = network.topology().node_count();
  for (std::size_t k = 0; k < pairs; ++k) {
    const auto a = static_cast<NodeId>(rng.uniform_int(n));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.uniform_int(n));
    const BytesPerSec bw = network.sample_path_bandwidth(a, b);
    samples.push_back(bw / static_cast<double>(kMiB));
  }
  return samples;
}

std::vector<double> hop_count_distribution(const Topology& topology,
                                           int max_hops) {
  std::vector<double> proportions(static_cast<std::size_t>(max_hops) + 1, 0.0);
  const auto hops = topology.all_pair_hops();
  if (hops.empty()) return proportions;
  for (int h : hops) {
    const auto idx =
        static_cast<std::size_t>(std::clamp(h, 0, max_hops));
    proportions[idx] += 1.0;
  }
  for (auto& p : proportions) p /= static_cast<double>(hops.size());
  return proportions;
}

}  // namespace dare::net
