// Measurement campaigns reproducing the paper's Section II substrate
// characterization: all-to-all ping (Table I), hdparm-style disk reads and
// iperf-style pairwise transfers (Table II), and hop-count distribution
// (Fig. 1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"
#include "net/profile.h"

namespace dare::net {

/// All-to-all ping: `pings_per_pair` RTT samples for every ordered pair of
/// distinct nodes. Returns every sample in ms.
std::vector<double> ping_all_pairs(Network& network,
                                   std::size_t pings_per_pair = 3);

/// hdparm-style buffered disk read benchmark: `samples_per_node` timed reads
/// on every node. Returns MB/s samples.
std::vector<double> disk_bandwidth_samples(const ClusterProfile& profile,
                                           std::size_t nodes,
                                           std::size_t samples_per_node,
                                           Rng& rng);

/// iperf-style pairwise bandwidth: one long uncontended transfer per sampled
/// pair. Returns MB/s samples.
std::vector<double> iperf_samples(Network& network, std::size_t pairs,
                                  Rng& rng);

/// Histogram of hop counts over all unordered node pairs; index = hop count,
/// value = proportion of pairs (Fig. 1).
std::vector<double> hop_count_distribution(const Topology& topology,
                                           int max_hops = 10);

/// Sample a single disk read bandwidth in MB/s from a profile's disk model.
double sample_disk_mbps(const DiskProfile& disk, Rng& rng);

}  // namespace dare::net
