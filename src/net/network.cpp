#include "net/network.h"

#include <cmath>

#include <algorithm>
#include <stdexcept>

namespace dare::net {

Network::Network(const ClusterProfile& profile, const Topology& topology,
                 Rng& rng)
    : profile_(profile),
      topology_(&topology),
      rng_(rng.fork()),
      flows_(topology.node_count(), 0),
      uplink_flows_(topology.rack_count(), 0),
      partitioned_(topology.rack_count(), 0),
      degraded_links_(topology.rack_count(), 0) {}

void Network::set_rack_partitioned(RackId rack, bool partitioned) {
  partitioned_.at(static_cast<std::size_t>(rack)) = partitioned ? 1 : 0;
}

bool Network::rack_partitioned(RackId rack) const {
  return partitioned_.at(static_cast<std::size_t>(rack)) != 0;
}

bool Network::reachable(NodeId a, NodeId b) const {
  if (a == b || topology_->same_rack(a, b)) return true;
  return partitioned_[static_cast<std::size_t>(topology_->rack_of(a))] == 0 &&
         partitioned_[static_cast<std::size_t>(topology_->rack_of(b))] == 0;
}

void Network::set_uplink_degraded(RackId rack, bool degraded) {
  degraded_links_.at(static_cast<std::size_t>(rack)) = degraded ? 1 : 0;
}

bool Network::uplink_degraded(RackId rack) const {
  return degraded_links_.at(static_cast<std::size_t>(rack)) != 0;
}

void Network::set_degradation_factors(double bandwidth_cut,
                                      double latency_inflation) {
  bandwidth_cut_ = bandwidth_cut;
  latency_inflation_ = latency_inflation;
}

double Network::sample_rtt_ms(NodeId a, NodeId b) {
  const LatencyProfile& lat = profile_.latency;
  const int hops = topology_->hops(a, b);
  double rtt = lat.base_ms + lat.per_hop_ms * static_cast<double>(hops);
  // Lognormal queueing/virtualization jitter.
  rtt += std::exp(rng_.normal(lat.jitter_mu, lat.jitter_sigma));
  // Rare hypervisor-scheduling spike (EC2 only in practice).
  if (rng_.bernoulli(lat.spike_probability)) {
    rtt += rng_.uniform(lat.spike_min_ms, lat.spike_max_ms);
  }
  return rtt;
}

BytesPerSec Network::sample_path_bandwidth(NodeId src, NodeId dst) {
  const BandwidthProfile& bw = profile_.bandwidth;
  double mbps;
  if (rng_.bernoulli(bw.degraded_probability)) {
    mbps = rng_.uniform(bw.degraded_min, bw.degraded_max);
  } else {
    mbps = rng_.normal(bw.mean, bw.stddev);
  }
  if (topology_->hops(src, dst) > 4) mbps *= bw.cross_pod_penalty;
  mbps = std::clamp(mbps, bw.floor, bw.ceiling);
  return mb_per_sec(mbps);
}

void Network::flow_started(NodeId src, NodeId dst) {
  ++flows_.at(static_cast<std::size_t>(src));
  ++flows_.at(static_cast<std::size_t>(dst));
  if (src != dst && !topology_->same_rack(src, dst)) {
    ++uplink_flows_.at(static_cast<std::size_t>(topology_->rack_of(src)));
    ++uplink_flows_.at(static_cast<std::size_t>(topology_->rack_of(dst)));
  }
}

void Network::flow_finished(NodeId src, NodeId dst) {
  auto& fs = flows_.at(static_cast<std::size_t>(src));
  auto& fd = flows_.at(static_cast<std::size_t>(dst));
  if (fs <= 0 || fd <= 0) {
    throw std::logic_error("Network: flow_finished without flow_started");
  }
  --fs;
  --fd;
  if (src != dst && !topology_->same_rack(src, dst)) {
    auto& us =
        uplink_flows_.at(static_cast<std::size_t>(topology_->rack_of(src)));
    auto& ud =
        uplink_flows_.at(static_cast<std::size_t>(topology_->rack_of(dst)));
    if (us <= 0 || ud <= 0) {
      throw std::logic_error("Network: uplink accounting underflow");
    }
    --us;
    --ud;
  }
}

int Network::active_flows(NodeId node) const {
  return flows_.at(static_cast<std::size_t>(node));
}

int Network::active_uplink_flows(RackId rack) const {
  return uplink_flows_.at(static_cast<std::size_t>(rack));
}

SimDuration Network::transfer_duration(NodeId src, NodeId dst, Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("Network: negative bytes");
  if (src == dst) return 0;  // local copy, no network involved
  const BytesPerSec path = sample_path_bandwidth(src, dst);
  // The new flow will share each NIC with flows already active there; +1
  // accounts for the new flow itself.
  const int sharing = 1 + std::max(active_flows(src), active_flows(dst));
  BytesPerSec rate = path / static_cast<double>(sharing);
  // Cross-rack flows additionally share the oversubscribed rack uplinks.
  if (profile_.bandwidth.rack_uplink_mbps > 0.0 &&
      !topology_->same_rack(src, dst)) {
    const int uplink_sharing =
        1 + std::max(active_uplink_flows(topology_->rack_of(src)),
                     active_uplink_flows(topology_->rack_of(dst)));
    const BytesPerSec uplink_rate =
        mb_per_sec(profile_.bandwidth.rack_uplink_mbps) /
        static_cast<double>(uplink_sharing);
    rate = std::min(rate, uplink_rate);
  }
  double latency_s = sample_rtt_ms(src, dst) / 1e3;
  // Uplink degradation multiplies rate and latency *after* every sampler
  // above has drawn, so the stream position (and the arithmetic when no
  // uplink is degraded) is untouched by the fault subsystem.
  if (!topology_->same_rack(src, dst) &&
      (degraded_links_[static_cast<std::size_t>(topology_->rack_of(src))] !=
           0 ||
       degraded_links_[static_cast<std::size_t>(topology_->rack_of(dst))] !=
           0)) {
    rate *= bandwidth_cut_;
    latency_s *= latency_inflation_;
  }
  const double seconds = latency_s + static_cast<double>(bytes) / rate;
  return from_seconds(seconds);
}

}  // namespace dare::net
