#include "net/topology.h"

#include <stdexcept>

namespace dare::net {

Topology::Topology(const TopologyOptions& options, Rng& rng)
    : kind_(options.kind),
      racks_(options.kind == TopologyKind::kSingleRack ? 1 : options.racks),
      racks_per_pod_(options.racks_per_pod) {
  // Each guard names the offending TopologyOptions field (the construction
  // sites are several layers away from the knob that was mistyped). The
  // single-rack kind pins racks_ to 1, so its checks key off the requested
  // options rather than the pinned member.
  if (options.nodes == 0) {
    throw std::invalid_argument(
        "TopologyOptions.nodes must be at least 1 (no cluster without "
        "nodes)");
  }
  if (kind_ == TopologyKind::kMultiTier && options.racks == 0) {
    throw std::invalid_argument(
        "TopologyOptions.racks must be at least 1 on a multi-tier "
        "topology (rack assignment divides by it)");
  }
  if (kind_ == TopologyKind::kMultiTier && options.racks > options.nodes) {
    throw std::invalid_argument(
        "TopologyOptions.racks must not exceed TopologyOptions.nodes "
        "(more racks than machines guarantees empty racks)");
  }
  if (options.racks_per_pod == 0) {
    throw std::invalid_argument(
        "TopologyOptions.racks_per_pod must be at least 1 (pod "
        "assignment divides by it)");
  }
  rack_of_.resize(options.nodes);
  if (kind_ == TopologyKind::kSingleRack) {
    for (auto& r : rack_of_) r = 0;
  } else {
    for (auto& r : rack_of_) {
      r = static_cast<RackId>(rng.uniform_int(racks_));
    }
  }
}

void Topology::check_node(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= rack_of_.size()) {
    throw std::out_of_range("Topology: bad node id");
  }
}

RackId Topology::rack_of(NodeId node) const {
  check_node(node);
  return rack_of_[static_cast<std::size_t>(node)];
}

bool Topology::same_rack(NodeId a, NodeId b) const {
  return rack_of(a) == rack_of(b);
}

int Topology::hops(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  if (kind_ == TopologyKind::kSingleRack) return 1;
  const RackId ra = rack_of_[static_cast<std::size_t>(a)];
  const RackId rb = rack_of_[static_cast<std::size_t>(b)];
  if (ra == rb) return 1;
  const auto pod_a = static_cast<std::size_t>(ra) / racks_per_pod_;
  const auto pod_b = static_cast<std::size_t>(rb) / racks_per_pod_;
  // Up through ToR + aggregation and back down: 4 router hops within a pod,
  // one more through the core across pods.
  return pod_a == pod_b ? 4 : 5;
}

std::vector<int> Topology::all_pair_hops() const {
  std::vector<int> out;
  const auto n = rack_of_.size();
  out.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out.push_back(hops(static_cast<NodeId>(i), static_cast<NodeId>(j)));
    }
  }
  return out;
}

}  // namespace dare::net
