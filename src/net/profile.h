// Cluster hardware profiles calibrated to the paper's own measurements
// (Tables I and II; Fig. 1). A profile bundles everything the simulator
// needs to turn "read B bytes from node X on node Y" into a duration:
// per-hop latency, latency jitter, NIC bandwidth distribution, and disk
// read bandwidth distribution.
//
// The headline calibration targets:
//   CCT (dedicated, single rack)    EC2 (virtualized, multi-rack)
//   RTT  min .01 mean .18 max 2.17  RTT  min .02 mean .77 max 75.1   [ms]
//   disk min 145 mean 157.8 max 167 disk min 67.1 mean 141.5 max 358 [MB/s]
//   net  min 115 mean 117.7 max 118 net  min 5.8 mean 73.2 max 110   [MB/s]
// The decisive quantity for DARE's user-metric gains is the network/disk
// bandwidth ratio: 74.6 % on CCT vs 51.75 % on EC2.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "net/topology.h"

namespace dare::net {

/// Latency model parameters; all values in milliseconds.
struct LatencyProfile {
  double per_hop_ms = 0.05;       ///< deterministic cost per router hop
  double base_ms = 0.01;          ///< fixed endpoint processing cost
  double jitter_mu = -3.0;        ///< lognormal jitter (underlying normal mu)
  double jitter_sigma = 1.0;      ///< lognormal jitter sigma
  double spike_probability = 0.0; ///< chance of a scheduling-induced spike
  double spike_min_ms = 10.0;     ///< spike magnitude range (uniform)
  double spike_max_ms = 80.0;
};

/// Bandwidth model parameters; all values in MB/s (1 MB = 2^20 bytes).
struct BandwidthProfile {
  double mean = 117.7;       ///< typical NIC throughput
  double stddev = 0.65;      ///< per-measurement noise
  double floor = 5.0;        ///< hard lower clamp
  double ceiling = 118.0;    ///< hard upper clamp
  double degraded_probability = 0.0;  ///< chance of a badly-shared NIC pair
  double degraded_min = 5.8;          ///< degraded throughput range (uniform)
  double degraded_max = 30.0;
  double cross_pod_penalty = 1.0;     ///< multiplier for >4-hop paths
  /// Rack-uplink capacity shared by all concurrent cross-rack flows
  /// touching a rack ("network fabrics are frequently over-subscribed,
  /// especially across racks" — the paper's ref. [30]). 0 = unlimited
  /// (single-rack clusters have no cross-rack traffic at all).
  double rack_uplink_mbps = 0.0;
};

/// Disk read bandwidth model; values in MB/s.
struct DiskProfile {
  double mean = 157.8;
  double stddev = 8.0;
  double floor = 60.0;
  double ceiling = 167.0;
  double burst_probability = 0.0;  ///< chance of an unshared-host fast read
  double burst_min = 250.0;        ///< burst throughput range (uniform)
  double burst_max = 358.0;
};

/// Full cluster profile: topology shape + all three models.
struct ClusterProfile {
  std::string name = "cct";
  TopologyOptions topology;
  LatencyProfile latency;
  BandwidthProfile bandwidth;
  DiskProfile disk;

  /// Straggler model (virtualized clusters; cf. Zaharia et al., OSDI'08 —
  /// the paper's ref. [26]): this fraction of nodes is persistently slowed
  /// by co-tenants, multiplying every task duration on them. Both presets
  /// default to 0 so the headline experiments stay unperturbed; the
  /// speculation bench turns it on.
  double straggler_fraction = 0.0;
  double straggler_slowdown = 2.5;
};

/// Dedicated 20-node single-rack cluster (Illinois CCT).
ClusterProfile cct_profile(std::size_t nodes = 20);

/// Virtualized EC2-style cluster; node count configurable (the paper uses
/// 20 nodes for the microbenchmarks and 100 for the DARE evaluation).
ClusterProfile ec2_profile(std::size_t nodes = 20);

}  // namespace dare::net
