// The network model: turns (source node, destination node, byte count) into
// transfer durations, with flow-count contention on both endpoints' NICs.
//
// Simplifications (documented in DESIGN.md):
//  * A flow's rate is fixed when it starts: rate = sampled path bandwidth
//    divided by the number of flows then active on the busier endpoint.
//    Flows are not re-rated when later flows start or finish — with map-task
//    reads lasting a second or two, the error is small and the model stays
//    O(1) per transfer.
//  * Latency is added once per transfer (TCP ramp-up and request RTTs are
//    folded into the sampled latency).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/profile.h"
#include "net/topology.h"

namespace dare::net {

class Network {
 public:
  /// `topology` must outlive the network. `rng` is forked internally.
  Network(const ClusterProfile& profile, const Topology& topology, Rng& rng);

  /// One RTT sample between two nodes, in milliseconds (ping).
  double sample_rtt_ms(NodeId a, NodeId b);

  /// One uncontended path bandwidth sample in bytes/sec (iperf-like).
  BytesPerSec sample_path_bandwidth(NodeId src, NodeId dst);

  /// Duration of transferring `bytes` from `src` to `dst` given current
  /// contention. Does NOT register a flow; combine with flow_started /
  /// flow_finished for contention bookkeeping.
  SimDuration transfer_duration(NodeId src, NodeId dst, Bytes bytes);

  /// Contention bookkeeping: a remote read holds one flow on each endpoint
  /// for its duration. Cross-rack flows also occupy the racks' uplinks.
  void flow_started(NodeId src, NodeId dst);
  void flow_finished(NodeId src, NodeId dst);

  /// Active flow count on a node's NIC.
  int active_flows(NodeId node) const;

  /// Active cross-rack flows touching a rack's uplink.
  int active_uplink_flows(RackId rack) const;

  /// Network-fault state (driven by the cluster's NetworkFaultProcess).
  /// A partitioned rack is cut off from every other rack: transfers across
  /// the boundary are impossible and the caller must consult reachable()
  /// before planning one. Degradation limps instead of cutting: cross-rack
  /// transfers touching a degraded uplink keep `bandwidth_cut` of their
  /// rate and see `latency_inflation`× latency. Both apply *after* the
  /// stochastic samplers, so the RNG draw sequence — and therefore every
  /// run with faults disabled — is bit-identical to a build without them.
  void set_rack_partitioned(RackId rack, bool partitioned);
  bool rack_partitioned(RackId rack) const;
  /// Can `a` talk to `b` right now? Same-rack traffic never crosses the
  /// faulted switch; cross-rack traffic requires both endpoint racks
  /// connected.
  bool reachable(NodeId a, NodeId b) const;
  void set_uplink_degraded(RackId rack, bool degraded);
  bool uplink_degraded(RackId rack) const;
  /// Multipliers applied to transfers crossing a degraded uplink.
  void set_degradation_factors(double bandwidth_cut, double latency_inflation);

  const Topology& topology() const { return *topology_; }
  const ClusterProfile& profile() const { return profile_; }

 private:
  ClusterProfile profile_;
  const Topology* topology_;
  Rng rng_;
  std::vector<int> flows_;
  std::vector<int> uplink_flows_;     ///< per rack
  std::vector<char> partitioned_;     ///< per rack
  std::vector<char> degraded_links_;  ///< per rack uplink
  double bandwidth_cut_ = 1.0;
  double latency_inflation_ = 1.0;
};

}  // namespace dare::net
