// swim2trace: convert a SWIM-format workload trace (the format the DARE
// paper's Facebook workloads were published in) to this repository's
// replayable trace format.
//
// Usage:
//   swim2trace input.swim output.trace [first=N] [count=N] [timescale=X]
//              [blocksize=BYTES] [maxblocks=N]
//
// The output can be replayed with examples/facebook_workload load=<file>.
#include <fstream>
#include <iostream>

#include "common/config.h"
#include "workload/swim_import.h"
#include "workload/trace_io.h"
#include "workload/workload_stats.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);
  if (positional.size() != 2) {
    std::cerr << "usage: swim2trace <input.swim> <output.trace> "
                 "[first=N] [count=N] [timescale=X] [blocksize=BYTES] "
                 "[maxblocks=N]\n";
    return 2;
  }

  workload::SwimImportOptions opts;
  opts.first_job = static_cast<std::size_t>(cfg.get_int("first", 0));
  opts.num_jobs = static_cast<std::size_t>(cfg.get_int("count", 0));
  opts.time_scale = cfg.get_double("timescale", 1.0);
  opts.block_size = cfg.get_int("blocksize", opts.block_size);
  opts.max_blocks_per_job =
      static_cast<std::size_t>(cfg.get_int("maxblocks", 512));

  std::ifstream in(positional[0]);
  if (!in) {
    std::cerr << "cannot open " << positional[0] << '\n';
    return 1;
  }
  workload::Workload wl;
  try {
    wl = workload::import_swim(in, opts);
  } catch (const std::exception& e) {
    std::cerr << "import failed: " << e.what() << '\n';
    return 1;
  }

  std::ofstream out(positional[1]);
  if (!out) {
    std::cerr << "cannot open " << positional[1] << " for writing\n";
    return 1;
  }
  workload::write_workload(out, wl);

  const auto stats = workload::characterize(wl);
  std::cout << "Converted " << stats.jobs << " jobs over " << stats.files
            << " distinct input files (" << stats.duration_s
            << " s of arrivals; mean " << stats.mean_maps
            << " maps/job, small-job fraction "
            << stats.small_job_fraction << ").\n"
            << "Replay with: examples/facebook_workload load="
            << positional[1] << '\n';
  return 0;
}
