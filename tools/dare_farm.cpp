// dare_farm: resumable experiment-farm driver over cluster::ExperimentFarm.
//
// Declare a grid as `key=value[,value...]` axes (cluster override keys plus
// workload/jobs/wl_seed), run every combination as shared-nothing workers
// on the thread pool, journal each completion durably, and write merged
// CSV + JSON in grid order. A killed sweep resumes from the journal and
// produces byte-identical merged output to an uninterrupted run.
//
// Usage:
//   dare_farm [config=<file>] [key=value[,value...] ...]
//             [out=<prefix>] [journal=<path>] [threads=<n>]
//             [progress=1] [stop_after=<n>]
//
//   config=<file>    load grid keys from a config file (CLI keys override)
//   out=<prefix>     merged output prefix: <prefix>.csv, <prefix>.json
//                    (default "farm")
//   journal=<path>   completion journal (default "<out>.journal.jsonl";
//                    journal= with an empty value disables resume)
//   threads=<n>      worker threads (default: hardware concurrency)
//   progress=1       live completed/total meter on stderr
//   stop_after=<n>   test hook: hard-exit (as if SIGKILLed) once <n> items
//                    are in the journal — exercises interrupt/resume in CI
//
// Example:
//   dare_farm profile=cct nodes=20 scheduler=fifo,fair jobs=200
//             policy=vanilla,lru,elephant-trap seed=1,2,3
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/farm.h"
#include "common/config.h"

namespace {

const std::vector<std::string> kToolKeys = {"config",   "journal", "out",
                                            "progress", "stop_after",
                                            "threads"};

void print_usage() {
  std::cerr
      << "usage: dare_farm [config=<file>] [key=value[,value...] ...]\n"
         "                 [out=<prefix>] [journal=<path>] [threads=<n>]\n"
         "                 [progress=1] [stop_after=<n>]\n"
         "grid keys: ";
  for (const auto& key : dare::cluster::override_keys()) {
    std::cerr << key << ' ';
  }
  for (const auto& key : dare::cluster::farm_item_keys()) {
    std::cerr << key << ' ';
  }
  std::cerr << "\n(comma-separated values make an axis; the grid is their "
               "cartesian product)\n";
}

/// Write-then-rename like the journal: an interrupted run never leaves a
/// half-written merged output behind.
bool write_atomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dare;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  Config cli = Config::from_args(args, &positional);

  Config cfg;
  try {
    if (cli.contains("config")) {
      cfg = Config::from_file(cli.get_string("config", ""));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  cfg.merge(cli);  // CLI wins over the config file

  // A typo'd knob must fail loudly, not silently sweep the wrong grid.
  std::vector<std::string> unknown = positional;
  for (const auto& key : cfg.keys()) {
    const auto known = [&key](const std::vector<std::string>& keys) {
      return std::find(keys.begin(), keys.end(), key) != keys.end();
    };
    if (known(cluster::override_keys()) || known(cluster::farm_item_keys()) ||
        known(kToolKeys)) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << '\n';
    print_usage();
    return 1;
  }

  const std::string out_prefix = cfg.get_string("out", "farm");
  std::string journal_path = out_prefix + ".journal.jsonl";
  if (cfg.contains("journal")) journal_path = cfg.get_string("journal", "");

  cluster::ExperimentFarm::Options options;
  std::size_t stop_after = 0;
  bool progress_meter = false;
  try {
    options.threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
    options.journal_path = journal_path;
    stop_after = static_cast<std::size_t>(cfg.get_int("stop_after", 0));
    progress_meter = cfg.get_bool("progress", false);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  if (stop_after != 0 || progress_meter) {
    options.progress = [stop_after, progress_meter](std::size_t done,
                                                    std::size_t total) {
      if (progress_meter) {
        std::cerr << "\r[farm " << done << '/' << total << ']'
                  << (done == total ? "\n" : "") << std::flush;
      }
      // Interrupt hook: the item that pushed `done` over the threshold is
      // already journaled, so _Exit here is indistinguishable from a
      // SIGKILL landing between two completions.
      if (stop_after != 0 && done >= stop_after && done < total) {
        std::cerr << "\n[farm] stop_after=" << stop_after
                  << " reached: hard exit (journal keeps " << done
                  << " items)\n";
        std::_Exit(3);
      }
    };
  }

  // Everything that is not a tool key is a grid axis.
  Config grid;
  for (const auto& key : cfg.keys()) {
    if (std::find(kToolKeys.begin(), kToolKeys.end(), key) != kToolKeys.end()) {
      continue;
    }
    grid.set(key, cfg.get_string(key, ""));
  }

  try {
    cluster::ExperimentFarm farm(cluster::expand_grid(grid), options);
    std::cout << "[farm] " << farm.items().size() << " items";
    if (!journal_path.empty()) std::cout << ", journal: " << journal_path;
    std::cout << '\n';

    const auto results = farm.run();
    std::size_t replayed = 0;
    for (const auto& result : results) replayed += result.from_journal ? 1 : 0;

    std::ostringstream csv;
    cluster::ExperimentFarm::write_csv(results, csv);
    std::ostringstream json;
    cluster::ExperimentFarm::write_json(results, json);
    const std::string csv_path = out_prefix + ".csv";
    const std::string json_path = out_prefix + ".json";
    if (!write_atomically(csv_path, csv.str()) ||
        !write_atomically(json_path, json.str())) {
      std::cerr << "error: cannot write merged output under prefix '"
                << out_prefix << "'\n";
      return 2;
    }
    std::cout << "[farm] " << results.size() << " items done (" << replayed
              << " replayed from journal)\n"
              << "[farm] wrote " << csv_path << ", " << json_path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
