#!/usr/bin/env python3
"""dare_lint_ast: type-resolved determinism analysis for DARE via libclang.

The regex pass (tools/dare_lint.py) catches literal spellings; this pass
resolves types and the cross-TU call graph through clang's AST, driven by the
compile_commands.json every build exports. It catches what regexes cannot:
aliases (`using Clock = std::chrono::steady_clock`), `auto`, member typedefs,
and values that flow between translation units.

Rules (shared names mean one justified allow() silences both passes):

  banned-randomness      Variables, calls, and temporaries whose *canonical*
                         type or referenced declaration is a std random
                         engine/distribution/random_device or a wall clock
                         (std::chrono::{system,steady,high_resolution}_clock,
                         time, clock_gettime, gettimeofday), in the
                         determinism directories. Canonicalization sees
                         through `auto` and any chain of typedefs.

  unordered-iteration    Range-for whose range expression's canonical type is
                         a std::unordered_* container, in the determinism
                         directories — regardless of how the container is
                         spelled at the loop (auto&, alias, member of a
                         member, function return value).

  rng-stream-discipline  Every `dare::Rng` constructed in the determinism
                         directories must originate from a fork() call chain
                         (local variables and constructor member-inits are
                         checked). Additionally, an Rng must not be touched —
                         drawn from, forked, or passed mutably — inside an
                         `if` guarded by an enabled-style flag: conditional
                         draws shift every later consumer's stream when the
                         flag flips. Draw unconditionally and discard, or
                         fork last with a justified allow (the documented
                         contract in cluster.cpp).

  fingerprint-taint      A range-for over an unordered container whose body
                         calls (transitively, across TUs) into the metrics
                         digest surface (dare::metrics::fingerprint or any
                         mix/digest/hash helper in dare::metrics) feeds
                         hash-order-dependent values into the run
                         fingerprint. The sorted-copy idiom is naturally
                         clean: the digest loop walks a vector. Suppressed by
                         allow(fingerprint-taint) or — since its
                         justification subsumes this rule — by an existing
                         allow(unordered-iteration).

Suppressions use the shared syntax (see dare_lint.py). Because AST findings
can sit on one line of a multi-line statement, an allow() is honored on the
finding line, in the contiguous comment block above it, or above the first
line of any enclosing statement (so the documented contract block above an
`if` covers the whole guarded statement).

Degradation: when the python clang bindings or a loadable libclang are
absent, the tool prints why and exits 77 (the CTest skip code) — a clear
skip, never a false pass. CI installs pinned LLVM and runs the real thing.

Usage:
  dare_lint_ast.py [--root ROOT] [--build-dir DIR] [--libclang PATH]
                   [--self-test]

Exit status: 0 clean, 1 findings, 2 usage/internal error, 77 skipped
(libclang unavailable).
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import dare_lint  # noqa: E402  (shared suppression machinery + dirs)

EXIT_SKIP = 77

BANNED_NAME_RE = re.compile(
    r"\bstd::(mersenne_twister_engine|linear_congruential_engine|"
    r"subtract_with_carry_engine|discard_block_engine|"
    r"independent_bits_engine|shuffle_order_engine|random_device|"
    r"\w+_distribution)\b"
    r"|\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b")
BANNED_FUNCS = frozenset({
    "rand", "srand", "std::rand", "std::srand",
    "time", "std::time", "clock", "std::clock",
    "clock_gettime", "gettimeofday", "timespec_get", "std::timespec_get",
})
RNG_TYPE_RE = re.compile(r"^(const\s+)?dare::Rng$")
RNG_REF_RE = re.compile(r"\bdare::Rng\b")
UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
SINK_RE = re.compile(r"\b(fingerprint|mix|digest|hash)\w*$")
EXPECT_RE = re.compile(r"//\s*expect\(([\w\s,-]+)\)")


def load_cindex(explicit: str | None):
    """Import clang.cindex and make sure a libclang actually loads.

    Returns (cindex module, None) on success, (None, reason) otherwise.
    """
    try:
        from clang import cindex
    except ImportError:
        return None, "python clang bindings not installed (clang.cindex)"

    candidates = [explicit] if explicit else [None]
    if not explicit:
        import ctypes.util
        found = ctypes.util.find_library("clang")
        if found:
            candidates.append(found)
        for pattern in ("libclang-*.so*", "llvm-*/lib/libclang.so*"):
            for base in (Path("/usr/lib"), Path("/usr/lib/x86_64-linux-gnu"),
                         Path("/usr/local/lib")):
                candidates.extend(str(p) for p in sorted(base.glob(pattern)))

    last_error = "no libclang candidates found"
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex, None
        except Exception as e:  # cindex raises LibclangError subclasses
            last_error = str(e).splitlines()[0] if str(e) else repr(e)
    return None, f"libclang not loadable: {last_error}"


class Analyzer:
    """Walks TUs, emits per-TU findings, and accumulates the cross-TU call
    graph needed for fingerprint-taint (resolved in finish())."""

    FUNC_KINDS = ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
                  "CONVERSION_FUNCTION", "FUNCTION_TEMPLATE")

    def __init__(self, cindex, root: Path, determinism_dirs: list[Path]):
        self.cx = cindex
        self.root = root.resolve()
        self.det_dirs = [d.resolve() for d in determinism_dirs]
        self.index = cindex.Index.create()
        self.findings: dict[tuple[str, int, str], str] = {}
        self.call_graph: dict[str, set[str]] = {}
        self.sinks: set[str] = set()
        # (path, line, stmt_lines, callee USRs) per unordered loop body.
        self.loops: list[tuple[Path, int, tuple[int, ...], set[str]]] = []
        self._file_cache: dict[str, tuple[list[str], set[str]]] = {}
        # filename -> (resolved str, in_root, in_det); resolving per AST node
        # would dominate the runtime on real TUs.
        self._path_cache: dict[str, tuple[str, bool, bool]] = {}
        self.parse_errors: list[str] = []

    # -- path helpers ------------------------------------------------------

    def _under(self, path: Path, bases: list[Path]) -> bool:
        for base in bases:
            try:
                path.relative_to(base)
                return True
            except ValueError:
                continue
        return False

    def _classify(self, filename: str) -> tuple[str, bool, bool]:
        cached = self._path_cache.get(filename)
        if cached is None:
            path = Path(filename).resolve()
            cached = (str(path), self._under(path, [self.root]),
                      self._under(path, self.det_dirs))
            self._path_cache[filename] = cached
        return cached

    # -- suppression (shared semantics with dare_lint.py) ------------------

    def _file_lines(self, path: str) -> tuple[list[str], set[str]]:
        cached = self._file_cache.get(path)
        if cached is None:
            text = Path(path).read_text(encoding="utf-8", errors="replace")
            lines = text.splitlines()
            cached = (lines, dare_lint.file_allow_rules(lines))
            self._file_cache[path] = cached
        return cached

    def _suppressed(self, path: str, line: int, rules: tuple[str, ...],
                    stmt_lines: tuple[int, ...]) -> bool:
        lines, file_allows = self._file_lines(path)
        for rule in rules:
            for probe in {line, *stmt_lines}:
                if dare_lint.suppressed(rule, lines, probe - 1, file_allows):
                    return True
        return False

    def _report(self, cursor, rule: str, message: str,
                stmt_lines: tuple[int, ...],
                also: tuple[str, ...] = ()) -> None:
        loc = cursor.location
        path = self._classify(loc.file.name)[0]
        if self._suppressed(path, loc.line, (rule,) + also, stmt_lines):
            return
        self.findings.setdefault((path, loc.line, rule), message)

    # -- clang helpers -----------------------------------------------------

    def _qualified(self, cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind.name != "TRANSLATION_UNIT":
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _canonical(self, ctype) -> str:
        try:
            return ctype.get_canonical().spelling
        except Exception:
            return ""

    def _is_rng_value(self, ctype) -> bool:
        return bool(RNG_TYPE_RE.match(self._canonical(ctype).strip()))

    def _contains_fork(self, node) -> bool:
        if node.kind.name == "CALL_EXPR" and node.spelling == "fork":
            ref = node.referenced
            if ref is not None and RNG_REF_RE.search(
                    self._canonical(ref.semantic_parent.type)
                    if ref.semantic_parent is not None else ""):
                return True
            if ref is not None and ref.semantic_parent is not None and \
                    ref.semantic_parent.spelling == "Rng":
                return True
        return any(self._contains_fork(c) for c in node.get_children())

    def _mentions_enabled(self, node) -> bool:
        if node.kind.name in ("DECL_REF_EXPR", "MEMBER_REF_EXPR") and \
                "enabl" in node.spelling.lower():
            return True
        return any(self._mentions_enabled(c) for c in node.get_children())

    def _is_sink_name(self, qualified: str) -> bool:
        if not qualified.startswith("dare::metrics::"):
            return False
        return bool(SINK_RE.search(qualified.rsplit("::", 1)[-1]))

    # -- parsing -----------------------------------------------------------

    def parse(self, path: Path, args: list[str]) -> bool:
        try:
            tu = self.index.parse(str(path), args=args)
        except Exception as e:
            self.parse_errors.append(f"{path}: {e}")
            return False
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            self.parse_errors.append(f"{path}: {fatal[0].spelling}")
            return False
        self._walk(tu.cursor, fn=None, guard=0, stmts=(), loops=[])
        return True

    def _walk(self, node, fn: str | None, guard: int,
              stmts: tuple[int, ...], loops: list[set[str]]) -> None:
        kind = node.kind.name
        loc = node.location
        if loc.file is None:
            in_det = False
        else:
            _, in_root, in_det = self._classify(loc.file.name)
            if not in_root:
                return  # prune system headers entirely

        if kind.endswith("_STMT") or kind in self.FUNC_KINDS:
            stmts = stmts + (node.extent.start.line,)

        if kind in self.FUNC_KINDS and node.is_definition():
            fn = node.get_usr()
            self.call_graph.setdefault(fn, set())
            if self._is_sink_name(self._qualified(node)):
                self.sinks.add(fn)

        if kind == "CALL_EXPR":
            ref = node.referenced
            if ref is not None:
                usr = ref.get_usr()
                qualified = self._qualified(ref)
                if fn is not None and usr:
                    self.call_graph.setdefault(fn, set()).add(usr)
                if self._is_sink_name(qualified):
                    self.sinks.add(usr)
                for loop_callees in loops:
                    loop_callees.add(usr)
                if in_det and (qualified in BANNED_FUNCS or
                               BANNED_NAME_RE.search(qualified)):
                    self._report(
                        node, "banned-randomness",
                        f"call to '{qualified}' is banned here; use "
                        "common/rng.h streams and simulation time", stmts)

        if in_det and kind in ("DECL_REF_EXPR", "MEMBER_REF_EXPR"):
            if guard > 0 and self._is_rng_value(node.type):
                self._report(
                    node, "rng-stream-discipline",
                    f"Rng '{node.spelling}' touched under an enabled-style "
                    "guard; conditional draws/forks shift every later "
                    "consumer's stream when the flag flips — draw "
                    "unconditionally and discard, or fork last and justify",
                    stmts)

        if in_det and kind == "VAR_DECL" and self._is_rng_value(node.type):
            if not self._contains_fork(node):
                self._report(
                    node, "rng-stream-discipline",
                    f"Rng '{node.spelling}' is not derived from a fork() "
                    "chain; construct it as parent.fork() (or justify a "
                    "root stream)", stmts)

        if kind == "CONSTRUCTOR" and node.is_definition() and in_det:
            kids = list(node.get_children())
            for i, kid in enumerate(kids):
                if kid.kind.name != "MEMBER_REF" or kid.referenced is None:
                    continue
                if not self._is_rng_value(kid.referenced.type):
                    continue
                init = kids[i + 1] if i + 1 < len(kids) else None
                if init is None or not self._contains_fork(init):
                    self._report(
                        kid, "rng-stream-discipline",
                        f"member '{kid.spelling}' is not initialized from a "
                        "fork() chain; fork from the parent stream (or "
                        "justify a root stream)", stmts)

        if kind == "VAR_DECL" and in_det and not self._is_rng_value(node.type):
            canonical = self._canonical(node.type)
            if BANNED_NAME_RE.search(canonical):
                self._report(
                    node, "banned-randomness",
                    f"'{node.spelling}' has banned canonical type "
                    f"'{canonical}'; use common/rng.h streams and "
                    "simulation time", stmts)

        if kind == "CXX_FOR_RANGE_STMT":
            kids = list(node.get_children())
            body = kids[-1] if kids else None
            unordered = None
            for kid in kids[:-1]:
                if kid.kind.is_expression():
                    canonical = self._canonical(kid.type)
                    if UNORDERED_RE.search(canonical):
                        unordered = canonical
                        break
            if unordered is not None:
                if in_det:
                    self._report(
                        node, "unordered-iteration",
                        "range-for over a container whose canonical type is "
                        f"'{unordered}' has implementation-defined order; "
                        "sort first or justify", stmts)
                if loc.file is not None:
                    callees: set[str] = set()
                    self.loops.append(
                        (Path(self._classify(loc.file.name)[0]), loc.line,
                         stmts, callees))
                    if body is not None:
                        self._walk(body, fn, guard, stmts, loops + [callees])
                    for kid in kids[:-1]:
                        self._walk(kid, fn, guard, stmts, loops)
                    return

        if kind == "IF_STMT":
            kids = list(node.get_children())
            cond = kids[0] if kids else None
            if cond is not None and self._mentions_enabled(cond):
                for kid in kids:
                    self._walk(kid, fn, guard + 1, stmts, loops)
                return

        for kid in node.get_children():
            self._walk(kid, fn, guard, stmts, loops)

    # -- cross-TU resolution ----------------------------------------------

    def finish(self) -> list[str]:
        reached = set(self.sinks)
        changed = True
        while changed:
            changed = False
            for caller, callees in self.call_graph.items():
                if caller not in reached and callees & reached:
                    reached.add(caller)
                    changed = True
        for path, line, stmts, callees in self.loops:
            if not callees & reached:
                continue
            if self._suppressed(str(path), line,
                                ("fingerprint-taint", "unordered-iteration"),
                                stmts):
                continue
            self.findings.setdefault(
                (str(path), line, "fingerprint-taint"),
                "unordered-container iteration feeds the metrics digest "
                "surface (dare::metrics fingerprint/mix); iterate a sorted "
                "copy or justify order-independence")
        out = []
        for (path, line, rule), message in sorted(self.findings.items()):
            out.append(f"{path}:{line}: [{rule}] {message}")
        return out


# --------------------------------------------------------------------------
# compile_commands.json plumbing
# --------------------------------------------------------------------------

def tu_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        tokens = list(entry["arguments"])[1:]
    else:
        tokens = shlex.split(entry["command"])[1:]
    args: list[str] = []
    skip = False
    for tok in tokens:
        if skip:
            skip = False
            continue
        if tok in ("-c",):
            continue
        if tok == "-o":
            skip = True
            continue
        if tok.endswith((".cpp", ".cc", ".cxx", ".o")):
            continue
        args.append(tok)
    directory = entry.get("directory")
    if directory:
        fixed = []
        expect_path = False
        for tok in args:
            if expect_path:
                fixed.append(str((Path(directory) / tok).resolve()))
                expect_path = False
            elif tok in ("-I", "-isystem"):
                fixed.append(tok)
                expect_path = True
            elif tok.startswith("-I") and not Path(tok[2:]).is_absolute():
                fixed.append("-I" + str((Path(directory) / tok[2:]).resolve()))
            else:
                fixed.append(tok)
        args = fixed
    return args


def find_build_dir(root: Path, explicit: Path | None) -> Path | None:
    if explicit is not None:
        return explicit if (explicit / "compile_commands.json").is_file() \
            else None
    for name in ("build", "build-analyze", "build-debug", "build-asan",
                 "build-tsan"):
        cand = root / name
        if (cand / "compile_commands.json").is_file():
            return cand
    return None


def lint_repo(cindex, root: Path, build_dir: Path) -> int:
    entries = json.loads(
        (build_dir / "compile_commands.json").read_text(encoding="utf-8"))
    det_dirs = [root / d for d in dare_lint.DETERMINISM_DIRS]
    # Single-file scopes ride along: _under() treats an exact file path as
    # its own base, so the per-file determinism list needs no special case.
    det_dirs += [root / f for f in dare_lint.DETERMINISM_FILES]
    analyzer = Analyzer(cindex, root, det_dirs)
    parsed = 0
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = (Path(entry.get("directory", ".")) / src).resolve()
        try:
            src.relative_to(root)
        except ValueError:
            continue
        try:
            src.relative_to(root / "tests")
            continue  # test TUs add parse time, not determinism surface
        except ValueError:
            pass
        if analyzer.parse(src, tu_args(entry)):
            parsed += 1
    for err in analyzer.parse_errors:
        print(f"dare_lint_ast: parse error: {err}", file=sys.stderr)
    if parsed == 0:
        print("dare_lint_ast: no translation units parsed", file=sys.stderr)
        return 2
    findings = analyzer.finish()
    for finding in findings:
        print(finding)
    if analyzer.parse_errors:
        return 2
    if findings:
        print(f"dare_lint_ast: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"dare_lint_ast: clean ({parsed} TUs)")
    return 0


# --------------------------------------------------------------------------
# Self-test: a fixture corpus under tools/lint_fixtures/ with `// expect(...)`
# markers on the lines that must fire (comma-separated when several rules
# fire on one line). Suppressed and clean snippets expect nothing.
# --------------------------------------------------------------------------

def collect_expectations(fixture_dir: Path) -> set[tuple[str, int, str]]:
    expected = set()
    for path in sorted(fixture_dir.glob("*.cpp")):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((str(path.resolve()), lineno, rule.strip()))
    return expected


def self_test(cindex) -> int:
    fixture_dir = Path(__file__).resolve().parent / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"dare_lint_ast: missing fixtures at {fixture_dir}",
              file=sys.stderr)
        return 2
    analyzer = Analyzer(cindex, fixture_dir, [fixture_dir])
    args = ["-std=c++20", "-I", str(fixture_dir)]
    for path in sorted(fixture_dir.glob("*.cpp")):
        analyzer.parse(path, args)
    for err in analyzer.parse_errors:
        print(f"dare_lint_ast self-test: parse error: {err}", file=sys.stderr)
    if analyzer.parse_errors:
        return 1
    got = set()
    for finding in analyzer.finish():
        m = re.match(r"(.+?):(\d+): \[([\w-]+)\]", finding)
        if m:
            got.add((m.group(1), int(m.group(2)), m.group(3)))
    expected = collect_expectations(fixture_dir)
    if not expected:
        print("dare_lint_ast self-test: no expectations found (corpus "
              "missing markers?)", file=sys.stderr)
        return 1
    ok = True
    for miss in sorted(expected - got):
        print(f"dare_lint_ast self-test: MISSED {miss[0]}:{miss[1]} "
              f"[{miss[2]}]", file=sys.stderr)
        ok = False
    for spur in sorted(got - expected):
        print(f"dare_lint_ast self-test: SPURIOUS {spur[0]}:{spur[1]} "
              f"[{spur[2]}]", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print(f"dare_lint_ast self-test: all checks passed "
          f"({len(expected)} expected findings matched)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: this script's parent's "
                             "parent)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(default: autodetect build*/)")
    parser.add_argument("--libclang", default=None,
                        help="explicit libclang shared object to load")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer against tools/lint_fixtures/")
    args = parser.parse_args()

    cindex, reason = load_cindex(args.libclang)
    if cindex is None:
        print(f"dare_lint_ast: SKIPPED — {reason}", file=sys.stderr)
        return EXIT_SKIP

    if args.self_test:
        return self_test(cindex)

    root = (args.root or Path(__file__).resolve().parent.parent).resolve()
    build_dir = find_build_dir(root, args.build_dir)
    if build_dir is None:
        print("dare_lint_ast: no compile_commands.json found (configure "
              "with CMake first; exports are on by default)", file=sys.stderr)
        return 2
    return lint_repo(cindex, root, build_dir)


if __name__ == "__main__":
    sys.setrecursionlimit(10000)
    sys.exit(main())
