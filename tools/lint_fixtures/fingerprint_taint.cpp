// Fixture: fingerprint-taint. A range-for over an unordered container whose
// body reaches the dare::metrics digest surface — directly or through local
// helpers resolved across the call graph — feeds hash-order-dependent values
// into the run fingerprint. The sorted-copy idiom is naturally clean.
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fixture_support.h"

namespace dare {

// Reaches the digest surface only through this helper: the finding depends
// on call-graph reachability, not on a name match at the loop.
unsigned long long fold(unsigned long long h, int v) {
  return metrics::mix_value(h, static_cast<double>(v));
}

unsigned long long digest_direct(const std::unordered_map<int, int>& m) {
  unsigned long long h = 0;
  for (const auto& [k, v] : m) {  // expect(fingerprint-taint, unordered-iteration)
    h = fold(h, v);
  }
  return h;
}

unsigned long long digest_sorted(const std::unordered_map<int, int>& m) {
  std::vector<std::pair<int, int>> items(m.begin(), m.end());
  std::sort(items.begin(), items.end());
  unsigned long long h = 0;
  for (const auto& p : items) {
    h = fold(h, p.second);
  }
  return h;
}

unsigned long long digest_justified(const std::unordered_map<int, int>& m) {
  unsigned long long h = 0;
  // Mixing here is commutative, so visit order cannot reach the digest.
  // dare-lint: allow(fingerprint-taint)
  // dare-lint: allow(unordered-iteration)
  for (const auto& [k, v] : m) {
    h += fold(0, v);
  }
  return h;
}

int sum_values(const std::unordered_map<int, int>& m) {
  int n = 0;
  for (const auto& [k, v] : m) {  // expect(unordered-iteration)
    n += v;
  }
  return n;
}

}  // namespace dare
