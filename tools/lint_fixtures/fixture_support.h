// Minimal mocks mirroring the real qualified names the AST analyzer
// resolves: dare::Rng and the dare::metrics digest surface. Fixtures include
// this instead of repo headers so the corpus parses standalone with just
// `-std=c++20 -I <this dir>`.
#pragma once

namespace dare {

class Rng {
 public:
  explicit Rng(unsigned long long seed = 1);
  unsigned long long next();
  double uniform();
  bool bernoulli(double p);
  Rng fork();
};

namespace metrics {

struct RunResult {
  double makespan;
};

unsigned long long fingerprint(const RunResult& result);
unsigned long long mix_value(unsigned long long h, double v);

}  // namespace metrics
}  // namespace dare
