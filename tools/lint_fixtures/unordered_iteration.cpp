// Fixture: unordered-iteration, type-resolved. The container type is hidden
// behind an alias and a member — the regex pass cannot connect the range-for
// to the unordered declaration; canonical-type resolution can.
#include <map>
#include <unordered_map>
#include <vector>

namespace fx {

using NodeIndex = std::unordered_map<int, std::vector<int>>;

struct Catalog {
  NodeIndex by_node_;
  std::map<int, int> ordered_;

  int total_unordered() const {
    int sum = 0;
    for (const auto& [node, files] : by_node_) {  // expect(unordered-iteration)
      sum += static_cast<int>(files.size());
    }
    return sum;
  }

  int total_justified() const {
    int sum = 0;
    // Sum is commutative; hash order cannot reach the result.
    // dare-lint: allow(unordered-iteration)
    for (const auto& [node, files] : by_node_) {
      sum += static_cast<int>(files.size());
    }
    return sum;
  }

  int total_ordered() const {
    int sum = 0;
    for (const auto& [key, value] : ordered_) {
      sum += value + key;
    }
    return sum;
  }
};

}  // namespace fx
