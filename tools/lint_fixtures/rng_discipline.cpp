// Fixture: rng-stream-discipline. Streams must originate from fork() (local
// variables and constructor member-inits are checked), and an Rng must never
// be touched under an enabled-style guard — conditional draws shift every
// later consumer's stream when the flag flips.
#include "fixture_support.h"

namespace dare {

struct Component {
  Component(Rng& parent, bool enabled)
      : rng_(parent.fork()), enabled_(enabled) {}

  void step() {
    // Unconditional draw: the stream position is flag-independent.
    const double draw = rng_.uniform();
    if (enabled_) {
      consume(draw);
    }
  }

  void bad_step() {
    if (enabled_) {
      consume(rng_.uniform());  // expect(rng-stream-discipline)
    }
  }

  void consume(double value);

  Rng rng_;
  bool enabled_;
};

struct BadComponent {
  explicit BadComponent(unsigned long long seed)
      : rng_(seed) {}  // expect(rng-stream-discipline)
  Rng rng_;
};

void streams(Rng& parent) {
  Rng child = parent.fork();
  Rng reseeded(1234);  // expect(rng-stream-discipline)
  // Root stream of this fixture translation unit, seeded exactly once.
  // dare-lint: allow(rng-stream-discipline)
  Rng root(99);
  (void)child;
  (void)reseeded;
  (void)root;
}

}  // namespace dare
