// Fixture: banned-randomness, type-resolved. Every positive case here is
// invisible to the regex pass — the banned name never appears at the use
// site; only canonical-type / referenced-decl resolution sees it.
#include <chrono>
#include <ctime>
#include <random>
#include <vector>

namespace fx {

using Clock = std::chrono::steady_clock;

namespace wrapped {
using Engine = std::mt19937;
using Dist = std::uniform_int_distribution<int>;
}  // namespace wrapped

void positives() {
  auto now = Clock::now();       // expect(banned-randomness)
  wrapped::Engine gen(42);       // expect(banned-randomness)
  wrapped::Dist die(1, 6);       // expect(banned-randomness)
  auto stamp = std::time(nullptr);  // expect(banned-randomness)
  (void)now;
  (void)gen;
  (void)die;
  (void)stamp;
}

void suppressed() {
  // CPU-cost attribution needs a real clock; never used as an event time.
  // dare-lint: allow(banned-randomness)
  auto t0 = Clock::now();
  (void)t0;
}

int clean() {
  std::vector<int> values{3, 1, 2};
  int sum = 0;
  for (int v : values) sum += v;
  return sum;
}

}  // namespace fx
