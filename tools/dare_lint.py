#!/usr/bin/env python3
"""dare_lint: repo-specific determinism and hygiene linter for DARE.

The simulator's headline claim is bit-for-bit reproducibility of every run
(see tests/test_determinism.cpp for the dynamic check). This tool statically
bans the constructs that historically break that claim, at regex/token
level so it runs in milliseconds with no compiler dependency:

  banned-randomness    std::rand / srand / std::random_device /
                       time(nullptr) / std::time / system_clock /
                       steady_clock / high_resolution_clock /
                       clock_gettime / gettimeofday / std::mt19937 /
                       std::*_distribution inside src/sim, src/core,
                       src/sched, src/storage, src/faults, src/cluster,
                       src/obs. All randomness must flow
                       through common/rng.h (forked xoshiro streams); all
                       time — including trace-event timestamps — must be
                       simulation time (common/types.h). The only sanctioned
                       real clock is PhaseProfiler::process_cpu_ns (CPU cost
                       attribution, never an event timestamp), which carries
                       an explicit allow().

  unordered-iteration  Range-for over a variable declared as
                       std::unordered_map/set/multimap/multiset in the same
                       file or its paired header, in those same directories.
                       Hash-map iteration order is implementation-defined,
                       so anything it feeds becomes platform-dependent.
                       Either iterate a sorted copy or suppress with a
                       justification that the result is order-independent.

  no-float             `float` in src/metrics: metric accumulation must use
                       double (float loses integer exactness above 2^24 and
                       makes digests platform-sensitive via excess
                       precision).

  pragma-once          Every .h under src/ must contain `#pragma once`.

  suppression-hygiene  Every suppression — `// dare-lint: allow(...)`,
                       `// dare-lint: allow-file(...)`, `// NOLINT(...)`,
                       `// NOLINTNEXTLINE(...)`, and the
                       DARE_NO_THREAD_SAFETY_ANALYSIS opt-out — must carry a
                       justification: explanatory text on the same line or a
                       non-directive `//` comment line in the contiguous
                       comment block directly above. A bare suppression hides
                       a finding without recording why that is safe. Applies
                       across src/, tests/, bench/, examples/, tools/.

Suppressions:
  // dare-lint: allow(<rule>)        on the offending line or the line above
  // dare-lint: allow-file(<rule>)   anywhere: suppresses for the whole file

The AST companion (tools/dare_lint_ast.py) reuses the same rule names and
suppression syntax for its type-resolved variants, so one justified allow()
silences both passes.

Usage:
  dare_lint.py [--root REPO_ROOT] [--self-test]

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories (relative to the repo root) where determinism rules apply.
DETERMINISM_DIRS = ("src/sim", "src/core", "src/sched", "src/storage",
                    "src/faults", "src/cluster", "src/obs", "src/metrics",
                    "src/net", "src/workload", "src/analysis")
# Individual files that also get the determinism rules. src/common as a
# whole is exempt (it implements the RNG the rules funnel everything into),
# but these files back fingerprint-bearing containers on the simulation hot
# path, so unordered-iteration and randomness bans apply to them verbatim.
DETERMINISM_FILES = ("src/common/arena.h",)
NO_FLOAT_DIRS = ("src/metrics",)
# Directories where suppression-hygiene applies (recursively).
HYGIENE_DIRS = ("src", "tests", "bench", "examples", "tools")

BANNED_RANDOMNESS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\btime\s*\(\s*nullptr\s*\)|\bstd::time\s*\("),
     "wall-clock time()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bclock_gettime\s*\(|\bgettimeofday\s*\("),
     "wall/CPU clock (clock_gettime/gettimeofday)"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd::(uniform_int|uniform_real|normal|bernoulli|"
                r"exponential|poisson|geometric)_distribution\b"),
     "std:: distribution"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s+(\w+)\s*[;={]")
RANGE_FOR = re.compile(r"\bfor\s*\([^;:)]*:\s*([^)]*)\)")
FLOAT_TOKEN = re.compile(r"\bfloat\b")
ALLOW_LINE = re.compile(r"//\s*dare-lint:\s*allow\(([\w-]+)\)")
ALLOW_FILE = re.compile(r"//\s*dare-lint:\s*allow-file\(([\w-]+)\)")
NOLINT_DIRECTIVE = re.compile(
    r"\bNOLINT(?:NEXTLINE|BEGIN|END)?\b(?:\(([^)]*)\))?")
TSA_OPTOUT = re.compile(r"\bDARE_NO_THREAD_SAFETY_ANALYSIS\b")

STRING_OR_CHAR = re.compile(r'"(?:[^"\\]|\\.)*"|' r"'(?:[^'\\]|\\.)'")
LINE_COMMENT = re.compile(r"//.*$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str) -> str:
    """Remove string/char literals and // comments for token scanning."""
    line = STRING_OR_CHAR.sub('""', line)
    return LINE_COMMENT.sub("", line)


def strip_block_comments(text: str) -> str:
    """Blank out /* ... */ runs, preserving line structure."""
    out = []
    in_comment = False
    i = 0
    while i < len(text):
        if not in_comment and text.startswith("/*", i):
            in_comment = True
            i += 2
        elif in_comment and text.startswith("*/", i):
            in_comment = False
            i += 2
        else:
            out.append(text[i] if text[i] == "\n" or not in_comment else " ")
            i += 1
    return "".join(out)


def suppressed(rule: str, lines: list[str], idx: int,
               file_allows: set[str]) -> bool:
    """Same-line suppression, or one anywhere in the contiguous run of
    comment-only lines directly above the offending line."""
    if rule in file_allows:
        return True
    if idx < len(lines):
        m = ALLOW_LINE.search(lines[idx])
        if m and m.group(1) == rule:
            return True
    probe = idx - 1
    while probe >= 0 and lines[probe].lstrip().startswith("//"):
        m = ALLOW_LINE.search(lines[probe])
        if m and m.group(1) == rule:
            return True
        probe -= 1
    return False


def file_allow_rules(lines: list[str]) -> set[str]:
    allows = set()
    for line in lines:
        m = ALLOW_FILE.search(line)
        if m:
            allows.add(m.group(1))
    return allows


def paired_header_names(path: Path) -> set[str]:
    """Unordered-container member names declared in the .cpp's header."""
    if path.suffix != ".cpp":
        return set()
    header = path.with_suffix(".h")
    if not header.is_file():
        return set()
    return unordered_names(strip_block_comments(
        header.read_text(encoding="utf-8", errors="replace")))


def unordered_names(text: str) -> set[str]:
    names = set()
    for line in text.splitlines():
        code = strip_code(line)
        for m in UNORDERED_DECL.finditer(code):
            names.add(m.group(1))
    return names


def check_determinism_file(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    clean_lines = strip_block_comments(text).splitlines()
    file_allows = file_allow_rules(raw_lines)

    local_unordered = unordered_names(strip_block_comments(text))
    local_unordered |= paired_header_names(path)

    for idx, line in enumerate(clean_lines):
        code = strip_code(line)
        lineno = idx + 1
        for pattern, what in BANNED_RANDOMNESS:
            if pattern.search(code) and not suppressed(
                    "banned-randomness", raw_lines, idx, file_allows):
                findings.append(Finding(
                    path, lineno, "banned-randomness",
                    f"{what} is banned here; use common/rng.h streams and "
                    "simulation time"))
        m = RANGE_FOR.search(code)
        if m:
            seq_tokens = set(re.findall(r"\b\w+\b", m.group(1)))
            hits = seq_tokens & local_unordered
            if hits and not suppressed(
                    "unordered-iteration", raw_lines, idx, file_allows):
                findings.append(Finding(
                    path, lineno, "unordered-iteration",
                    f"range-for over unordered container '{sorted(hits)[0]}' "
                    "has implementation-defined order; sort first or justify "
                    "with // dare-lint: allow(unordered-iteration)"))
    return findings


def check_no_float(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    file_allows = file_allow_rules(raw_lines)
    for idx, line in enumerate(strip_block_comments(text).splitlines()):
        code = strip_code(line)
        if FLOAT_TOKEN.search(code) and not suppressed(
                "no-float", raw_lines, idx, file_allows):
            findings.append(Finding(
                path, idx + 1, "no-float",
                "float in metrics code; accumulate in double"))
    return findings


# --------------------------------------------------------------------------
# suppression-hygiene: a suppression with no recorded reason is a latent bug
# report nobody can audit. "Justified" means the directive line's comment has
# text beyond the directive itself, or a non-directive comment line exists in
# the contiguous run of // lines directly above.
# --------------------------------------------------------------------------

def _comment_part(line: str) -> str:
    """The trailing // comment of a line (string literals masked first)."""
    no_strings = STRING_OR_CHAR.sub('""', line)
    m = re.search(r"//.*$", no_strings)
    return m.group(0) if m else ""


def _residual_comment_text(comment: str) -> str:
    """Comment text left once suppression directives and filler are removed."""
    s = ALLOW_LINE.sub("", comment)
    s = ALLOW_FILE.sub("", s)
    s = NOLINT_DIRECTIVE.sub("", s)
    s = s.replace("dare-lint:", "")
    return s.strip("/ \t*-:;.")


def _has_justification(raw_lines: list[str], idx: int) -> bool:
    if _residual_comment_text(_comment_part(raw_lines[idx])):
        return True
    probe = idx - 1
    while probe >= 0 and raw_lines[probe].lstrip().startswith("//"):
        if _residual_comment_text(raw_lines[probe].strip()):
            return True
        probe -= 1
    return False


def check_suppression_hygiene(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    for idx, line in enumerate(raw_lines):
        if line.lstrip().startswith("#"):
            continue  # preprocessor lines define the macros, not suppressions
        comment = _comment_part(line)
        directive = None
        if ALLOW_LINE.search(comment) or ALLOW_FILE.search(comment):
            directive = "dare-lint allow()"
        elif NOLINT_DIRECTIVE.search(comment):
            directive = "NOLINT"
        elif TSA_OPTOUT.search(strip_code(line)):
            directive = "DARE_NO_THREAD_SAFETY_ANALYSIS"
        if directive and not _has_justification(raw_lines, idx):
            findings.append(Finding(
                path, idx + 1, "suppression-hygiene",
                f"{directive} suppression lacks a justification; add "
                "explanatory text on the line or in the comment block above"))
    return findings


def check_pragma_once(path: Path, text: str) -> list[Finding]:
    if "#pragma once" in text:
        return []
    raw_lines = text.splitlines()
    if "pragma-once" in file_allow_rules(raw_lines):
        return []
    return [Finding(path, 1, "pragma-once", "header lacks #pragma once")]


def lint_repo(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    src = root / "src"
    if not src.is_dir():
        raise SystemExit(f"dare_lint: no src/ under {root}")

    for rel in DETERMINISM_DIRS:
        for path in sorted((root / rel).glob("*.h")) + \
                sorted((root / rel).glob("*.cpp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(check_determinism_file(path, text))

    for rel in DETERMINISM_FILES:
        path = root / rel
        if path.is_file():
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(check_determinism_file(path, text))

    for rel in NO_FLOAT_DIRS:
        for path in sorted((root / rel).glob("*.h")) + \
                sorted((root / rel).glob("*.cpp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(check_no_float(path, text))

    for path in sorted(src.rglob("*.h")):
        text = path.read_text(encoding="utf-8", errors="replace")
        findings.extend(check_pragma_once(path, text))

    for rel in HYGIENE_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.h")) + sorted(base.rglob("*.cpp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(check_suppression_hygiene(path, text))

    return findings


# --------------------------------------------------------------------------
# Self-test: fixture snippets covering every rule, both firing and
# suppressed. Run via `dare_lint.py --self-test` (a CTest entry).
# --------------------------------------------------------------------------

def _st_determinism(name: str, text: str) -> list[Finding]:
    return check_determinism_file(Path(name), text)


def self_test() -> int:
    failures = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    f = _st_determinism("a.cpp", "int x = std::rand();\n")
    expect(len(f) == 1 and f[0].rule == "banned-randomness",
           "std::rand not flagged")

    f = _st_determinism("a.cpp", "auto t = time(nullptr);\n")
    expect(len(f) == 1, "time(nullptr) not flagged")

    f = _st_determinism(
        "a.cpp", "auto n = std::chrono::system_clock::now();\n")
    expect(len(f) == 1, "system_clock not flagged")

    f = _st_determinism("a.cpp", "std::mt19937 gen(42);\n")
    expect(len(f) == 1, "mt19937 not flagged")

    f = _st_determinism("a.cpp", "clock_gettime(CLOCK_MONOTONIC, &ts);\n")
    expect(len(f) == 1 and f[0].rule == "banned-randomness",
           "clock_gettime not flagged")

    f = _st_determinism(
        "a.cpp",
        "// dare-lint: allow(banned-randomness)\n"
        "clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);\n")
    expect(not f, "clock_gettime suppression ignored")

    f = _st_determinism(
        "a.cpp",
        "// dare-lint: allow(banned-randomness)\nstd::mt19937 gen(42);\n")
    expect(not f, "line-above suppression ignored")

    f = _st_determinism(
        "a.cpp",
        "std::mt19937 g;  // dare-lint: allow(banned-randomness)\n")
    expect(not f, "same-line suppression ignored")

    f = _st_determinism("a.cpp", "// in a comment: std::rand()\n")
    expect(not f, "comment mention flagged")

    f = _st_determinism(
        "a.cpp", 'auto s = std::string("std::rand system_clock");\n')
    expect(not f, "string-literal mention flagged")

    f = _st_determinism(
        "a.cpp",
        "std::unordered_map<int, int> counts_;\n"
        "void f() { for (const auto& [k, v] : counts_) use(k, v); }\n")
    expect(len(f) == 1 and f[0].rule == "unordered-iteration",
           "unordered range-for not flagged")

    f = _st_determinism(
        "a.cpp",
        "std::unordered_map<int, int> counts_;\n"
        "// dare-lint: allow(unordered-iteration) -- order-independent sum\n"
        "void f() { for (const auto& [k, v] : counts_) total += v; }\n")
    expect(not f, "unordered-iteration suppression ignored")

    f = _st_determinism(
        "a.cpp",
        "std::vector<int> items_;\n"
        "void f() { for (int i : items_) use(i); }\n")
    expect(not f, "vector range-for wrongly flagged")

    f = _st_determinism(
        "a.cpp",
        "// dare-lint: allow-file(banned-randomness)\n"
        "std::mt19937 a;\nstd::mt19937 b;\n")
    expect(not f, "allow-file suppression ignored")

    f = check_no_float(Path("m.cpp"), "float total = 0;\n")
    expect(len(f) == 1 and f[0].rule == "no-float", "float not flagged")

    f = check_no_float(Path("m.cpp"), "double total = 0;  // not float\n")
    expect(not f, "double or comment wrongly flagged")

    f = check_pragma_once(Path("h.h"), "#pragma once\nstruct S {};\n")
    expect(not f, "pragma once wrongly flagged")

    f = check_pragma_once(Path("h.h"), "struct S {};\n")
    expect(len(f) == 1 and f[0].rule == "pragma-once",
           "missing pragma once not flagged")

    f = check_suppression_hygiene(
        Path("s.cpp"), "int x = g();  // dare-lint: allow(no-float)\n")
    expect(len(f) == 1 and f[0].rule == "suppression-hygiene",
           "bare allow() not flagged")

    f = check_suppression_hygiene(
        Path("s.cpp"),
        "int x = g();  // dare-lint: allow(no-float) -- trace format is f32\n")
    expect(not f, "same-line justified allow() flagged")

    f = check_suppression_hygiene(
        Path("s.cpp"),
        "// CPU clock attributes cost, never an event timestamp.\n"
        "// dare-lint: allow(banned-randomness)\n"
        "clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);\n")
    expect(not f, "block-above justified allow() flagged")

    f = check_suppression_hygiene(
        Path("s.cpp"),
        "operator T() const { return v; }  // NOLINT(google-explicit)\n")
    expect(len(f) == 1 and f[0].rule == "suppression-hygiene",
           "bare NOLINT not flagged")

    f = check_suppression_hygiene(
        Path("s.cpp"),
        "// Implicit by design: mirrors std::function's converting ctor.\n"
        "operator T() const { return v; }  // NOLINT(google-explicit)\n")
    expect(not f, "justified NOLINT flagged")

    f = check_suppression_hygiene(
        Path("s.h"), "void lock() DARE_NO_THREAD_SAFETY_ANALYSIS {}\n")
    expect(len(f) == 1, "bare DARE_NO_THREAD_SAFETY_ANALYSIS not flagged")

    f = check_suppression_hygiene(
        Path("s.h"),
        "// Analysis off: cv wait relocks via BasicLockable, not RAII.\n"
        "void lock() DARE_NO_THREAD_SAFETY_ANALYSIS {}\n")
    expect(not f, "justified DARE_NO_THREAD_SAFETY_ANALYSIS flagged")

    f = check_suppression_hygiene(
        Path("s.h"),
        "#define DARE_NO_THREAD_SAFETY_ANALYSIS __attribute__((x))\n")
    expect(not f, "macro definition wrongly flagged as suppression")

    if failures:
        for what in failures:
            print(f"dare_lint self-test FAILED: {what}", file=sys.stderr)
        return 1
    print("dare_lint self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: this script's parent's "
                             "parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own fixture tests")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or Path(__file__).resolve().parent.parent
    findings = lint_repo(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"dare_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("dare_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
