#!/usr/bin/env python3
"""Compare a fresh bench_sched_e2e JSON against the committed perf baseline.

Two checks, in order of severity:

  1. Fingerprints (hard fail, no tolerance). Every configuration's
     metrics::fingerprint must equal the committed baseline's, and the
     fresh run's own legacy/indexed A/B must agree (fingerprint_match).
     A mismatch means simulation *behavior* changed — e.g. an
     "observability" hook that consumed an RNG draw or reordered a float
     sum — which silently invalidates every recorded figure.

  2. CPU time (tolerance, default 5%). The summed indexed_ms across all
     configurations must not exceed the baseline's sum by more than
     --cpu-tolerance. The sum (not per-row deltas) is compared because
     individual rows are noisy on shared runners while the aggregate is
     stable; getting faster never fails.

Rows are keyed by (profile, scheduler, policy); scale fields (nodes, jobs)
must match the baseline exactly, otherwise neither fingerprints nor timings
are comparable and the script refuses to judge.

Usage:
  python3 tools/check_bench_baseline.py \
      --baseline BENCH_PR3.json --fresh build/BENCH_FRESH.json \
      [--cpu-tolerance 0.05]

Exit codes: 0 ok, 1 check failed, 2 inputs unusable.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def key(row: dict) -> tuple:
    return (row["profile"], row["scheduler"], row["policy"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_PR3.json",
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced bench_sched_e2e JSON")
    parser.add_argument("--cpu-tolerance", type=float, default=0.05,
                        help="allowed relative increase of summed indexed_ms "
                             "(default: %(default)s)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    base_rows = {key(r): r for r in baseline.get("results", [])}
    fresh_rows = {key(r): r for r in fresh.get("results", [])}
    if not base_rows:
        print(f"error: {args.baseline} has no results", file=sys.stderr)
        return 2
    if baseline.get("mode") != fresh.get("mode"):
        print(f"error: mode mismatch (baseline={baseline.get('mode')!r}, "
              f"fresh={fresh.get('mode')!r}): runs are not comparable",
              file=sys.stderr)
        return 2

    failures = []
    for k, base in sorted(base_rows.items()):
        row = fresh_rows.get(k)
        label = "/".join(k)
        if row is None:
            failures.append(f"{label}: missing from fresh run")
            continue
        for scale in ("nodes", "jobs"):
            if row[scale] != base[scale]:
                print(f"error: {label}: {scale} differs "
                      f"(baseline={base[scale]}, fresh={row[scale]}): "
                      f"runs are not comparable", file=sys.stderr)
                return 2
        if not row.get("fingerprint_match", False):
            failures.append(f"{label}: fresh legacy/indexed fingerprints "
                            f"diverged")
        if row["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"{label}: fingerprint {row['fingerprint']} != baseline "
                f"{base['fingerprint']} (simulation behavior changed)")

    extra = sorted(set(fresh_rows) - set(base_rows))
    for k in extra:
        print(f"note: {'/'.join(k)}: new configuration not in baseline "
              f"(not judged)")

    base_ms = sum(r["indexed_ms"] for r in base_rows.values())
    fresh_ms = sum(fresh_rows[k]["indexed_ms"]
                   for k in base_rows if k in fresh_rows)
    ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
    budget = 1.0 + args.cpu_tolerance
    print(f"indexed CPU: baseline {base_ms:.1f} ms, fresh {fresh_ms:.1f} ms "
          f"({ratio:.3f}x, budget {budget:.2f}x)")
    if ratio > budget:
        failures.append(
            f"summed indexed_ms regressed {ratio:.3f}x > {budget:.2f}x "
            f"budget ({fresh_ms:.1f} ms vs {base_ms:.1f} ms)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"ok: {len(base_rows)} configurations match the baseline "
          f"fingerprints; CPU within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
