#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed perf baseline.

Understands both tracked baselines:

  * BENCH_PR3.json (bench_sched_e2e): rows carry `indexed_ms` and the
    legacy/indexed `fingerprint_match` bit;
  * BENCH_PR8.json (bench_scale): rows carry `cpu_ms`, `peak_rss_kb` and
    `allocations` from one forked process per configuration.

Checks, in order of severity (every failure names the judged field):

  1. [fingerprint] (hard fail, no tolerance). Every configuration's
     metrics::fingerprint must equal the committed baseline's, and — where
     the row records one — the fresh run's own legacy/indexed A/B must
     agree. A mismatch means simulation *behavior* changed, e.g. an
     "observability" hook that consumed an RNG draw or reordered a float
     sum, which silently invalidates every recorded figure.

  2. [indexed_ms] / [cpu_ms] (tolerance, default 5%). The summed CPU time
     across all compared configurations must not exceed the baseline's sum
     by more than --cpu-tolerance. The sum (not per-row deltas) is compared
     because individual rows are noisy on shared runners while the
     aggregate is stable; getting faster never fails.

  3. [peak_rss_kb] / [allocations] (tolerance, default 25%). Only judged
     when both sides record them. RSS gets a looser budget than CPU: the
     kernel's high-water mark is quantized by page reclaim and allocator
     chunking, so small relative wobble at the small scale points is
     expected. Shrinking never fails.

Rows are keyed by (profile, nodes, jobs, scheduler, policy). A fresh row
whose scale fields match no baseline key but whose configuration does is a
refusal (exit 2): timings at different scales are not comparable. With
--allow-subset the fresh run may cover a subset of the baseline's rows
(CI smoke slices) and the `mode` fields may differ; sums are then taken
over the common rows only.

Usage:
  python3 tools/check_bench_baseline.py \
      --baseline BENCH_PR3.json --fresh build/BENCH_FRESH.json \
      [--cpu-tolerance 0.05] [--rss-tolerance 0.25] [--allow-subset]
  python3 tools/check_bench_baseline.py --self-test

Exit codes: 0 ok, 1 check failed, 2 inputs unusable.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def key(row: dict) -> tuple:
    return (row["profile"], row["nodes"], row["jobs"], row["scheduler"],
            row["policy"])


def label(k: tuple) -> str:
    profile, nodes, jobs, scheduler, policy = k
    return f"{profile}/{nodes}x{jobs}/{scheduler}/{policy}"


def cpu_field(rows: dict) -> str:
    """The CPU field this schema records (bench_sched_e2e vs bench_scale)."""
    sample = next(iter(rows.values()))
    return "indexed_ms" if "indexed_ms" in sample else "cpu_ms"


def sum_check(name: str, base_rows: dict, fresh_rows: dict, keys: list,
              tolerance: float, failures: list, required: bool) -> None:
    """Budget check on a summed numeric field; absent fields are skipped
    (unless required), shrinking never fails."""
    judged = [k for k in keys
              if name in base_rows[k] and name in fresh_rows[k]]
    if not judged:
        if required:
            failures.append(f"[{name}] field missing from both runs")
        return
    base_total = sum(base_rows[k][name] for k in judged)
    fresh_total = sum(fresh_rows[k][name] for k in judged)
    ratio = fresh_total / base_total if base_total > 0 else float("inf")
    budget = 1.0 + tolerance
    print(f"{name}: baseline {base_total:.1f}, fresh {fresh_total:.1f} "
          f"({ratio:.3f}x, budget {budget:.2f}x, {len(judged)} rows)")
    if ratio > budget:
        failures.append(
            f"[{name}] summed total regressed {ratio:.3f}x > {budget:.2f}x "
            f"budget ({fresh_total:.1f} vs {base_total:.1f})")


def compare(baseline: dict, fresh: dict, cpu_tolerance: float,
            rss_tolerance: float, allow_subset: bool) -> int:
    base_rows = {key(r): r for r in baseline.get("results", [])}
    fresh_rows = {key(r): r for r in fresh.get("results", [])}
    if not base_rows:
        print("error: baseline has no results", file=sys.stderr)
        return 2
    if not fresh_rows:
        print("error: fresh run has no results", file=sys.stderr)
        return 2
    if not allow_subset and baseline.get("mode") != fresh.get("mode"):
        print(f"error: [mode] mismatch (baseline={baseline.get('mode')!r}, "
              f"fresh={fresh.get('mode')!r}): runs are not comparable "
              f"(pass --allow-subset for smoke slices)", file=sys.stderr)
        return 2

    # A fresh row whose configuration exists in the baseline at a different
    # scale is a setup error, not a perf regression: refuse to judge.
    base_configs = {(k[0], k[3], k[4]): k for k in base_rows}
    for k in fresh_rows:
        if k in base_rows:
            continue
        other = base_configs.get((k[0], k[3], k[4]))
        if other is not None:
            print(f"error: [nodes/jobs] {label(k)} does not match the "
                  f"baseline scale {label(other)}: runs are not comparable",
                  file=sys.stderr)
            return 2

    failures = []
    common = []
    for k, base in sorted(base_rows.items()):
        row = fresh_rows.get(k)
        if row is None:
            if not allow_subset:
                failures.append(f"[row] {label(k)}: missing from fresh run")
            continue
        common.append(k)
        if not row.get("fingerprint_match", True):
            failures.append(f"[fingerprint] {label(k)}: fresh legacy/indexed "
                            f"fingerprints diverged")
        if row["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"[fingerprint] {label(k)}: {row['fingerprint']} != baseline "
                f"{base['fingerprint']} (simulation behavior changed)")

    if allow_subset and not common:
        print("error: fresh run shares no rows with the baseline",
              file=sys.stderr)
        return 2
    for k in sorted(set(fresh_rows) - set(base_rows)):
        print(f"note: {label(k)}: new configuration not in baseline "
              f"(not judged)")

    if common:
        sum_check(cpu_field(base_rows), base_rows, fresh_rows, common,
                  cpu_tolerance, failures, required=True)
        for name in ("peak_rss_kb", "allocations"):
            sum_check(name, base_rows, fresh_rows, common, rss_tolerance,
                      failures, required=False)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"ok: {len(common)} configurations match the baseline "
          f"fingerprints; resources within budget")
    return 0


# --- self-test fixtures ----------------------------------------------------

def _e2e_fixture(**overrides) -> dict:
    """A two-row bench_sched_e2e-style file; overrides patch row 0."""
    rows = [
        {"profile": "ec2", "nodes": 100, "jobs": 2000, "scheduler": "FIFO",
         "policy": "vanilla", "indexed_ms": 40.0, "fingerprint": "aa00",
         "fingerprint_match": True},
        {"profile": "ec2", "nodes": 100, "jobs": 2000, "scheduler": "Fair",
         "policy": "lru", "indexed_ms": 60.0, "fingerprint": "bb11",
         "fingerprint_match": True},
    ]
    rows[0].update(overrides)
    return {"mode": "full", "results": rows}


def _scale_fixture(**overrides) -> dict:
    """A two-scale-point bench_scale-style file; overrides patch row 0."""
    rows = [
        {"profile": "ec2", "nodes": 100, "jobs": 2000, "scheduler": "FIFO",
         "policy": "vanilla", "cpu_ms": 50.0, "peak_rss_kb": 20000,
         "allocations": 1000000, "fingerprint": "cc22"},
        {"profile": "ec2", "nodes": 1000, "jobs": 10000, "scheduler": "FIFO",
         "policy": "vanilla", "cpu_ms": 700.0, "peak_rss_kb": 41000,
         "allocations": 6000000, "fingerprint": "dd33"},
    ]
    rows[0].update(overrides)
    return {"mode": "full", "results": rows}


def self_test() -> int:
    cases = [
        # (name, baseline, fresh, allow_subset, expected exit, expected text)
        ("e2e identical ok",
         _e2e_fixture(), _e2e_fixture(), False, 0, None),
        ("fingerprint mismatch fails hard",
         _e2e_fixture(), _e2e_fixture(fingerprint="9999"), False, 1,
         "[fingerprint]"),
        ("legacy/indexed divergence fails",
         _e2e_fixture(), _e2e_fixture(fingerprint_match=False), False, 1,
         "[fingerprint]"),
        ("cpu regression beyond budget fails",
         _e2e_fixture(), _e2e_fixture(indexed_ms=80.0), False, 1,
         "[indexed_ms]"),
        ("cpu wobble within budget ok",
         _e2e_fixture(), _e2e_fixture(indexed_ms=43.0), False, 0, None),
        ("getting faster never fails",
         _e2e_fixture(), _e2e_fixture(indexed_ms=1.0), False, 0, None),
        ("scale rows with rss wobble within looser budget ok",
         _scale_fixture(), _scale_fixture(peak_rss_kb=24000), False, 0, None),
        ("rss regression beyond budget fails",
         _scale_fixture(), _scale_fixture(peak_rss_kb=45000), False, 1,
         "[peak_rss_kb]"),
        ("allocation regression beyond budget fails",
         _scale_fixture(), _scale_fixture(allocations=9000000), False, 1,
         "[allocations]"),
        ("missing row fails without subset",
         _scale_fixture(),
         {"mode": "full", "results": _scale_fixture()["results"][:1]},
         False, 1, "[row]"),
        ("smoke slice ok with --allow-subset",
         _scale_fixture(),
         {"mode": "smoke", "results": _scale_fixture()["results"][:1]},
         True, 0, None),
        ("scale mismatch refuses to judge",
         _scale_fixture(),
         _scale_fixture(nodes=200), False, 2, None),
        ("mode mismatch refuses without subset",
         _scale_fixture(),
         {"mode": "smoke", "results": _scale_fixture()["results"]},
         False, 2, None),
    ]
    import contextlib
    import io
    bad = 0
    for name, base, fresh, subset, want_rc, want_text in cases:
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            rc = compare(base, fresh, cpu_tolerance=0.05, rss_tolerance=0.25,
                         allow_subset=subset)
        ok = rc == want_rc and (want_text is None or
                                want_text in err.getvalue())
        if not ok:
            bad += 1
            print(f"self-test FAIL: {name}: rc={rc} (want {want_rc}), "
                  f"stderr:\n{err.getvalue()}", file=sys.stderr)
    if bad:
        return 1
    print(f"self-test ok: {len(cases)} fixture cases")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_PR3.json",
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--fresh",
                        help="freshly produced bench JSON")
    parser.add_argument("--cpu-tolerance", type=float, default=0.05,
                        help="allowed relative increase of summed CPU ms "
                             "(default: %(default)s)")
    parser.add_argument("--rss-tolerance", type=float, default=0.25,
                        help="allowed relative increase of summed peak RSS / "
                             "allocations (default: %(default)s)")
    parser.add_argument("--allow-subset", action="store_true",
                        help="fresh run may cover a subset of baseline rows "
                             "(CI smoke slices)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.fresh:
        parser.error("--fresh is required (or use --self-test)")
    return compare(load(args.baseline), load(args.fresh),
                   cpu_tolerance=args.cpu_tolerance,
                   rss_tolerance=args.rss_tolerance,
                   allow_subset=args.allow_subset)


if __name__ == "__main__":
    sys.exit(main())
