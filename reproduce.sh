#!/usr/bin/env sh
# Build, test, and regenerate every table/figure of the DARE reproduction.
# Outputs land in test_output.txt and bench_output.txt next to this script.
set -e
cd "$(dirname "$0")"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "##### $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "Done. See EXPERIMENTS.md for the paper-vs-measured discussion."
