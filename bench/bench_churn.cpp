// Node-churn bench (robustness extension): continuous stochastic failures
// instead of a fixed kill schedule. Every worker fails with exponential
// MTBF; failures are transient (node rejoins after MTTR and reconciles its
// stale disk) or permanent, optionally taking the whole rack down. The
// name node learns of deaths only through missed heartbeats.
//
// Reports, per scheduler x policy: locality, GMTT, failure/detection/rejoin
// counts, mean heartbeat detection latency, repair and reconciliation
// traffic, and terminal job accounting under task-attempt retry limits.
//
// Overrides: jobs=<n> nodes=<n> seed=<n> mtbf_s=<s> mttr_s=<s> progress=1
//            permanent_fraction=<p> rack_correlation=<p>
//            task_failure_prob=<p>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Node churn — stochastic failures, heartbeat detection, "
                "rejoin reconciliation",
                "robustness extension of DARE (CLUSTER'11)");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  struct Variant {
    std::string label;
    SchedulerKind scheduler;
    PolicyKind policy;
  };
  const std::vector<Variant> variants = {
      {"fifo / vanilla", SchedulerKind::kFifo, PolicyKind::kVanilla},
      {"fifo / dare-lru", SchedulerKind::kFifo, PolicyKind::kGreedyLru},
      {"fifo / dare-et", SchedulerKind::kFifo, PolicyKind::kElephantTrap},
      {"fair / vanilla", SchedulerKind::kFair, PolicyKind::kVanilla},
      {"fair / dare-lru", SchedulerKind::kFair, PolicyKind::kGreedyLru},
      {"fair / dare-et", SchedulerKind::kFair, PolicyKind::kElephantTrap},
  };

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& variant : variants) {
    runs.push_back([&, variant] {
      // ec2 profile: multi-rack, so rack-correlated failures have teeth.
      auto options = cluster::paper_defaults(net::ec2_profile(nodes),
                                             variant.scheduler,
                                             variant.policy, seed);
      options.faults.enabled = true;
      options.faults.mtbf_s = cfg.get_double("mtbf_s", 120.0);
      options.faults.mttr_s = cfg.get_double("mttr_s", 30.0);
      options.faults.permanent_fraction =
          cfg.get_double("permanent_fraction", 0.2);
      options.faults.rack_correlation =
          cfg.get_double("rack_correlation", 0.2);
      options.faults.task_failure_prob =
          cfg.get_double("task_failure_prob", 0.005);
      options.faults.min_live_workers = 4;
      options.rereplication_interval = from_seconds(2.0);
      options.rereplication_batch = 32;
      return cluster::run_once(options, wl);
    });
  }
  const auto results =
      cluster::run_parallel(runs, 0, bench::progress_meter(cfg));

  AsciiTable table({"configuration", "locality %", "GMTT (s)", "failures",
                    "detected", "mean detect (s)", "rejoins", "repaired",
                    "pruned", "failed jobs"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].label, fmt_fixed(r.locality * 100.0, 1),
                   fmt_fixed(r.gmtt_s, 2), std::to_string(r.node_failures),
                   std::to_string(r.failures_detected),
                   fmt_fixed(r.mean_detection_latency_s, 2),
                   std::to_string(r.node_rejoins),
                   std::to_string(r.rereplicated_blocks),
                   std::to_string(r.overreplication_prunes),
                   std::to_string(r.failed_jobs)});
  }
  table.print(std::cout, "\nStochastic churn, heartbeat detection (3 missed "
                         "x 3 s beats), max 4 task attempts");
  std::cout << "\nExpected: mean detection latency hovers around K heartbeat "
               "intervals (~9 s; each latency\nlies in (6, 12] s depending "
               "on where in the beat cycle the node died); rejoin pruning\n"
               "fires whenever repair wins the race against a transient "
               "outage; DARE policies keep\nlocality ahead of vanilla even "
               "while nodes churn.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
