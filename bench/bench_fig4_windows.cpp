// Figure 4: for each "big file" (the most popular files jointly holding 80 %
// of accesses), the smallest number of consecutive one-hour slots containing
// 80 % of that file's accesses — (a) files weighted equally, (b) weighted by
// access count. The paper's shape: most files bursty (small windows), plus a
// spike near the full week for daily-accessed files.
//
// Overrides: files=<n> accesses=<n> seed=<n>
#include "analysis/trace_analysis.h"
#include "bench_common.h"

namespace dare {
namespace {

void print_distribution(const analysis::WindowDistribution& dist,
                        const std::string& title) {
  AsciiTable table({"window size (hours)", "fraction of files"});
  // Aggregate into the bands the log-scale plot makes visible.
  const std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
      bands = {{"1", {1, 1}},          {"2-3", {2, 3}},
               {"4-8", {4, 8}},        {"9-24", {9, 24}},
               {"25-72", {25, 72}},    {"73-120", {73, 120}},
               {"121-168", {121, 168}}};
  for (const auto& [label, range] : bands) {
    double total = 0.0;
    for (std::size_t w = range.first;
         w <= range.second && w < dist.fraction.size(); ++w) {
      total += dist.fraction[w];
    }
    table.add_row({label, fmt_fixed(total, 3)});
  }
  table.print(std::cout, title);
  std::cout << "(files considered: " << dist.files_considered << ")\n";
}

int run(const Config& cfg) {
  workload::YahooTraceOptions opts;
  opts.files = static_cast<std::size_t>(cfg.get_int("files", 2000));
  opts.total_accesses =
      static_cast<std::size_t>(cfg.get_int("accesses", 200000));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  bench::banner(
      "Fig. 4 — size of the smallest window holding 80% of each file's "
      "accesses (full week)",
      "DARE (CLUSTER'11) Fig. 4a/4b");

  const auto trace = workload::generate_yahoo_trace(opts);

  analysis::WindowOptions plain;
  print_distribution(analysis::burst_window_distribution(trace, plain),
                     "\n(4a) All accesses weighted equally");

  analysis::WindowOptions weighted;
  weighted.weight_by_accesses = true;
  print_distribution(analysis::burst_window_distribution(trace, weighted),
                     "\n(4b) Each file weighted by its number of accesses");

  std::cout << "\nPaper shape: bimodal — mass at ~1 hour (bursty files) and "
               "a spike near 121 hours (files accessed daily all week).\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"accesses", "files"}));
}
