// End-to-end A/B benchmark for the locality-indexed scheduler.
//
// Runs the full simulation — FIFO/Fair × Vanilla/GreedyLRU/ElephantTrap on
// the CCT and EC2 profiles — twice per configuration: once with
// use_locality_index=false (the seed's linear-scan + per-opportunity-sort
// code, kept as the A/B baseline) and once with the inverted index +
// incremental fair ordering + reduce-ready set. Asserts the two modes
// produce identical metrics::fingerprint values and reports the speedup.
//
// Times are process-CPU time (CLOCK_PROCESS_CPUTIME_ID), min over
// `repeats`: the simulation is single-threaded and allocation-light, so CPU
// time equals wall time on an idle machine while staying meaningful on a
// loaded or time-shared one, where wall clock is dominated by steal time.
//
// Writes the results as JSON (default BENCH_PR3.json) for the tracked perf
// baseline. Overrides:
//   mode=full|smoke   full: paper-scale (EC2 100 nodes / 2000 jobs);
//                     smoke: CI-sized (finishes in seconds)
//   repeats=<n>       timed repetitions per mode; the minimum is reported
//   json=<path>       output path ("" to skip writing)
//   jobs_ec2= jobs_cct= nodes_ec2= nodes_cct=   scale overrides
//   profile=1         after the A/B table, re-run the largest indexed config
//                     with the PhaseProfiler attached and print the per-phase
//                     CPU attribution (separate pass: timings stay untouched)
#include <ctime>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"
#include "obs/phase_profiler.h"
#include "workload/workload.h"

namespace dare {
namespace {

struct Row {
  std::string profile;
  std::size_t nodes = 0;
  std::size_t jobs = 0;
  std::string scheduler;
  std::string policy;
  double legacy_ms = 0.0;
  double indexed_ms = 0.0;
  std::uint64_t fingerprint = 0;
  bool match = false;
};

double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

double cpu_ms(const cluster::ClusterOptions& opts,
              const workload::Workload& wl, int repeats,
              std::uint64_t* fingerprint) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = cpu_now_ms();
    const auto result = cluster::run_once(opts, wl);
    const double ms = cpu_now_ms() - t0;
    if (r == 0 || ms < best) best = ms;
    *fingerprint = metrics::fingerprint(result);
  }
  return best;
}

/// The scheduling-intensive workload: many concurrent small jobs over a
/// modest file catalog, so map-selection pressure (not data generation)
/// dominates. Matches the profiling configuration used to pick the PR's
/// optimization targets.
workload::Workload heavy_workload(std::size_t jobs) {
  workload::WorkloadOptions wopts;
  wopts.num_jobs = jobs;
  wopts.seed = 7;
  wopts.small_interarrival_s = 0.002;
  wopts.catalog.small_files = 60;
  wopts.catalog.small_min_blocks = 2;
  wopts.catalog.small_max_blocks = 6;
  wopts.catalog.large_files = 12;
  wopts.catalog.large_min_blocks = 16;
  wopts.catalog.large_max_blocks = 48;
  wopts.large_period = 20;
  return workload::make_wl2(wopts);
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  using namespace dare;
  const auto cfg = bench::parse_args(argc, argv, {"jobs_cct", "jobs_ec2", "json", "mode", "nodes_cct", "nodes_ec2", "profile", "repeats"});
  bench::banner("Scheduler hot-path end-to-end A/B (PR3 perf baseline)",
                "infrastructure (no paper figure); DARE Secs. 5-6 configs");

  const bool smoke = cfg.get_string("mode", "full") == "smoke";
  const int repeats =
      static_cast<int>(cfg.get_int("repeats", smoke ? 1 : 3));
  const auto nodes_cct = static_cast<std::size_t>(
      cfg.get_int("nodes_cct", smoke ? 10 : 20));
  const auto nodes_ec2 = static_cast<std::size_t>(
      cfg.get_int("nodes_ec2", smoke ? 20 : 100));
  const auto jobs_cct =
      static_cast<std::size_t>(cfg.get_int("jobs_cct", smoke ? 60 : 600));
  const auto jobs_ec2 =
      static_cast<std::size_t>(cfg.get_int("jobs_ec2", smoke ? 100 : 2000));
  const std::string json_path = cfg.get_string("json", "BENCH_PR3.json");

  struct ProfileCase {
    std::string name;
    std::size_t nodes;
    std::size_t jobs;
  };
  const std::vector<ProfileCase> profiles = {
      {"cct", nodes_cct, jobs_cct},
      {"ec2", nodes_ec2, jobs_ec2},
  };
  const std::vector<cluster::SchedulerKind> schedulers = {
      cluster::SchedulerKind::kFifo, cluster::SchedulerKind::kFair};
  const std::vector<cluster::PolicyKind> policies = {
      cluster::PolicyKind::kVanilla, cluster::PolicyKind::kGreedyLru,
      cluster::PolicyKind::kElephantTrap};

  std::vector<Row> rows;
  bool all_match = true;
  std::printf("%-4s %-5s %-5s %-6s %-14s %12s %12s %9s %s\n", "prof",
              "nodes", "jobs", "sched", "policy", "legacy_cpu_ms",
              "indexed_cpu_ms", "speedup", "fp_match");
  for (const auto& prof : profiles) {
    const auto wl = heavy_workload(prof.jobs);
    const auto profile = prof.name == "cct" ? net::cct_profile(prof.nodes)
                                            : net::ec2_profile(prof.nodes);
    for (const auto sched : schedulers) {
      for (const auto pol : policies) {
        auto opts = cluster::paper_defaults(profile, sched, pol, 42);
        Row row;
        row.profile = prof.name;
        row.nodes = prof.nodes;
        row.jobs = prof.jobs;
        row.scheduler = cluster::scheduler_name(sched);
        row.policy = cluster::policy_name(pol);

        std::uint64_t fp_legacy = 0;
        std::uint64_t fp_indexed = 0;
        opts.use_locality_index = false;
        row.legacy_ms = cpu_ms(opts, wl, repeats, &fp_legacy);
        opts.use_locality_index = true;
        row.indexed_ms = cpu_ms(opts, wl, repeats, &fp_indexed);
        row.fingerprint = fp_indexed;
        row.match = fp_legacy == fp_indexed;
        all_match = all_match && row.match;

        std::printf("%-4s %-5zu %-5zu %-6s %-14s %12.1f %12.1f %8.2fx %s\n",
                    row.profile.c_str(), row.nodes, row.jobs,
                    row.scheduler.c_str(), row.policy.c_str(), row.legacy_ms,
                    row.indexed_ms, row.legacy_ms / row.indexed_ms,
                    row.match ? "yes" : "MISMATCH");
        std::fflush(stdout);
        rows.push_back(row);
      }
    }
  }

  if (cfg.get_int("profile", 0) != 0) {
    // Phase attribution for the heaviest configuration. Runs after (and
    // apart from) the timed A/B passes so the scoped clock reads cannot
    // contaminate legacy_ms/indexed_ms.
    const auto& prof = profiles.back();
    auto opts = cluster::paper_defaults(
        prof.name == "cct" ? net::cct_profile(prof.nodes)
                           : net::ec2_profile(prof.nodes),
        cluster::SchedulerKind::kFair, cluster::PolicyKind::kElephantTrap,
        42);
    opts.use_locality_index = true;
    obs::PhaseProfiler phase_profiler;
    opts.profiler = &phase_profiler;
    cluster::run_once(opts, heavy_workload(prof.jobs));
    std::printf("\nphase attribution (%s, %zu nodes, %zu jobs, "
                "Fair/elephant-trap, indexed):\n",
                prof.name.c_str(), prof.nodes, prof.jobs);
    phase_profiler.write_report(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n"
        << "  \"benchmark\": \"bench_sched_e2e\",\n"
        << "  \"description\": \"End-to-end A/B (process-CPU ms): legacy "
           "scan/sort scheduler vs locality-indexed scheduler (PR3)\",\n"
        << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      char fp[32];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      out << "    {\"profile\": \"" << r.profile << "\", \"nodes\": "
          << r.nodes << ", \"jobs\": " << r.jobs << ", \"scheduler\": \""
          << r.scheduler << "\", \"policy\": \"" << r.policy
          << "\", \"legacy_ms\": " << r.legacy_ms
          << ", \"indexed_ms\": " << r.indexed_ms << ", \"speedup\": "
          << (r.legacy_ms / r.indexed_ms) << ", \"fingerprint\": \"" << fp
          << "\", \"fingerprint_match\": " << (r.match ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("[json written: %s]\n", json_path.c_str());
  }

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: indexed mode diverged from legacy fingerprints\n");
    return 1;
  }
  return 0;
}
