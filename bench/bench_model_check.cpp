// Analytic cross-validation: the simulator's measured FIFO locality must
// lie between a first-principles prediction evaluated on the initial
// replica counts (no dynamic replication yet) and on the final counts
// (full dynamic replication) — arithmetic that involves no event engine.
// Agreement here means the headline Fig. 7/10 numbers are not artifacts of
// the simulator's scheduling mechanics.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"
#include "metrics/locality_model.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Analytic cross-validation of FIFO locality",
                "model check for DARE (CLUSTER'11) Figs. 7a/10a");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);
  const auto counts = wl.file_access_counts();

  AsciiTable table({"policy", "model (initial replicas)", "measured",
                    "model (final replicas)"});
  for (const PolicyKind policy :
       {PolicyKind::kVanilla, PolicyKind::kGreedyLru,
        PolicyKind::kElephantTrap}) {
    cluster::Cluster sim(cluster::paper_defaults(
        net::cct_profile(nodes), SchedulerKind::kFifo, policy, seed));
    const auto result = sim.run(wl);

    std::vector<double> weights;
    std::vector<std::size_t> initial;
    std::vector<std::size_t> final_counts;
    const auto& nn = sim.name_node();
    const auto files = nn.all_files();
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (BlockId bid : nn.file(files[i]).blocks) {
        weights.push_back(static_cast<double>(counts[i]));
        initial.push_back(3);
        final_counts.push_back(nn.locations(bid).size());
      }
    }
    table.add_row(
        {cluster::policy_name(policy),
         fmt_fixed(metrics::expected_fifo_locality(weights, initial,
                                                   sim.worker_count()),
                   3),
         fmt_fixed(result.locality, 3),
         fmt_fixed(metrics::expected_fifo_locality(weights, final_counts,
                                                   sim.worker_count()),
                   3)});
  }
  table.print(std::cout,
              "\nP(local) = sum_b weight_b * min(1, replicas_b / workers) "
              "(FIFO, wl1)");
  std::cout << "\nExpected: measured locality falls between the two model "
               "evaluations — replicas accumulate\nduring the run, so the "
               "run interpolates between its initial and final placement.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
