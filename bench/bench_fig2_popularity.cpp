// Figure 2: number of accesses per file versus file rank (log-log), plain
// and weighted by the number of 128 MB blocks per file, over a synthetic
// Yahoo-style HDFS audit trace.
//
// Overrides: files=<n> accesses=<n> seed=<n>
#include <cmath>

#include "analysis/trace_analysis.h"
#include "bench_common.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  workload::YahooTraceOptions opts;
  opts.files = static_cast<std::size_t>(cfg.get_int("files", 2000));
  opts.total_accesses =
      static_cast<std::size_t>(cfg.get_int("accesses", 200000));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  bench::banner("Fig. 2 — file popularity in a production-style trace",
                "DARE (CLUSTER'11) Fig. 2");

  const auto trace = workload::generate_yahoo_trace(opts);
  const auto plain = analysis::popularity_ranking(trace);
  const auto weighted = analysis::weighted_popularity_ranking(trace);

  AsciiTable table({"file rank", "accesses", "accesses x blocks"});
  for (std::size_t rank : {1u, 2u, 5u, 10u, 20u, 50u, 100u, 200u, 500u,
                           1000u, 1999u}) {
    if (rank > plain.size()) break;
    table.add_row({std::to_string(rank),
                   std::to_string(plain[rank - 1].accesses),
                   std::to_string(weighted[rank - 1].weighted())});
  }
  table.print(std::cout, "\nAccesses per file by popularity rank (log-log "
                         "series; sampled ranks)");

  const double head = static_cast<double>(plain.front().accesses);
  const double tail = static_cast<double>(plain.back().accesses);
  std::cout << "\nHeavy tail: rank-1 file has " << head
            << " accesses, rank-" << plain.size() << " has " << tail
            << " (" << fmt_fixed(head / std::max(tail, 1.0), 0)
            << "x, ~" << fmt_fixed(std::log10(head / std::max(tail, 1.0)), 1)
            << " decades; paper spans ~4 decades).\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"accesses", "files"}));
}
