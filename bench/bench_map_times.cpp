// Section V-C reproduction + the paper's stated future work.
//
// The paper reports (text, no figure): "We also evaluate reduction to map
// task completion time with the second workload. The mean reduction is 12%
// and 11% for the FIFO and Fair schedulers" — and attributes the limited
// gain to "a mixture of input-bound and output-bound tasks in the trace.
// Dynamic replication does not expedite output-bound tasks, whose
// turnaround time is dominated by output processing. We plan to investigate
// the effect of different tasks further in future work."
//
// This bench reproduces the mean map-time reduction, then carries out the
// promised investigation: jobs are split into input-bound (light shuffle)
// and output-bound (heavy shuffle + long reduces) classes, and DARE's
// turnaround improvement is reported per class.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include <unordered_map>

#include "bench_common.h"
#include "cluster/experiment.h"
#include "common/stats.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

/// Output-bound = heavy shuffle relative to input (see workload.cpp).
bool output_bound(const workload::Workload& wl,
                  const workload::JobTemplate& job) {
  const auto blocks = wl.catalog[job.file_index].blocks;
  return job.shuffle_bytes > static_cast<Bytes>(blocks) * 16 * kMiB;
}

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Map-task completion times and task classes (wl2)",
                "DARE (CLUSTER'11) Section V-C + stated future work");

  const auto wl = cluster::standard_wl2(nodes, jobs, seed);

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    for (const auto policy :
         {PolicyKind::kVanilla, PolicyKind::kElephantTrap}) {
      runs.push_back([&, sched, policy] {
        return cluster::run_once(
            cluster::paper_defaults(net::cct_profile(nodes), sched, policy,
                                    seed),
            wl);
      });
    }
  }
  const auto results = cluster::run_parallel(runs);

  // --- mean map-task completion time (the 12% / 11% numbers) -------------
  AsciiTable map_times({"scheduler", "vanilla (s)", "DARE-ET (s)",
                        "reduction"});
  const char* sched_names[] = {"FIFO", "Fair"};
  for (int s = 0; s < 2; ++s) {
    const auto& vanilla = results[static_cast<std::size_t>(s) * 2];
    const auto& dare = results[static_cast<std::size_t>(s) * 2 + 1];
    map_times.add_row(
        {sched_names[s], fmt_fixed(vanilla.mean_map_time_s, 2),
         fmt_fixed(dare.mean_map_time_s, 2),
         fmt_percent(1.0 - dare.mean_map_time_s / vanilla.mean_map_time_s)});
  }
  map_times.print(std::cout, "\nMean map-task completion time "
                             "(paper: 12% FIFO / 11% Fair reduction)");

  // --- per-class turnaround improvement (the future-work question) -------
  AsciiTable classes({"scheduler", "job class", "jobs",
                      "GMTT vanilla (s)", "GMTT DARE-ET (s)", "reduction"});
  for (int s = 0; s < 2; ++s) {
    const auto& vanilla = results[static_cast<std::size_t>(s) * 2];
    const auto& dare = results[static_cast<std::size_t>(s) * 2 + 1];
    for (const bool heavy : {false, true}) {
      std::vector<double> tt_vanilla;
      std::vector<double> tt_dare;
      for (std::size_t j = 0; j < wl.jobs.size(); ++j) {
        if (output_bound(wl, wl.jobs[j]) != heavy) continue;
        tt_vanilla.push_back(vanilla.jobs[j].turnaround_s());
        tt_dare.push_back(dare.jobs[j].turnaround_s());
      }
      const double gm_vanilla = geometric_mean(tt_vanilla);
      const double gm_dare = geometric_mean(tt_dare);
      classes.add_row({sched_names[s],
                       heavy ? "output-bound" : "input-bound",
                       std::to_string(tt_vanilla.size()),
                       fmt_fixed(gm_vanilla, 2), fmt_fixed(gm_dare, 2),
                       fmt_percent(1.0 - gm_dare / gm_vanilla)});
    }
  }
  classes.print(std::cout,
                "\nTurnaround by task class (the paper's future-work "
                "investigation)");
  std::cout << "\nExpected: input-bound jobs benefit substantially more "
               "from dynamic replication than\noutput-bound jobs, whose "
               "turnaround is dominated by shuffle and reduce processing "
               "that\nlocality cannot accelerate — confirming the paper's "
               "Section V-C explanation.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
