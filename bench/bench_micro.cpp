// Micro-benchmarks (google-benchmark) of the core data structures, proving
// the per-event costs the simulator's throughput rests on: the event queue,
// the ElephantTrap and LRU policy hooks, name-node metadata operations, and
// the heavy-tailed samplers.
#include <benchmark/benchmark.h>

#include "common/distributions.h"
#include "core/elephant_trap.h"
#include "core/greedy_lru.h"
#include "net/profile.h"
#include "sim/event_queue.h"
#include "storage/namenode.h"

namespace dare {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(static_cast<SimTime>((i * 7919) % 100000), [] {});
    }
    while (!queue.empty()) queue.pop_and_run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 1.1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

void BM_ElephantTrapHook(benchmark::State& state) {
  Rng rng(3);
  storage::DataNode node(0, net::cct_profile().disk, rng);
  core::ElephantTrapParams params;
  params.p = 0.3;
  core::ElephantTrapPolicy policy(node, 64 * 128 * kMiB, params, rng);
  BlockId next = 0;
  for (auto _ : state) {
    const storage::BlockMeta meta{next % 256, (next % 256) / 4, 128 * kMiB};
    benchmark::DoNotOptimize(policy.on_map_task(meta, next % 3 == 0));
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ElephantTrapHook);

void BM_GreedyLruHook(benchmark::State& state) {
  Rng rng(4);
  storage::DataNode node(0, net::cct_profile().disk, rng);
  core::GreedyLruPolicy policy(node, 64 * 128 * kMiB);
  BlockId next = 0;
  for (auto _ : state) {
    const storage::BlockMeta meta{next % 256, (next % 256) / 4, 128 * kMiB};
    benchmark::DoNotOptimize(policy.on_map_task(meta, next % 3 == 0));
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GreedyLruHook);

void BM_NameNodeCreateFile(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    storage::NameNode nn(19, nullptr, rng);
    state.ResumeTiming();
    for (int f = 0; f < 64; ++f) {
      nn.create_file("f" + std::to_string(f), 4, 128 * kMiB, 3, 0);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_NameNodeCreateFile);

void BM_NameNodeLocations(benchmark::State& state) {
  Rng rng(6);
  storage::NameNode nn(19, nullptr, rng);
  const FileId f = nn.create_file("f", 256, 128 * kMiB, 3, 0);
  const auto& blocks = nn.file(f).blocks;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn.locations(blocks[i % blocks.size()]));
    ++i;
  }
}
BENCHMARK(BM_NameNodeLocations);

}  // namespace
}  // namespace dare

BENCHMARK_MAIN();
