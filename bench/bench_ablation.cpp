// Ablation bench (beyond the paper's figures):
//  1. Eviction-policy ablation — vanilla vs greedy-LRU vs greedy-LFU vs
//     ElephantTrap, including the dynamic-replica disk-write counts behind
//     the paper's "comparable locality with ~50% of the disk writes" claim.
//  2. Reactive vs proactive — DARE vs a Scarlett-style epoch-based
//     replicator (the paper's comparator), contrasting locality and the
//     explicit network bytes the proactive scheme must move.
//  3. Heartbeat-interval ablation — how stale metadata delays the benefit
//     of freshly created replicas.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 400));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Ablations — eviction policy, reactive vs proactive, "
                "heartbeat staleness",
                "DARE (CLUSTER'11) design-choice ablations");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  // --- 1. eviction policies ----------------------------------------------
  struct PolicyRow {
    std::string label;
    PolicyKind policy;
  };
  const std::vector<PolicyRow> policy_rows = {
      {"vanilla", PolicyKind::kVanilla},
      {"greedy-lru", PolicyKind::kGreedyLru},
      {"greedy-lfu", PolicyKind::kGreedyLfu},
      {"elephant-trap p=0.3", PolicyKind::kElephantTrap}};

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& row : policy_rows) {
    runs.push_back([&, row] {
      return cluster::run_once(
          cluster::paper_defaults(net::cct_profile(nodes),
                                  SchedulerKind::kFifo, row.policy, seed),
          wl);
    });
  }
  // --- 2. Scarlett-style proactive baseline -------------------------------
  runs.push_back([&] {
    auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                           SchedulerKind::kFifo,
                                           PolicyKind::kVanilla, seed);
    options.enable_scarlett = true;
    options.scarlett.epoch = from_seconds(30.0);
    options.scarlett.budget_fraction = 0.2;
    return cluster::run_once(options, wl);
  });
  // --- 3. heartbeat sweep (ElephantTrap) ----------------------------------
  const std::vector<double> heartbeats_s = {1.0, 3.0, 10.0, 30.0};
  for (const double hb : heartbeats_s) {
    runs.push_back([&, hb] {
      auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                             SchedulerKind::kFifo,
                                             PolicyKind::kElephantTrap, seed);
      options.heartbeat_interval = from_seconds(hb);
      return cluster::run_once(options, wl);
    });
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable ptable({"configuration", "locality %", "norm. GMTT",
                     "disk writes", "net bytes (MiB)"});
  const double vanilla_gmtt = results[0].gmtt_s;
  for (std::size_t i = 0; i < policy_rows.size(); ++i) {
    const auto& r = results[i];
    ptable.add_row({policy_rows[i].label, fmt_fixed(r.locality * 100.0, 1),
                    fmt_fixed(r.gmtt_s / vanilla_gmtt, 3),
                    std::to_string(r.dynamic_replica_disk_writes),
                    fmt_fixed(static_cast<double>(
                                  r.proactive_replication_bytes) /
                                  static_cast<double>(kMiB),
                              0)});
  }
  {
    const auto& r = results[policy_rows.size()];
    ptable.add_row({"scarlett-style epochs",
                    fmt_fixed(r.locality * 100.0, 1),
                    fmt_fixed(r.gmtt_s / vanilla_gmtt, 3),
                    std::to_string(r.dynamic_replica_disk_writes),
                    fmt_fixed(static_cast<double>(
                                  r.proactive_replication_bytes) /
                                  static_cast<double>(kMiB),
                              0)});
  }
  ptable.print(std::cout,
               "\n(1+2) Eviction policies and the proactive comparator "
               "(FIFO, wl1)");
  std::cout << "\nExpected: ElephantTrap reaches locality comparable to "
               "greedy LRU with roughly half the disk writes; only the "
               "Scarlett-style scheme moves explicit network bytes.\n";

  AsciiTable htable({"heartbeat interval (s)", "locality %", "norm. GMTT"});
  const std::size_t hb_base = policy_rows.size() + 1;
  for (std::size_t i = 0; i < heartbeats_s.size(); ++i) {
    const auto& r = results[hb_base + i];
    htable.add_row({fmt_fixed(heartbeats_s[i], 0),
                    fmt_fixed(r.locality * 100.0, 1),
                    fmt_fixed(r.gmtt_s / vanilla_gmtt, 3)});
  }
  htable.print(std::cout, "\n(3) Heartbeat staleness (ElephantTrap, FIFO, "
                          "wl1)");
  std::cout << "\nExpected: replicas only become schedulable at the next "
               "heartbeat, so longer intervals erode the locality gain.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
