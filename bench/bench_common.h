// Shared helpers for the bench binaries: argument parsing (key=value
// overrides), standard headers, and formatting shortcuts. Each bench prints
// the rows/series of exactly one table or figure of the DARE paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"
#include "obs/phase_profiler.h"

namespace dare::bench {

/// Global operator-new invocations observed so far in this process. Counted
/// by the replacement operators in alloc_probe.cpp (linked into every bench
/// binary); 0 under sanitizers, whose own allocator interposition must stay
/// in charge. Like peak RSS this is reporting-only telemetry — it never
/// feeds a fingerprint.
std::uint64_t allocation_count();

/// Memory telemetry for bench reports: process peak RSS (getrusage high
/// water, via PhaseProfiler so the one-clock-reader rule has a single home)
/// and cumulative heap allocation count. Excluded from fingerprints by
/// construction — RunResult never sees either number.
struct MemoryStats {
  std::int64_t peak_rss_kb = 0;
  std::uint64_t allocations = 0;
};

inline MemoryStats read_memory_stats() {
  MemoryStats stats;
  stats.peak_rss_kb = obs::PhaseProfiler::peak_rss_bytes() / 1024;
  stats.allocations = allocation_count();
  return stats;
}

/// Keys every bench binary accepts in addition to its own:
/// `csv=<prefix>` (maybe_write_csv) and `progress=1` (progress_meter).
inline const std::vector<std::string>& common_bench_keys() {
  static const std::vector<std::string> keys = {"csv", "progress"};
  return keys;
}

/// Arguments not recognized by this binary: positional tokens plus every
/// config key outside cluster::override_keys(), common_bench_keys(), and
/// the binary's own `extra_keys`. Pure — parse_args uses it to reject, the
/// tests exercise it directly.
inline std::vector<std::string> unknown_args(
    const Config& cfg, const std::vector<std::string>& positional,
    const std::vector<std::string>& extra_keys) {
  std::vector<std::string> unknown = positional;
  const auto contains = [](const std::vector<std::string>& keys,
                           const std::string& key) {
    return std::find(keys.begin(), keys.end(), key) != keys.end();
  };
  for (const auto& key : cfg.keys()) {
    if (contains(cluster::override_keys(), key) ||
        contains(common_bench_keys(), key) || contains(extra_keys, key)) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  return unknown;
}

/// Parse `key=value` CLI overrides into a Config, validating every key
/// against cluster::override_keys() + common_bench_keys() + `extra_keys`.
/// A typo'd knob or stray positional exits 1 with a usage line instead of
/// silently running the default configuration (same contract the examples
/// enforce since PR5/PR7).
inline Config parse_args(int argc, char** argv,
                         const std::vector<std::string>& extra_keys = {}) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);
  const auto unknown = unknown_args(cfg, positional, extra_keys);
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << "\nusage: " << (argc > 0 ? argv[0] : "bench")
              << " [key=value ...]\n  binary-specific keys:";
    for (const auto& key : extra_keys) std::cerr << ' ' << key;
    std::cerr << "\n  common keys: csv=<prefix> progress=1"
              << "\n  cluster override keys:";
    for (const auto& key : cluster::override_keys()) std::cerr << ' ' << key;
    std::cerr << '\n';
    std::exit(1);
  }
  return cfg;
}

/// Standard banner so bench outputs are self-describing in logs.
inline void banner(const std::string& experiment,
                   const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << experiment << '\n'
            << "Reproduces: " << paper_reference << '\n'
            << "==============================================================\n";
}

/// `progress=1`: live completed/total meter on stderr for run_parallel /
/// farm sweeps (stderr so redirected table output stays clean). The
/// callback may run concurrently on worker threads (cluster::SweepProgress
/// contract); a bare stream write never data-races, at worst interleaves.
inline cluster::SweepProgress progress_meter(const Config& cfg) {
  if (!cfg.get_bool("progress", false)) return {};
  return [](std::size_t done, std::size_t total) {
    std::cerr << "\r[sweep " << done << '/' << total << ']'
              << (done == total ? "\n" : "") << std::flush;
  };
}

/// If the run was given `csv=<dir-or-prefix>`, also write `table` as
/// `<prefix><name>.csv` so figure series can be re-plotted externally.
inline void maybe_write_csv(const Config& cfg, const std::string& name,
                            const AsciiTable& table) {
  const std::string prefix = cfg.get_string("csv", "");
  if (prefix.empty()) return;
  const std::string path = prefix + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  table.to_csv(out);
  std::cout << "[csv written: " << path << "]\n";
}

}  // namespace dare::bench
