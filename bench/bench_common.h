// Shared helpers for the bench binaries: argument parsing (key=value
// overrides), standard headers, and formatting shortcuts. Each bench prints
// the rows/series of exactly one table or figure of the DARE paper.
#pragma once

#include <cstdint>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"
#include "obs/phase_profiler.h"

namespace dare::bench {

/// Global operator-new invocations observed so far in this process. Counted
/// by the replacement operators in alloc_probe.cpp (linked into every bench
/// binary); 0 under sanitizers, whose own allocator interposition must stay
/// in charge. Like peak RSS this is reporting-only telemetry — it never
/// feeds a fingerprint.
std::uint64_t allocation_count();

/// Memory telemetry for bench reports: process peak RSS (getrusage high
/// water, via PhaseProfiler so the one-clock-reader rule has a single home)
/// and cumulative heap allocation count. Excluded from fingerprints by
/// construction — RunResult never sees either number.
struct MemoryStats {
  std::int64_t peak_rss_kb = 0;
  std::uint64_t allocations = 0;
};

inline MemoryStats read_memory_stats() {
  MemoryStats stats;
  stats.peak_rss_kb = obs::PhaseProfiler::peak_rss_bytes() / 1024;
  stats.allocations = allocation_count();
  return stats;
}

/// Parse `key=value` CLI overrides into a Config.
inline Config parse_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return Config::from_args(args);
}

/// Standard banner so bench outputs are self-describing in logs.
inline void banner(const std::string& experiment,
                   const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << experiment << '\n'
            << "Reproduces: " << paper_reference << '\n'
            << "==============================================================\n";
}

/// `progress=1`: live completed/total meter on stderr for run_parallel
/// sweeps (stderr so redirected table output stays clean). The callback is
/// serialized by run_parallel's annotated mutex; see cluster::SweepProgress.
inline cluster::SweepProgress progress_meter(const Config& cfg) {
  if (!cfg.get_bool("progress", false)) return {};
  return [](std::size_t done, std::size_t total) {
    std::cerr << "\r[sweep " << done << '/' << total << ']'
              << (done == total ? "\n" : "") << std::flush;
  };
}

/// If the run was given `csv=<dir-or-prefix>`, also write `table` as
/// `<prefix><name>.csv` so figure series can be re-plotted externally.
inline void maybe_write_csv(const Config& cfg, const std::string& name,
                            const AsciiTable& table) {
  const std::string prefix = cfg.get_string("csv", "");
  if (prefix.empty()) return;
  const std::string path = prefix + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  table.to_csv(out);
  std::cout << "[csv written: " << path << "]\n";
}

}  // namespace dare::bench
