// Table II: disk (read) and network bandwidth in MB/s for the CCT and EC2
// clusters (min / mean / max / standard deviation), measured hdparm- and
// iperf-style against the simulated substrate.
//
// Overrides: nodes=<n> samples=<n> pairs=<n> seed=<n>
#include "bench_common.h"
#include "common/stats.h"
#include "net/measurement.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto samples = static_cast<std::size_t>(cfg.get_int("samples", 50));
  const auto pairs = static_cast<std::size_t>(cfg.get_int("pairs", 2000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 2));

  bench::banner("Table II — disk (read) and network bandwidth (MB/s)",
                "DARE (CLUSTER'11) Table II");

  AsciiTable table({"measurement", "min", "mean", "max", "std. dev."});
  double disk_mean[2] = {0, 0};
  double net_mean[2] = {0, 0};
  int i = 0;
  for (const auto& profile : {net::cct_profile(nodes),
                              net::ec2_profile(nodes)}) {
    Rng rng(seed);
    net::Topology topo(profile.topology, rng);
    net::Network network(profile, topo, rng);
    const std::string label = profile.name == "cct" ? "CCT" : "EC2";

    const auto disk = net::disk_bandwidth_samples(profile, nodes, samples, rng);
    const auto drow = summarize(label + " disk bandwidth", disk);
    table.add_row({drow.label, fmt_fixed(drow.min, 1), fmt_fixed(drow.mean, 1),
                   fmt_fixed(drow.max, 1), fmt_fixed(drow.stddev, 2)});

    const auto iperf = net::iperf_samples(network, pairs, rng);
    const auto nrow = summarize(label + " network bandwidth", iperf);
    table.add_row({nrow.label, fmt_fixed(nrow.min, 1), fmt_fixed(nrow.mean, 1),
                   fmt_fixed(nrow.max, 1), fmt_fixed(nrow.stddev, 2)});
    disk_mean[i] = drow.mean;
    net_mean[i] = nrow.mean;
    ++i;
  }
  table.print(std::cout, "\nBandwidth in MB/s");
  std::cout << "\nnetwork/disk bandwidth ratio: CCT "
            << fmt_percent(net_mean[0] / disk_mean[0], 1) << ", EC2 "
            << fmt_percent(net_mean[1] / disk_mean[1], 1)
            << " (paper: 74.6% vs 51.75% — the CCT ratio must be ~40% "
               "higher)\n";
  std::cout << "Paper reference: CCT disk 145.3/157.8/167.0/8.02, "
               "CCT net 115.4/117.7/118.0/0.65,\n"
               "                 EC2 disk 67.1/141.5/357.9/74.2, "
               "EC2 net 5.8/73.2/109.9/16.9\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"pairs", "samples"}));
}
