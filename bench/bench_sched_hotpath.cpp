// Microbenchmarks for the scheduler hot path (google-benchmark).
//
// Pairs each seed-era implementation with its PR replacement so the
// speedups are measurable in isolation:
//   * find_local_map: linear scan over pending maps  vs  inverted index
//   * FairScheduler::select_map ordering: stable_sort per opportunity  vs
//     incrementally-maintained share set
//   * EventQueue: schedule + fire throughput of the slab/freelist design
//     (callbacks sized like simulation callbacks, i.e. beyond
//     std::function's small-object buffer).
//
// Run with --benchmark_filter=... to narrow; plain invocation runs all.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/fair_scheduler.h"
#include "sched/job_table.h"
#include "sched/locality_index.h"
#include "sim/event_queue.h"

namespace dare::sched {
namespace {

constexpr std::size_t kNodes = 50;
constexpr std::size_t kRacks = 5;
constexpr int kReplication = 3;

std::vector<RackId> node_racks() {
  std::vector<RackId> racks(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    racks[n] = static_cast<RackId>(n % kRacks);
  }
  return racks;
}

/// Deterministic synthetic replica map: block b lives on kReplication
/// consecutive nodes starting at (b * 7) % kNodes.
std::vector<NodeId> replica_nodes(BlockId b) {
  std::vector<NodeId> nodes;
  const auto base = static_cast<std::size_t>(b * 7) % kNodes;
  for (int r = 0; r < kReplication; ++r) {
    nodes.push_back(static_cast<NodeId>((base + static_cast<std::size_t>(r) *
                                                    11) %
                                        kNodes));
  }
  // Dedup (base+11, base+22 collisions are possible for small kNodes).
  std::vector<NodeId> unique;
  for (NodeId n : nodes) {
    bool seen = false;
    for (NodeId u : unique) seen = seen || u == n;
    if (!seen) unique.push_back(n);
  }
  return unique;
}

class FakeLocator final : public BlockLocator {
 public:
  explicit FakeLocator(std::size_t num_blocks) : racks_(node_racks()) {
    for (BlockId b = 0; b < static_cast<BlockId>(num_blocks); ++b) {
      for (NodeId n : replica_nodes(b)) holders_[b].insert(n);
    }
  }
  bool is_local(NodeId node, BlockId block) const override {
    const auto it = holders_.find(block);
    return it != holders_.end() && it->second.count(node) != 0;
  }
  bool is_rack_local(NodeId node, BlockId block) const override {
    const auto it = holders_.find(block);
    if (it == holders_.end()) return false;
    for (NodeId h : it->second) {
      if (racks_[static_cast<std::size_t>(h)] ==
          racks_[static_cast<std::size_t>(node)]) {
        return true;
      }
    }
    return false;
  }

 private:
  std::unordered_map<BlockId, std::unordered_set<NodeId>> holders_;
  std::vector<RackId> racks_;
};

JobSpec pending_heavy_job(JobId id, std::size_t maps) {
  JobSpec spec;
  spec.id = id;
  spec.reduces = 0;
  for (std::size_t m = 0; m < maps; ++m) {
    MapTaskSpec task;
    task.block = static_cast<BlockId>(m);
    task.bytes = 1;
    spec.maps.push_back(task);
  }
  return spec;
}

void BM_FindLocalMap_Scan(benchmark::State& state) {
  const auto maps = static_cast<std::size_t>(state.range(0));
  FakeLocator locator(maps);
  JobTable table;
  table.add_job(pending_heavy_job(1, maps));
  NodeId node = 0;
  for (auto _ : state) {
    auto found = table.find_local_map(1, node, locator);
    benchmark::DoNotOptimize(found);
    node = static_cast<NodeId>((node + 1) % kNodes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FindLocalMap_Indexed(benchmark::State& state) {
  const auto maps = static_cast<std::size_t>(state.range(0));
  FakeLocator locator(maps);
  LocalityIndex index(kNodes, node_racks(), kRacks);
  for (BlockId b = 0; b < static_cast<BlockId>(maps); ++b) {
    for (NodeId n : replica_nodes(b)) index.replica_added(b, n);
  }
  JobTable table;
  table.attach_locality_index(&index);
  table.add_job(pending_heavy_job(1, maps));
  NodeId node = 0;
  for (auto _ : state) {
    auto found = table.find_local_map(1, node, locator);
    benchmark::DoNotOptimize(found);
    node = static_cast<NodeId>((node + 1) % kNodes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Build a table of `jobs` active jobs with one pending + some running maps
/// so the fair ordering has real work to do. Blocks are chosen so no job is
/// ever local to the probed node: select_map walks the full fair order and
/// returns nothing (a pure measurement of the ordering machinery).
void run_fair_select(benchmark::State& state, bool incremental) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  // One far-future block shared by all: replica_nodes(b) never includes the
  // probe node because we probe node kNodes - 1 and pick blocks that miss it.
  FakeLocator locator(0);  // no replicas at all: nothing is ever local
  JobTable table;
  LocalityIndex index(kNodes, node_racks(), kRacks);
  if (incremental) table.attach_locality_index(&index);
  for (std::size_t j = 0; j < jobs; ++j) {
    auto spec = pending_heavy_job(static_cast<JobId>(j), 4);
    table.add_job(spec);
    // Vary running counts so shares differ and the sort is non-trivial.
    if (j % 3 != 0) {
      table.launch_map(static_cast<JobId>(j), 0, Locality::kOffRack);
      if (j % 3 == 2) {
        table.launch_map(static_cast<JobId>(j), 0, Locality::kOffRack);
      }
    }
  }
  FairScheduler scheduler(/*node_delay=*/1000000, /*rack_delay=*/1000000,
                          incremental);
  SimTime now = 1;
  for (auto _ : state) {
    auto selection = scheduler.select_map(0, now, table, locator);
    benchmark::DoNotOptimize(selection);
    ++now;  // keep every job inside its delay window (always declined)
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FairSelect_LegacySort(benchmark::State& state) {
  run_fair_select(state, /*incremental=*/false);
}

void BM_FairSelect_Incremental(benchmark::State& state) {
  run_fair_select(state, /*incremental=*/true);
}

void BM_EventQueue_ScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  // Capture payload comparable to the cluster's completion callbacks
  // (this + ids + flags ~ 40-56 bytes): beyond std::function's inline
  // buffer, within InlineFunction's.
  struct Payload {
    std::uint64_t a = 1, b = 2, c = 3;
    std::uint32_t d = 4, e = 5;
  };
  std::uint64_t sink = 0;
  SimTime t = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      Payload p;
      p.a = i;
      queue.schedule(++t, [p, &sink] { sink += p.a + p.d; });
    }
    while (!queue.empty()) queue.pop_and_run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}

BENCHMARK(BM_FindLocalMap_Scan)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_FindLocalMap_Indexed)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_FairSelect_LegacySort)->Arg(50)->Arg(500);
BENCHMARK(BM_FairSelect_Incremental)->Arg(50)->Arg(500);
BENCHMARK(BM_EventQueue_ScheduleFire)->Arg(1024);

}  // namespace
}  // namespace dare::sched

BENCHMARK_MAIN();
