// Figure 9: effect of the dynamic replication budget on locality and on
// blocks created per job, for (a) greedy LRU eviction and (b) ElephantTrap
// eviction (threshold=1; p = 0.9 and p = 0.3), on workload wl2.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Fig. 9 — sensitivity to the replication budget (wl2)",
                "DARE (CLUSTER'11) Fig. 9a/9b");

  const auto wl = cluster::standard_wl2(nodes, jobs, seed);
  const std::vector<double> budgets = {0.05, 0.1, 0.2, 0.3, 0.4,
                                       0.5, 0.7, 0.9};

  struct Variant {
    std::string label;
    PolicyKind policy;
    double p;
  };
  const std::vector<Variant> variants = {
      {"LRU", PolicyKind::kGreedyLru, 0.0},
      {"ET p=0.9", PolicyKind::kElephantTrap, 0.9},
      {"ET p=0.3", PolicyKind::kElephantTrap, 0.3}};

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& variant : variants) {
    for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
      for (const double budget : budgets) {
        runs.push_back([&, variant, sched, budget] {
          auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                                 sched, variant.policy, seed);
          options.budget_fraction = budget;
          options.trap.p = variant.p;
          options.trap.threshold = 1;
          return cluster::run_once(options, wl);
        });
      }
    }
  }
  const auto results = cluster::run_parallel(runs);

  std::size_t idx = 0;
  for (const auto& variant : variants) {
    AsciiTable table({"budget", "FIFO locality %", "FIFO blocks/job",
                      "Fair locality %", "Fair blocks/job"});
    const std::size_t fifo_base = idx;
    const std::size_t fair_base = idx + budgets.size();
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      const auto& fifo = results[fifo_base + i];
      const auto& fair = results[fair_base + i];
      table.add_row({fmt_fixed(budgets[i], 2),
                     fmt_fixed(fifo.locality * 100.0, 1),
                     fmt_fixed(fifo.blocks_created_per_job, 2),
                     fmt_fixed(fair.locality * 100.0, 1),
                     fmt_fixed(fair.blocks_created_per_job, 2)});
    }
    idx += 2 * budgets.size();
    table.print(std::cout, "\nDARE with " + variant.label + " eviction");
  }

  std::cout << "\nPaper shape: locality is nearly flat in the budget (even "
               "small budgets capture the most popular files); blocks "
               "created per job falls as the budget grows (less churn).\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
