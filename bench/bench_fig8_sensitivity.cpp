// Figure 8: sensitivity of DARE/ElephantTrap to (a) the sampling
// probability p (threshold=1, budget=0.2) and (b) the aging threshold
// (p=0.9, budget=0.5), on workload wl2 under both schedulers. Reports data
// locality and the average number of blocks dynamically created per job.
//
// Overrides: jobs=<n> nodes=<n> seed=<n> progress=1
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Fig. 8 — sensitivity to p and threshold (wl2)",
                "DARE (CLUSTER'11) Fig. 8a/8b");

  const auto wl = cluster::standard_wl2(nodes, jobs, seed);

  // --- (a) sweep p; threshold = 1, budget = 0.2 -------------------------
  const std::vector<double> ps = {0.0, 0.1, 0.2, 0.3, 0.4,
                                  0.5, 0.6, 0.7, 0.8, 0.9};
  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    for (const double p : ps) {
      runs.push_back([&, sched, p] {
        auto options = cluster::paper_defaults(net::cct_profile(nodes), sched,
                                               PolicyKind::kElephantTrap,
                                               seed);
        options.trap.p = p;
        options.trap.threshold = 1;
        options.budget_fraction = 0.2;
        return cluster::run_once(options, wl);
      });
    }
  }
  // --- (b) sweep threshold; p = 0.9, budget = 0.5 (paper parameters) and
  // additionally budget = 0.1, where the budget binds at simulator scale
  // and the competitive-aging mechanism is actually exercised.
  const std::vector<int> thresholds = {1, 2, 3, 4, 5};
  const std::vector<double> threshold_budgets = {0.5, 0.1};
  for (const double budget : threshold_budgets) {
    for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
      for (const int thr : thresholds) {
        runs.push_back([&, sched, thr, budget] {
          auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                                 sched,
                                                 PolicyKind::kElephantTrap,
                                                 seed);
          options.trap.p = 0.9;
          options.trap.threshold = static_cast<std::uint32_t>(thr);
          options.budget_fraction = budget;
          return cluster::run_once(options, wl);
        });
      }
    }
  }
  const auto results =
      cluster::run_parallel(runs, 0, bench::progress_meter(cfg));

  AsciiTable ptable({"p", "FIFO locality %", "FIFO blocks/job",
                     "Fair locality %", "Fair blocks/job"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto& fifo = results[i];
    const auto& fair = results[ps.size() + i];
    ptable.add_row({fmt_fixed(ps[i], 1),
                    fmt_fixed(fifo.locality * 100.0, 1),
                    fmt_fixed(fifo.blocks_created_per_job, 2),
                    fmt_fixed(fair.locality * 100.0, 1),
                    fmt_fixed(fair.blocks_created_per_job, 2)});
  }
  ptable.print(std::cout,
               "\n(8a) Effect of replication probability p "
               "(threshold=1, budget=0.20)");

  std::size_t base = 2 * ps.size();
  for (const double budget : threshold_budgets) {
    AsciiTable ttable({"threshold", "FIFO locality %", "FIFO blocks/job",
                       "Fair locality %", "Fair blocks/job"});
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      const auto& fifo = results[base + i];
      const auto& fair = results[base + thresholds.size() + i];
      ttable.add_row({std::to_string(thresholds[i]),
                      fmt_fixed(fifo.locality * 100.0, 1),
                      fmt_fixed(fifo.blocks_created_per_job, 2),
                      fmt_fixed(fair.locality * 100.0, 1),
                      fmt_fixed(fair.blocks_created_per_job, 2)});
    }
    base += 2 * thresholds.size();
    ttable.print(std::cout, "\n(8b) Effect of eviction threshold (p=0.90, "
                            "budget=" + fmt_fixed(budget, 2) + ")");
    if (budget == 0.5) {
      std::cout << "    (at simulator scale the 0.50 budget never fills, so "
                   "no evictions occur and the threshold\n     is inert — "
                   "the strong form of the paper's own finding that DARE is "
                   "'not too sensitive' to it)\n";
    }
  }

  std::cout << "\nPaper shape: locality rises with p (sweet spot p=0.2-0.3); "
               "higher thresholds slowly reduce locality and slowly raise "
               "replica churn.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
