// Figure 11: uniformity of the replica placement — coefficient of variation
// of the per-node popularity indices before dynamic replication and after a
// full wl1 run with DARE enabled, as a function of the ElephantTrap
// probability p (FIFO scheduler, budget=0.2, threshold=1).
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Fig. 11 — uniformity of the replica placement",
                "DARE (CLUSTER'11) Fig. 11");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);
  const std::vector<double> ps = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const double p : ps) {
    runs.push_back([&, p] {
      auto options = cluster::paper_defaults(
          net::cct_profile(nodes), cluster::SchedulerKind::kFifo,
          cluster::PolicyKind::kElephantTrap, seed);
      options.trap.p = p;
      options.trap.threshold = 1;
      options.budget_fraction = 0.2;
      return cluster::run_once(options, wl);
    });
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable table({"p", "cv before DARE", "cv after DARE"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    table.add_row({fmt_fixed(ps[i], 1), fmt_fixed(results[i].cv_before, 3),
                   fmt_fixed(results[i].cv_after, 3)});
  }
  table.print(std::cout,
              "\nCoefficient of variation of node popularity indices "
              "(smaller = more uniform)");
  std::cout << "\nPaper shape: cv after DARE sits below cv before; the "
               "placement gains significant uniformity by p = 0.2.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
