// Network-fault bench (robustness extension): rack-switch partitions and
// degraded inter-rack uplinks on top of stochastic node churn. Partitioned
// racks stop heartbeating (the name node declares them dead and queues
// repairs for a false positive), reads past the boundary fail fast, and
// heal-time re-registration prunes whatever the repair pipeline duplicated
// in the meantime.
//
// The sweep crosses two partition climates (calm / stormy) with the two
// repair-scheduler policies (plain FIFO vs. the prioritized bandwidth-aware
// scheduler) across every scheduler x cache-policy combination, and reports
// the durability story: data-loss events and how long blocks sat exposed at
// one reachable replica.
//
// Overrides: jobs=<n> nodes=<n> seed=<n> calm_mtbf_s=<s> storm_mtbf_s=<s>
//            progress=1  (plus the cluster-level netfault knobs; see usage)
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::RepairPolicy;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Network faults — rack partitions, degraded uplinks, "
                "prioritized bandwidth-aware repair",
                "robustness extension of DARE (CLUSTER'11)");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  struct Variant {
    std::string label;
    SchedulerKind scheduler;
    PolicyKind policy;
    RepairPolicy repair;
    double partition_mtbf_s;
  };
  const double calm = cfg.get_double("calm_mtbf_s", 240.0);
  const double storm = cfg.get_double("storm_mtbf_s", 90.0);

  std::vector<Variant> variants;
  for (const double mtbf : {calm, storm}) {
    for (const auto repair : {RepairPolicy::kFifo, RepairPolicy::kPrioritized}) {
      for (const auto scheduler : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
        for (const auto policy : {PolicyKind::kVanilla, PolicyKind::kGreedyLru,
                                  PolicyKind::kElephantTrap}) {
          std::string label = mtbf == calm ? "calm" : "storm";
          label += repair == RepairPolicy::kFifo ? " / fifo-rep" : " / prio-rep";
          label += scheduler == SchedulerKind::kFifo ? " / fifo" : " / fair";
          label += policy == PolicyKind::kVanilla     ? " / vanilla"
                   : policy == PolicyKind::kGreedyLru ? " / dare-lru"
                                                      : " / dare-et";
          variants.push_back({label, scheduler, policy, repair, mtbf});
        }
      }
    }
  }

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& variant : variants) {
    runs.push_back([&, variant] {
      // ec2 profile: multi-rack, so partitions actually cut something.
      auto options = cluster::paper_defaults(net::ec2_profile(nodes),
                                             variant.scheduler,
                                             variant.policy, seed);
      options.faults.enabled = true;
      options.faults.mtbf_s = 180.0;
      options.faults.mttr_s = 30.0;
      options.faults.permanent_fraction = 0.15;
      options.faults.min_live_workers = 4;
      options.netfault.enabled = true;
      options.netfault.partition_mtbf_s = variant.partition_mtbf_s;
      options.netfault.partition_duration_s = 20.0;
      options.netfault.link_degrade_mtbf_s = 120.0;
      options.netfault.link_degrade_duration_s = 40.0;
      options.repair_policy = variant.repair;
      options.rereplication_interval = from_seconds(1.0);
      options.rereplication_batch = 32;
      // Cluster-level knobs (bandwidth_cut, repairs_per_uplink, ...) remain
      // overridable from the command line for ad-hoc sweeps.
      options = cluster::apply_overrides(options, cfg);
      options.scheduler = variant.scheduler;
      options.policy = variant.policy;
      options.repair_policy = variant.repair;
      options.netfault.partition_mtbf_s = variant.partition_mtbf_s;
      return cluster::run_once(options, wl);
    });
  }
  const auto results =
      cluster::run_parallel(runs, 0, bench::progress_meter(cfg));

  AsciiTable table({"configuration", "locality %", "GMTT (s)", "partitions",
                    "healed", "unreach reads", "retries", "preempt",
                    "data loss", "1-rep wins", "1-rep (s)"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].label, fmt_fixed(r.locality * 100.0, 1),
                   fmt_fixed(r.gmtt_s, 2),
                   std::to_string(r.partition_episodes),
                   std::to_string(r.partitions_healed),
                   std::to_string(r.unreachable_reads),
                   std::to_string(r.repair_retries),
                   std::to_string(r.repair_preemptions),
                   std::to_string(r.data_loss_events),
                   std::to_string(r.one_replica_windows),
                   fmt_fixed(r.one_replica_total_s, 1)});
  }
  table.print(std::cout,
              "\nPartition climates: calm (mtbf " + fmt_fixed(calm, 0) +
                  " s) vs storm (mtbf " + fmt_fixed(storm, 0) +
                  " s), 20 s episodes; churn mtbf 180 s underneath");
  std::cout << "\nExpected: the prioritized repair scheduler cuts "
               "one-replica exposure by up to an order\nof magnitude "
               "(critical blocks jump the bulk backlog) and lowers GMTT — "
               "which also ends\nruns sooner, so fewer episodes and retries "
               "accrue on the same stochastic clock.\nPreemption counts are "
               "per-tick bulk deferrals and are nonzero only for prio-rep;\n"
               "the gap widens from calm to storm.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(
      argc, argv, {"jobs", "calm_mtbf_s", "storm_mtbf_s"}));
}
