// Figure 1: distribution of the number of router hops between any two nodes
// of a 20-node EC2 allocation (proportion of node pairs per hop count).
//
// Overrides: nodes=<n> placements=<n> seed=<n>
#include "bench_common.h"
#include "net/measurement.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto placements =
      static_cast<std::size_t>(cfg.get_int("placements", 50));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));

  bench::banner(
      "Fig. 1 — hop-count distribution between nodes of an EC2 cluster",
      "DARE (CLUSTER'11) Fig. 1");

  // Average over many random instance placements (one real allocation is a
  // single draw from the same process).
  const auto profile = net::ec2_profile(nodes);
  std::vector<double> accumulated(11, 0.0);
  Rng rng(seed);
  for (std::size_t i = 0; i < placements; ++i) {
    net::Topology topo(profile.topology, rng);
    const auto dist = net::hop_count_distribution(topo, 10);
    for (std::size_t h = 0; h < dist.size(); ++h) {
      accumulated[h] += dist[h];
    }
  }
  for (auto& p : accumulated) p /= static_cast<double>(placements);

  AsciiTable table({"hop count", "proportion of node pairs"});
  for (std::size_t h = 0; h <= 10; ++h) {
    table.add_row({std::to_string(h), fmt_fixed(accumulated[h], 3)});
  }
  table.print(std::cout, "\nProportion of node pairs per hop count");
  std::cout << "\nPaper shape: mode at 4 hops (~0.45 of pairs); an in-house "
               "cluster of this size would be 1-2 hops.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"placements"}));
}
