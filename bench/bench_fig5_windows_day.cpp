// Figure 5: the Fig. 4 window analysis restricted to a single day (day 2 of
// the trace). The paper's shape: within one day, the significant accesses of
// most files lie within about one hour.
//
// Overrides: files=<n> accesses=<n> seed=<n> day=<n>
#include "analysis/trace_analysis.h"
#include "bench_common.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  workload::YahooTraceOptions opts;
  opts.files = static_cast<std::size_t>(cfg.get_int("files", 2000));
  opts.total_accesses =
      static_cast<std::size_t>(cfg.get_int("accesses", 200000));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  const auto day = static_cast<std::int64_t>(cfg.get_int("day", 2));

  bench::banner(
      "Fig. 5 — 80% windows within a single day (day " +
          std::to_string(day) + ")",
      "DARE (CLUSTER'11) Fig. 5a/5b");

  const auto trace = workload::generate_yahoo_trace(opts);

  const SimTime day_begin = from_seconds(static_cast<double>(day - 1) *
                                         24 * 3600.0);
  const SimTime day_end = from_seconds(static_cast<double>(day) * 24 * 3600.0);

  for (const bool weighted : {false, true}) {
    analysis::WindowOptions wopts;
    wopts.begin = day_begin;
    wopts.end = day_end;
    wopts.weight_by_accesses = weighted;
    const auto dist = analysis::burst_window_distribution(trace, wopts);

    AsciiTable table({"window size (hours)", "fraction of files"});
    for (std::size_t w = 1; w < dist.fraction.size() && w <= 24; ++w) {
      if (dist.fraction[w] > 0.0) {
        table.add_row({std::to_string(w), fmt_fixed(dist.fraction[w], 3)});
      }
    }
    table.print(std::cout,
                weighted
                    ? "\n(5b) Each file weighted by its number of accesses"
                    : "\n(5a) All accesses weighted equally");
    std::cout << "(files considered: " << dist.files_considered << ")\n";
  }
  std::cout << "\nPaper shape: within a day, most significant file accesses "
               "lie within one hour.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"accesses", "day", "files"}));
}
