// Figure 7 (a, b, c): data locality, normalized GMTT, and mean slowdown on
// the dedicated 20-node CCT cluster, for FIFO and Fair schedulers, workloads
// wl1 and wl2, and three replication configurations: vanilla Hadoop,
// DARE/greedy-LRU, and DARE/ElephantTrap (p=0.3, threshold=1, budget=0.2).
// Each cell is averaged over `seeds` independent replications (workload and
// cluster seeds both vary).
//
// Runs on cluster::ExperimentFarm: each grid cell is a self-contained,
// keyed work item, so `journal=<path>` makes the sweep resumable after an
// interruption (completed cells replay from the journal bit-identically).
//
// Overrides: jobs=<n> nodes=<n> seed=<n> seeds=<n> journal=<path>
//            threads=<n> progress=1
#include "bench_common.h"
#include "cluster/farm.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const auto replications =
      static_cast<std::size_t>(cfg.get_int("seeds", 3));

  bench::banner("Fig. 7 — job performance in the 20-node CCT cluster",
                "DARE (CLUSTER'11) Fig. 7a/7b/7c");

  const std::vector<std::pair<SchedulerKind, std::string>> schedulers = {
      {SchedulerKind::kFifo, "FIFO"}, {SchedulerKind::kFair, "Fair"}};
  const std::vector<std::pair<PolicyKind, std::string>> policies = {
      {PolicyKind::kVanilla, "Vanilla Hadoop"},
      {PolicyKind::kGreedyLru, "DARE, LRU eviction"},
      {PolicyKind::kElephantTrap, "DARE, ElephantTrap"}};

  // Run the full 2x2x3xseeds grid on the experiment farm: one
  // self-contained item per cell replication. Workload seeds follow the
  // original scheme (wl1: seed+10r, wl2: seed+10r+1, cluster: seed+100r),
  // so every policy/scheduler cell replays the identical job stream.
  const std::vector<std::string> policy_keys = {"vanilla", "lru",
                                                "elephant-trap"};
  std::vector<Config> items;
  for (std::size_t w = 0; w < 2; ++w) {
    for (const auto& [sched, sched_name] : schedulers) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t r = 0; r < replications; ++r) {
          Config item;
          item.set("profile", "cct");
          item.set("nodes", std::to_string(nodes));
          item.set("scheduler",
                   sched == SchedulerKind::kFifo ? "fifo" : "fair");
          item.set("policy", policy_keys[p]);
          item.set("seed", std::to_string(seed + 100 * r));
          item.set("workload", w == 0 ? "wl1" : "wl2");
          item.set("jobs", std::to_string(jobs));
          item.set("wl_seed", std::to_string(seed + 10 * r + w));
          items.push_back(std::move(item));
        }
      }
    }
  }
  cluster::ExperimentFarm::Options farm_options;
  farm_options.threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
  farm_options.journal_path = cfg.get_string("journal", "");
  farm_options.progress = bench::progress_meter(cfg);
  cluster::ExperimentFarm farm(std::move(items), farm_options);
  const auto results = farm.run();

  // Seed-averaged aggregates per cell.
  struct Cell {
    double locality = 0.0;
    double gmtt_s = 0.0;
    double slowdown = 0.0;
  };
  std::vector<Cell> cells;
  std::size_t idx = 0;
  for (std::size_t cell = 0; cell < 2 * 2 * 3; ++cell) {
    Cell c;
    for (std::size_t r = 0; r < replications; ++r) {
      // metric() round-trips through the farm row's shortest-form decimal
      // rendering, which parses back to the exact double — cell averages
      // are bit-identical whether the item ran fresh or replayed from a
      // journal.
      c.locality += results[idx].metric("locality");
      c.gmtt_s += results[idx].metric("gmtt_s");
      c.slowdown += results[idx].metric("mean_slowdown");
      ++idx;
    }
    c.locality /= static_cast<double>(replications);
    c.gmtt_s /= static_cast<double>(replications);
    c.slowdown /= static_cast<double>(replications);
    cells.push_back(c);
  }

  // Fig. 7a: data locality; 7b: GMTT normalized to vanilla; 7c: slowdown.
  AsciiTable locality({"scheduler/workload", "vanilla", "dare-lru",
                       "dare-elephanttrap"});
  AsciiTable gmtt({"scheduler/workload", "vanilla", "dare-lru",
                   "dare-elephanttrap", "(abs vanilla, s)"});
  AsciiTable slowdown({"scheduler/workload", "vanilla", "dare-lru",
                       "dare-elephanttrap"});

  idx = 0;
  for (const std::string wl_name : {"wl1", "wl2"}) {
    for (const auto& [sched, sched_name] : schedulers) {
      const auto& vanilla = cells[idx];
      const auto& lru = cells[idx + 1];
      const auto& trap = cells[idx + 2];
      idx += 3;
      const std::string row = sched_name + " (" + wl_name + ")";
      locality.add_row({row, fmt_fixed(vanilla.locality, 3),
                        fmt_fixed(lru.locality, 3),
                        fmt_fixed(trap.locality, 3)});
      gmtt.add_row({row, "1.000",
                    fmt_fixed(lru.gmtt_s / vanilla.gmtt_s, 3),
                    fmt_fixed(trap.gmtt_s / vanilla.gmtt_s, 3),
                    fmt_fixed(vanilla.gmtt_s, 2)});
      slowdown.add_row({row, fmt_fixed(vanilla.slowdown, 3),
                        fmt_fixed(lru.slowdown, 3),
                        fmt_fixed(trap.slowdown, 3)});
    }
  }
  locality.print(std::cout, "\n(7a) Data locality of jobs (higher is better)");
  gmtt.print(std::cout,
             "\n(7b) Geometric mean turnaround time, normalized to vanilla "
             "(lower is better)");
  slowdown.print(std::cout, "\n(7c) Mean slowdown (lower is better)");
  bench::maybe_write_csv(cfg, "fig7a_locality", locality);
  bench::maybe_write_csv(cfg, "fig7b_gmtt", gmtt);
  bench::maybe_write_csv(cfg, "fig7c_slowdown", slowdown);
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs", "journal", "seeds", "threads"}));
}
