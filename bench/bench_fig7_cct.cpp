// Figure 7 (a, b, c): data locality, normalized GMTT, and mean slowdown on
// the dedicated 20-node CCT cluster, for FIFO and Fair schedulers, workloads
// wl1 and wl2, and three replication configurations: vanilla Hadoop,
// DARE/greedy-LRU, and DARE/ElephantTrap (p=0.3, threshold=1, budget=0.2).
// Each cell is averaged over `seeds` independent replications (workload and
// cluster seeds both vary).
//
// Overrides: jobs=<n> nodes=<n> seed=<n> seeds=<n>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const auto replications =
      static_cast<std::size_t>(cfg.get_int("seeds", 3));

  bench::banner("Fig. 7 — job performance in the 20-node CCT cluster",
                "DARE (CLUSTER'11) Fig. 7a/7b/7c");

  const std::vector<std::pair<SchedulerKind, std::string>> schedulers = {
      {SchedulerKind::kFifo, "FIFO"}, {SchedulerKind::kFair, "Fair"}};
  const std::vector<std::pair<PolicyKind, std::string>> policies = {
      {PolicyKind::kVanilla, "Vanilla Hadoop"},
      {PolicyKind::kGreedyLru, "DARE, LRU eviction"},
      {PolicyKind::kElephantTrap, "DARE, ElephantTrap"}};

  // One workload instance per (name, replication); generated up front so
  // every policy/scheduler cell replays the identical job stream.
  std::vector<std::vector<workload::Workload>> workloads(2);
  for (std::size_t r = 0; r < replications; ++r) {
    workloads[0].push_back(cluster::standard_wl1(nodes, jobs, seed + 10 * r));
    workloads[1].push_back(
        cluster::standard_wl2(nodes, jobs, seed + 10 * r + 1));
  }

  // Run the full 2x2x3xseeds grid in parallel.
  std::vector<std::function<metrics::RunResult()>> runs;
  for (std::size_t w = 0; w < 2; ++w) {
    for (const auto& [sched, sched_name] : schedulers) {
      for (const auto& [policy, policy_name] : policies) {
        for (std::size_t r = 0; r < replications; ++r) {
          const auto* wl_ptr = &workloads[w][r];
          runs.push_back([=]() {
            auto options = cluster::paper_defaults(
                net::cct_profile(nodes), sched, policy, seed + 100 * r);
            return cluster::run_once(options, *wl_ptr);
          });
        }
      }
    }
  }
  const auto results = cluster::run_parallel(runs);

  // Seed-averaged aggregates per cell.
  struct Cell {
    double locality = 0.0;
    double gmtt_s = 0.0;
    double slowdown = 0.0;
  };
  std::vector<Cell> cells;
  std::size_t idx = 0;
  for (std::size_t cell = 0; cell < 2 * 2 * 3; ++cell) {
    Cell c;
    for (std::size_t r = 0; r < replications; ++r) {
      c.locality += results[idx].locality;
      c.gmtt_s += results[idx].gmtt_s;
      c.slowdown += results[idx].mean_slowdown;
      ++idx;
    }
    c.locality /= static_cast<double>(replications);
    c.gmtt_s /= static_cast<double>(replications);
    c.slowdown /= static_cast<double>(replications);
    cells.push_back(c);
  }

  // Fig. 7a: data locality; 7b: GMTT normalized to vanilla; 7c: slowdown.
  AsciiTable locality({"scheduler/workload", "vanilla", "dare-lru",
                       "dare-elephanttrap"});
  AsciiTable gmtt({"scheduler/workload", "vanilla", "dare-lru",
                   "dare-elephanttrap", "(abs vanilla, s)"});
  AsciiTable slowdown({"scheduler/workload", "vanilla", "dare-lru",
                       "dare-elephanttrap"});

  idx = 0;
  for (const std::string wl_name : {"wl1", "wl2"}) {
    for (const auto& [sched, sched_name] : schedulers) {
      const auto& vanilla = cells[idx];
      const auto& lru = cells[idx + 1];
      const auto& trap = cells[idx + 2];
      idx += 3;
      const std::string row = sched_name + " (" + wl_name + ")";
      locality.add_row({row, fmt_fixed(vanilla.locality, 3),
                        fmt_fixed(lru.locality, 3),
                        fmt_fixed(trap.locality, 3)});
      gmtt.add_row({row, "1.000",
                    fmt_fixed(lru.gmtt_s / vanilla.gmtt_s, 3),
                    fmt_fixed(trap.gmtt_s / vanilla.gmtt_s, 3),
                    fmt_fixed(vanilla.gmtt_s, 2)});
      slowdown.add_row({row, fmt_fixed(vanilla.slowdown, 3),
                        fmt_fixed(lru.slowdown, 3),
                        fmt_fixed(trap.slowdown, 3)});
    }
  }
  locality.print(std::cout, "\n(7a) Data locality of jobs (higher is better)");
  gmtt.print(std::cout,
             "\n(7b) Geometric mean turnaround time, normalized to vanilla "
             "(lower is better)");
  slowdown.print(std::cout, "\n(7c) Mean slowdown (lower is better)");
  bench::maybe_write_csv(cfg, "fig7a_locality", locality);
  bench::maybe_write_csv(cfg, "fig7b_gmtt", gmtt);
  bench::maybe_write_csv(cfg, "fig7c_slowdown", slowdown);
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv));
}
