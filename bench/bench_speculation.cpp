// Speculative-execution bench (extension; motivated by Section II-B: EC2's
// processor sharing makes node performance unpredictable — the reason the
// paper cites the LATE work [26]). Shows how stragglers hurt turnaround on
// a virtualized cluster, how Hadoop-style backup tasks recover most of the
// loss, and that DARE composes with speculation (a local backup attempt is
// cheap; locality makes speculation cheaper).
//
// Overrides: jobs=<n> nodes=<n> seed=<n> stragglers=<frac> slowdown=<x>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 250));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const double stragglers = cfg.get_double("stragglers", 0.2);
  const double slowdown = cfg.get_double("slowdown", 5.0);

  bench::banner("Speculative execution under stragglers (EC2 profile)",
                "extension of DARE (CLUSTER'11) Section II-B");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  struct Variant {
    std::string label;
    PolicyKind policy;
    bool stragglers;
    bool speculation;
  };
  const std::vector<Variant> variants = {
      {"clean cluster", PolicyKind::kVanilla, false, false},
      {"stragglers, no speculation", PolicyKind::kVanilla, true, false},
      {"stragglers + speculation", PolicyKind::kVanilla, true, true},
      {"stragglers + speculation + DARE", PolicyKind::kElephantTrap, true,
       true},
  };

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& variant : variants) {
    runs.push_back([&, variant] {
      auto options = cluster::paper_defaults(net::ec2_profile(nodes),
                                             SchedulerKind::kFifo,
                                             variant.policy, seed);
      if (variant.stragglers) {
        options.profile.straggler_fraction = stragglers;
        options.profile.straggler_slowdown = slowdown;
      }
      options.enable_speculation = variant.speculation;
      return cluster::run_once(options, wl);
    });
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable table({"configuration", "GMTT (s)", "mean slowdown",
                    "backups launched", "backup wins", "killed"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].label, fmt_fixed(r.gmtt_s, 2),
                   fmt_fixed(r.mean_slowdown, 2),
                   std::to_string(r.speculative_launched),
                   std::to_string(r.speculative_wins),
                   std::to_string(r.speculative_killed)});
  }
  table.print(std::cout,
              "\n" + fmt_percent(stragglers, 0) + " of nodes slowed " +
                  fmt_fixed(slowdown, 1) + "x (FIFO, wl1, EC2 profile)");
  std::cout << "\nExpected: stragglers inflate GMTT well beyond the clean "
               "cluster. Speculation recovers part of the\ntail latency — "
               "the rest is cluster *capacity* lost to slow nodes, which no "
               "backup task restores.\nDARE composes: its locality gains are "
               "orthogonal to the straggler mitigation.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs", "slowdown"}));
}
