// Clone-vs-speculate-vs-nothing sweep (extension; motivated by Section
// II-B's unpredictable node performance and the LATE work [26] the paper
// cites). Under heavy-tailed task inflation and degraded-mode nodes,
// compares four mitigation stances — nothing, reactive speculation,
// budgeted proactive cloning, and cloning plus progress-rate straggler
// detection — across three environments (quiet, stragglers, stragglers +
// node churn).
//
// Reported per cell: GMTT, p95 turnaround (the tail the mitigations
// target), locality, clone/speculation activity, wasted clone work
// (runtime burned by losing clones = the budget's overhead), and the extra
// input reads clones cost (each clone re-reads its task's input block).
//
// Overrides: jobs=<n> nodes=<n> seed=<n> tail_prob=<p> tail_cap=<x>
//            clone_budget=<frac> csv=<prefix> progress=0|1
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

double p95_turnaround(const metrics::RunResult& r) {
  std::vector<double> t;
  t.reserve(r.jobs.size());
  for (const auto& jm : r.jobs) {
    if (!jm.failed) t.push_back(jm.turnaround_s());
  }
  if (t.empty()) return 0.0;
  std::sort(t.begin(), t.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(t.size()))) - 1;
  return t[std::min(idx, t.size() - 1)];
}

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 250));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const double tail_prob = cfg.get_double("tail_prob", 0.15);
  const double tail_cap = cfg.get_double("tail_cap", 12.0);
  const double clone_budget = cfg.get_double("clone_budget", 0.15);

  bench::banner("Budgeted task cloning vs speculation under heavy-tailed "
                "stragglers (EC2 profile)",
                "extension of DARE (CLUSTER'11) Section II-B");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  struct Mitigation {
    std::string label;
    bool speculation;
    bool cloning;
    bool detection;
  };
  const std::vector<Mitigation> mitigations = {
      {"nothing", false, false, false},
      {"speculation", true, false, false},
      {"cloning", false, true, false},
      {"cloning+detect", false, true, true},
  };
  struct Environment {
    std::string label;
    bool stragglers;
    bool churn;
  };
  const std::vector<Environment> environments = {
      {"quiet", false, false},
      {"stragglers", true, false},
      {"stragglers+churn", true, true},
  };

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& env : environments) {
    for (const auto& mit : mitigations) {
      runs.push_back([&, env, mit] {
        auto options = cluster::paper_defaults(net::ec2_profile(nodes),
                                               SchedulerKind::kFair,
                                               PolicyKind::kElephantTrap,
                                               seed);
        if (env.stragglers) {
          options.stragglers.enabled = true;
          options.stragglers.degrade_mtbf_s = 180.0;
          options.stragglers.degrade_duration_s = 45.0;
          options.stragglers.compute_slowdown = 4.0;
          options.stragglers.disk_slowdown = 2.5;
          options.stragglers.rack_correlation = 0.2;
          options.stragglers.tail_prob = tail_prob;
          options.stragglers.tail_alpha = 1.1;
          options.stragglers.tail_cap = tail_cap;
        }
        if (env.churn) {
          options.faults.enabled = true;
          options.faults.mtbf_s = 120.0;
          options.faults.mttr_s = 30.0;
          options.faults.permanent_fraction = 0.2;
          options.faults.min_live_workers = 4;
          options.rereplication_interval = from_seconds(2.0);
        }
        options.enable_speculation = mit.speculation;
        options.enable_task_cloning = mit.cloning;
        options.clone_budget_fraction = clone_budget;
        options.enable_straggler_detection = mit.detection;
        return cluster::run_once(options, wl);
      });
    }
  }
  const auto results =
      cluster::run_parallel(runs, 0, bench::progress_meter(cfg));

  AsciiTable table({"environment", "mitigation", "GMTT (s)", "p95 (s)",
                    "locality %", "clones", "clone wins", "wasted (s)",
                    "clone reads", "spec", "spec wins", "detected",
                    "failed jobs"});
  std::size_t i = 0;
  for (const auto& env : environments) {
    for (const auto& mit : mitigations) {
      const auto& r = results[i++];
      table.add_row({env.label, mit.label, fmt_fixed(r.gmtt_s, 2),
                     fmt_fixed(p95_turnaround(r), 2),
                     fmt_fixed(r.locality * 100.0, 1),
                     std::to_string(r.clones_launched),
                     std::to_string(r.clone_wins),
                     fmt_fixed(r.clone_wasted_work_s, 1),
                     std::to_string(r.clones_launched),
                     std::to_string(r.speculative_launched),
                     std::to_string(r.speculative_wins),
                     std::to_string(r.stragglers_detected),
                     std::to_string(r.failed_jobs)});
    }
  }
  table.print(std::cout,
              "\ntail P(inflate) " + fmt_fixed(tail_prob, 2) +
                  ", bounded-Pareto cap " + fmt_fixed(tail_cap, 0) +
                  "x, clone budget " + fmt_percent(clone_budget, 0) +
                  " of map slots (Fair + ElephantTrap, wl1)");
  std::cout
      << "\nExpected: heavy tails inflate the p95 turnaround far more than "
         "the GMTT. Speculation\nreacts once a task is observably slow; "
         "cloning hedges up front and clips the tail at the\ncost of the "
         "wasted work and duplicate input reads reported above; detection "
         "additionally\nsteers launches and read/repair sources away from "
         "persistently slow nodes.\n";
  bench::maybe_write_csv(cfg, "cloning_sweep", table);
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
