// Delay-scheduling sweep (context for the Fair scheduler rows of Figs. 7
// and 10): how the delay window trades waiting for locality, and how DARE
// shifts that tradeoff. With more replicas per popular block, a *shorter*
// delay suffices for the same locality — DARE effectively buys back the
// latency that delay scheduling spends.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 400));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Delay-scheduling sweep — waiting vs locality, with and "
                "without DARE",
                "context for DARE (CLUSTER'11) Fair-scheduler results");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);
  const std::vector<double> delays_ms = {0, 100, 250, 500, 1000, 2000, 4000};

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto policy :
       {PolicyKind::kVanilla, PolicyKind::kElephantTrap}) {
    for (const double delay : delays_ms) {
      runs.push_back([&, policy, delay] {
        auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                               SchedulerKind::kFair, policy,
                                               seed);
        options.fair_delay = from_millis(delay);
        return cluster::run_once(options, wl);
      });
    }
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable table({"delay (ms)", "vanilla locality %", "vanilla GMTT (s)",
                    "DARE locality %", "DARE GMTT (s)"});
  for (std::size_t i = 0; i < delays_ms.size(); ++i) {
    const auto& vanilla = results[i];
    const auto& dare = results[delays_ms.size() + i];
    table.add_row({fmt_fixed(delays_ms[i], 0),
                   fmt_fixed(vanilla.locality * 100.0, 1),
                   fmt_fixed(vanilla.gmtt_s, 2),
                   fmt_fixed(dare.locality * 100.0, 1),
                   fmt_fixed(dare.gmtt_s, 2)});
  }
  table.print(std::cout, "\nFair scheduler, wl1, sweeping the delay window");
  std::cout << "\nExpected: vanilla needs a long delay to reach high "
               "locality (and pays for it in GMTT at the\nextremes); with "
               "DARE's extra replicas even delay=0 starts far higher, and "
               "locality saturates\nwith a much shorter wait.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
