// Figure 10: performance of DARE in a virtualized 100-node EC2 cluster
// (wl1, 500 jobs): (a) data locality, (b) normalized GMTT, (c) mean
// slowdown, for vanilla / LRU / ElephantTrap under FIFO and Fair.
//
// The headline contrast with Fig. 7: the EC2 profile's network/disk
// bandwidth ratio is lower, so the same locality gain buys a larger
// improvement in turnaround and slowdown (paper: 19 % and 25 %).
//
// Runs on cluster::ExperimentFarm: each grid cell is a self-contained,
// keyed work item, so `journal=<path>` makes the sweep resumable after an
// interruption (completed cells replay from the journal bit-identically).
//
// Overrides: jobs=<n> nodes=<n> seed=<n> seeds=<n> journal=<path>
//            threads=<n> progress=1
#include "bench_common.h"
#include "cluster/farm.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 100));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const auto replications = static_cast<std::size_t>(cfg.get_int("seeds", 3));

  bench::banner("Fig. 10 — job performance in a 100-node EC2 cluster (wl1)",
                "DARE (CLUSTER'11) Fig. 10a/10b/10c");

  const std::vector<std::pair<SchedulerKind, std::string>> schedulers = {
      {SchedulerKind::kFifo, "FIFO"}, {SchedulerKind::kFair, "Fair"}};
  const std::vector<PolicyKind> policies = {PolicyKind::kVanilla,
                                            PolicyKind::kGreedyLru,
                                            PolicyKind::kElephantTrap};

  // One self-contained farm item per cell replication; workload and
  // cluster seeds follow the original scheme (wl1: seed+10r, cluster:
  // seed+100r), so every policy/scheduler cell replays the identical job
  // stream.
  const std::vector<std::string> policy_keys = {"vanilla", "lru",
                                                "elephant-trap"};
  std::vector<Config> items;
  for (const auto& [sched, name] : schedulers) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t r = 0; r < replications; ++r) {
        Config item;
        item.set("profile", "ec2");
        item.set("nodes", std::to_string(nodes));
        item.set("scheduler", sched == SchedulerKind::kFifo ? "fifo" : "fair");
        item.set("policy", policy_keys[p]);
        item.set("seed", std::to_string(seed + 100 * r));
        item.set("workload", "wl1");
        item.set("jobs", std::to_string(jobs));
        item.set("wl_seed", std::to_string(seed + 10 * r));
        items.push_back(std::move(item));
      }
    }
  }
  cluster::ExperimentFarm::Options farm_options;
  farm_options.threads = static_cast<std::size_t>(cfg.get_int("threads", 0));
  farm_options.journal_path = cfg.get_string("journal", "");
  farm_options.progress = bench::progress_meter(cfg);
  cluster::ExperimentFarm farm(std::move(items), farm_options);
  const auto results = farm.run();

  struct Cell {
    double locality = 0.0;
    double gmtt_s = 0.0;
    double slowdown = 0.0;
  };
  std::vector<Cell> cells;
  std::size_t idx = 0;
  for (std::size_t cell = 0; cell < schedulers.size() * policies.size();
       ++cell) {
    Cell c;
    for (std::size_t r = 0; r < replications; ++r) {
      // metric() round-trips through the farm row's shortest-form decimal
      // rendering, which parses back to the exact double — cell averages
      // are bit-identical whether the item ran fresh or replayed.
      c.locality += results[idx].metric("locality");
      c.gmtt_s += results[idx].metric("gmtt_s");
      c.slowdown += results[idx].metric("mean_slowdown");
      ++idx;
    }
    c.locality /= static_cast<double>(replications);
    c.gmtt_s /= static_cast<double>(replications);
    c.slowdown /= static_cast<double>(replications);
    cells.push_back(c);
  }

  AsciiTable locality({"scheduler", "vanilla", "dare-lru",
                       "dare-elephanttrap"});
  AsciiTable gmtt({"scheduler", "vanilla", "dare-lru", "dare-elephanttrap",
                   "(abs vanilla, s)"});
  AsciiTable slowdown({"scheduler", "vanilla", "dare-lru",
                       "dare-elephanttrap"});
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    const auto& vanilla = cells[s * 3];
    const auto& lru = cells[s * 3 + 1];
    const auto& trap = cells[s * 3 + 2];
    const std::string& name = schedulers[s].second;
    locality.add_row({name, fmt_fixed(vanilla.locality, 3),
                      fmt_fixed(lru.locality, 3),
                      fmt_fixed(trap.locality, 3)});
    gmtt.add_row({name, "1.000", fmt_fixed(lru.gmtt_s / vanilla.gmtt_s, 3),
                  fmt_fixed(trap.gmtt_s / vanilla.gmtt_s, 3),
                  fmt_fixed(vanilla.gmtt_s, 2)});
    slowdown.add_row({name, fmt_fixed(vanilla.slowdown, 3),
                      fmt_fixed(lru.slowdown, 3),
                      fmt_fixed(trap.slowdown, 3)});
  }
  locality.print(std::cout,
                 "\n(10a) Data locality of jobs (higher is better)");
  gmtt.print(std::cout,
             "\n(10b) GMTT normalized to vanilla (lower is better)");
  slowdown.print(std::cout, "\n(10c) Mean slowdown (lower is better)");
  bench::maybe_write_csv(cfg, "fig10a_locality", locality);
  bench::maybe_write_csv(cfg, "fig10b_gmtt", gmtt);
  bench::maybe_write_csv(cfg, "fig10c_slowdown", slowdown);
  std::cout << "\nPaper shape: locality gains comparable to CCT, but GMTT "
               "improves ~19% and slowdown ~25% — more than on CCT — because "
               "EC2's network/disk bandwidth ratio is lower.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs", "journal", "seeds", "threads"}));
}
