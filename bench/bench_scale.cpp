// Hyperscale scale-curve benchmark (PR8 perf baseline).
//
// Runs the full simulation at three scale points — 100 nodes x 2k jobs
// (paper scale), 1k x 10k, and 10k x 100k — for FIFO/Fair x
// vanilla/elephant-trap, reporting process-CPU ms, peak RSS, and heap
// allocation count per configuration. Each configuration executes in a
// forked child process: the kernel's RSS high-water mark never decreases,
// so per-configuration peaks are only measurable with one process per
// measurement (the fork also isolates the allocation counter).
//
// Writes the results as JSON (default BENCH_PR8.json) for the tracked
// baseline, gated in CI by tools/check_bench_baseline.py (fingerprints
// hard, CPU and RSS with separate tolerances). Overrides:
//   mode=full|smoke   full: all three scale points (the committed curve);
//                     smoke: the 1k x 10k slice only (regular CI runs)
//   repeats=<n>       timed repetitions per config; the minimum is reported
//   json=<path>       output path ("" to skip writing)
//   max_scale=<n>     skip scale points with more than n nodes
//   profile=1         re-run the largest Fair/elephant-trap config in-process
//                     with the PhaseProfiler attached and print the per-phase
//                     CPU attribution + peak RSS
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"
#include "obs/phase_profiler.h"
#include "workload/workload.h"

namespace dare {
namespace {

struct ScalePoint {
  std::size_t nodes = 0;
  std::size_t jobs = 0;
};

struct Row {
  std::size_t nodes = 0;
  std::size_t jobs = 0;
  std::string scheduler;
  std::string policy;
  double cpu_ms = 0.0;
  std::int64_t peak_rss_kb = 0;
  std::uint64_t allocations = 0;
  std::uint64_t fingerprint = 0;
  bool ok = false;
};

/// What the forked child reports back over its pipe.
struct ChildReport {
  double cpu_ms = 0.0;
  std::uint64_t fingerprint = 0;
  std::int64_t peak_rss_kb = 0;
  std::uint64_t allocations = 0;
};

double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

/// The hyperscale wl2 stream: the bench_sched_e2e heavy workload scaled so
/// per-node offered load and catalog-per-node stay constant as the cluster
/// grows (interarrival shrinks and the catalog widens with the node count).
workload::WorkloadOptions scale_workload_options(std::size_t nodes,
                                                 std::size_t jobs) {
  workload::WorkloadOptions wopts;
  wopts.num_jobs = jobs;
  wopts.seed = 7;
  const double factor = static_cast<double>(nodes) / 100.0;
  wopts.small_interarrival_s = 0.002 / factor;
  wopts.catalog.small_files =
      static_cast<std::size_t>(60 * factor < 60 ? 60 : 60 * factor);
  wopts.catalog.small_min_blocks = 2;
  wopts.catalog.small_max_blocks = 6;
  wopts.catalog.large_files =
      static_cast<std::size_t>(12 * factor < 12 ? 12 : 12 * factor);
  wopts.catalog.large_min_blocks = 16;
  wopts.catalog.large_max_blocks = 48;
  wopts.large_period = 20;
  return wopts;
}

cluster::ClusterOptions scale_cluster_options(std::size_t nodes,
                                              cluster::SchedulerKind sched,
                                              cluster::PolicyKind pol) {
  auto opts = cluster::paper_defaults(net::ec2_profile(nodes), sched, pol, 42);
  opts.use_locality_index = true;
  return opts;
}

/// One measured configuration, in-process. Returns the min-over-repeats CPU
/// plus the process-wide memory telemetry (meaningful when this is the only
/// configuration the process ran — see run_in_child).
ChildReport measure(std::size_t nodes, std::size_t jobs,
                    cluster::SchedulerKind sched, cluster::PolicyKind pol,
                    int repeats) {
  const auto wopts = scale_workload_options(nodes, jobs);
  const auto spec = workload::make_wl2_spec(wopts);
  ChildReport report;
  for (int r = 0; r < repeats; ++r) {
    const auto opts = scale_cluster_options(nodes, sched, pol);
    const double t0 = cpu_now_ms();
    cluster::Cluster sim(opts);
    const auto result = sim.run_stream(spec);
    const double ms = cpu_now_ms() - t0;
    if (r == 0 || ms < report.cpu_ms) report.cpu_ms = ms;
    report.fingerprint = metrics::fingerprint(result);
  }
  const auto mem = bench::read_memory_stats();
  report.peak_rss_kb = mem.peak_rss_kb;
  report.allocations = mem.allocations;
  return report;
}

/// Fork-and-measure so every configuration gets a fresh RSS high-water mark
/// and allocation counter. Returns false when the child died abnormally.
bool run_in_child(std::size_t nodes, std::size_t jobs,
                  cluster::SchedulerKind sched, cluster::PolicyKind pol,
                  int repeats, ChildReport* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: measure, ship the POD report, and _exit without running any
    // parent-owned teardown.
    close(fds[0]);
    const ChildReport report = measure(nodes, jobs, sched, pol, repeats);
    const char* bytes = reinterpret_cast<const char*>(&report);
    std::size_t off = 0;
    while (off < sizeof report) {
      const ssize_t n = write(fds[1], bytes + off, sizeof report - off);
      if (n <= 0) _exit(3);
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  char* bytes = reinterpret_cast<char*>(out);
  std::size_t off = 0;
  while (off < sizeof *out) {
    const ssize_t n = read(fds[0], bytes + off, sizeof *out - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return off == sizeof *out && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  using namespace dare;
  const auto cfg = bench::parse_args(argc, argv, {"json", "max_scale", "mode", "profile", "repeats"});
  bench::banner("Hyperscale scale curve (PR8 perf baseline)",
                "infrastructure (no paper figure); ROADMAP hyperscale tier");

  const bool smoke = cfg.get_string("mode", "full") == "smoke";
  const int repeats = static_cast<int>(cfg.get_int("repeats", 1));
  const auto max_scale = static_cast<std::size_t>(
      cfg.get_int("max_scale", 1u << 20));
  const std::string json_path = cfg.get_string("json", "BENCH_PR8.json");

  std::vector<ScalePoint> points;
  if (smoke) {
    points = {{1000, 10000}};
  } else {
    points = {{100, 2000}, {1000, 10000}, {10000, 100000}};
  }
  const std::vector<cluster::SchedulerKind> schedulers = {
      cluster::SchedulerKind::kFifo, cluster::SchedulerKind::kFair};
  const std::vector<cluster::PolicyKind> policies = {
      cluster::PolicyKind::kVanilla, cluster::PolicyKind::kElephantTrap};

  std::vector<Row> rows;
  bool all_ok = true;
  std::printf("%-6s %-7s %-6s %-14s %12s %12s %14s %s\n", "nodes", "jobs",
              "sched", "policy", "cpu_ms", "peak_rss_mb", "allocations",
              "fingerprint");
  for (const auto& point : points) {
    if (point.nodes > max_scale) {
      std::printf("%-6zu %-7zu (skipped: max_scale=%zu)\n", point.nodes,
                  point.jobs, max_scale);
      continue;
    }
    for (const auto sched : schedulers) {
      for (const auto pol : policies) {
        Row row;
        row.nodes = point.nodes;
        row.jobs = point.jobs;
        row.scheduler = cluster::scheduler_name(sched);
        row.policy = cluster::policy_name(pol);
        ChildReport report;
        row.ok = run_in_child(point.nodes, point.jobs, sched, pol, repeats,
                              &report);
        all_ok = all_ok && row.ok;
        row.cpu_ms = report.cpu_ms;
        row.peak_rss_kb = report.peak_rss_kb;
        row.allocations = report.allocations;
        row.fingerprint = report.fingerprint;
        std::printf("%-6zu %-7zu %-6s %-14s %12.1f %12.1f %14llu %016llx%s\n",
                    row.nodes, row.jobs, row.scheduler.c_str(),
                    row.policy.c_str(), row.cpu_ms,
                    static_cast<double>(row.peak_rss_kb) / 1024.0,
                    static_cast<unsigned long long>(row.allocations),
                    static_cast<unsigned long long>(row.fingerprint),
                    row.ok ? "" : "  CHILD FAILED");
        std::fflush(stdout);
        rows.push_back(row);
      }
    }
  }

  if (cfg.get_int("profile", 0) != 0 && !rows.empty()) {
    const Row& last = rows.back();
    auto opts = scale_cluster_options(last.nodes,
                                      cluster::SchedulerKind::kFair,
                                      cluster::PolicyKind::kElephantTrap);
    obs::PhaseProfiler phase_profiler;
    opts.profiler = &phase_profiler;
    cluster::Cluster sim(opts);
    sim.run_stream(
        workload::make_wl2_spec(scale_workload_options(last.nodes,
                                                       last.jobs)));
    std::printf("\nphase attribution (%zu nodes, %zu jobs, "
                "Fair/elephant-trap):\n", last.nodes, last.jobs);
    phase_profiler.write_report(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n"
        << "  \"benchmark\": \"bench_scale\",\n"
        << "  \"description\": \"Hyperscale scale curve (process-CPU ms + "
           "peak RSS per forked config): streaming workload admission, arena "
           "job storage, SoA hot structures (PR8)\",\n"
        << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      char fp[32];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      out << "    {\"profile\": \"ec2\", \"nodes\": " << r.nodes
          << ", \"jobs\": " << r.jobs << ", \"scheduler\": \"" << r.scheduler
          << "\", \"policy\": \"" << r.policy << "\", \"cpu_ms\": "
          << r.cpu_ms << ", \"peak_rss_kb\": " << r.peak_rss_kb
          << ", \"allocations\": " << r.allocations << ", \"fingerprint\": \""
          << fp << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("[json written: %s]\n", json_path.c_str());
  }

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: at least one configuration child failed\n");
    return 1;
  }
  return 0;
}
