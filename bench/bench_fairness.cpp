// Scheduler-fairness bench (extension; context for the paper's workload
// choice): wl2's periodic large scans starve small jobs under FIFO, which
// is exactly why the Fair scheduler exists — and why the paper evaluates
// both. Reports Jain's index over per-job slowdowns, the worst-case
// slowdown ratio, and how DARE shifts both (better locality shortens the
// large jobs' occupancy, which helps everyone).
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"
#include "metrics/fairness.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 400));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Scheduler fairness on wl2 (small jobs after large jobs)",
                "context for DARE (CLUSTER'11) Section V-A workload choice");

  const auto wl = cluster::standard_wl2(nodes, jobs, seed);

  std::vector<std::function<metrics::RunResult()>> runs;
  std::vector<std::string> labels;
  for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    for (const auto policy :
         {PolicyKind::kVanilla, PolicyKind::kElephantTrap}) {
      labels.push_back(std::string(cluster::scheduler_name(sched)) + " / " +
                       cluster::policy_name(policy));
      runs.push_back([&, sched, policy] {
        return cluster::run_once(
            cluster::paper_defaults(net::cct_profile(nodes), sched, policy,
                                    seed),
            wl);
      });
    }
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable table({"scheduler / policy", "Jain fairness", "mean slowdown",
                    "worst/median slowdown", "GMTT (s)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({labels[i], fmt_fixed(metrics::slowdown_fairness(r), 3),
                   fmt_fixed(r.mean_slowdown, 2),
                   fmt_fixed(metrics::worst_case_slowdown_ratio(r), 2),
                   fmt_fixed(r.gmtt_s, 2)});
  }
  table.print(std::cout, "\nFairness over per-job slowdowns (wl2)");
  std::cout << "\nExpected: Fair scheduling raises Jain's index and slashes "
               "the mean slowdown relative to FIFO\n(small jobs stop queuing "
               "behind large scans). The worst/median ratio can *rise* under "
               "Fair —\nnot because the worst job got worse, but because the "
               "median job got so much better. DARE\nimproves the absolute "
               "numbers under both schedulers.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
