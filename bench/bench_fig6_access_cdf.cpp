// Figure 6: the file access distribution (CDF over popularity ranks) used
// as input for the cluster experiments.
//
// Overrides: zipf=<s>
#include "bench_common.h"
#include "workload/workload.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  const double zipf_s = cfg.get_double("zipf", 1.1);

  bench::banner("Fig. 6 — access pattern (CDF) used in the experiments",
                "DARE (CLUSTER'11) Fig. 6");

  workload::CatalogSpec catalog;
  const auto popularity = workload::small_file_popularity(catalog, zipf_s);

  AsciiTable table({"file rank", "cumulative access probability"});
  for (std::size_t rank : {1u, 2u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    if (rank > popularity.size()) break;
    table.add_row({std::to_string(rank),
                   fmt_fixed(popularity.cdf(rank - 1), 3)});
  }
  table.print(std::cout, "\nCDF over file popularity ranks (Zipf s = " +
                             fmt_fixed(zipf_s, 2) + ", " +
                             std::to_string(popularity.size()) + " files)");
  std::cout << "\nPaper shape: concave CDF reaching 1.0 near rank ~120; the "
               "top ~20 files hold most of the probability mass.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"zipf"}));
}
