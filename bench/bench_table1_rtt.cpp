// Table I: all-to-all ping round-trip times for the dedicated CCT cluster
// and the virtualized EC2 cluster (min / mean / max / standard deviation).
//
// Overrides: nodes=<n> pings=<n> seed=<n>
#include "bench_common.h"
#include "common/stats.h"
#include "net/measurement.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto pings = static_cast<std::size_t>(cfg.get_int("pings", 5));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  bench::banner("Table I — all-to-all ping round-trip times (ms)",
                "DARE (CLUSTER'11) Table I");

  AsciiTable table({"cluster", "min", "mean", "max", "std. deviation"});
  for (const auto& profile : {net::cct_profile(nodes),
                              net::ec2_profile(nodes)}) {
    Rng rng(seed);
    net::Topology topo(profile.topology, rng);
    net::Network network(profile, topo, rng);
    const auto samples = net::ping_all_pairs(network, pings);
    const auto row = summarize(profile.name, samples);
    table.add_row({profile.name == "cct" ? "CCT" : "EC2",
                   fmt_fixed(row.min, 2), fmt_fixed(row.mean, 2),
                   fmt_fixed(row.max, 2), fmt_fixed(row.stddev, 2)});
  }
  table.print(std::cout, "\nRTT in milliseconds");
  std::cout << "\nPaper reference: CCT 0.01/0.18/2.17/0.34, "
               "EC2 0.02/0.77/75.1/3.36\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"pings"}));
}
