// Figure 3: cumulative distribution of file age at time of access.
// Paper landmarks: 50 % of accesses by ~9 h 45 m of age, ~80 % within the
// first day, high temporal correlation overall.
//
// Overrides: files=<n> accesses=<n> seed=<n>
#include "analysis/trace_analysis.h"
#include "bench_common.h"

namespace dare {
namespace {

int run(const Config& cfg) {
  workload::YahooTraceOptions opts;
  opts.files = static_cast<std::size_t>(cfg.get_int("files", 2000));
  opts.total_accesses =
      static_cast<std::size_t>(cfg.get_int("accesses", 200000));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  bench::banner("Fig. 3 — CDF of file age at time of access",
                "DARE (CLUSTER'11) Fig. 3");

  const auto trace = workload::generate_yahoo_trace(opts);
  const auto cdf = analysis::age_at_access_cdf(trace);

  AsciiTable table({"file age t", "fraction of accesses at age < t"});
  const std::vector<std::pair<std::string, double>> landmarks = {
      {"1 minute", 60.0},
      {"1 hour", 3600.0},
      {"6 hours", 6 * 3600.0},
      {"9h45m", 9.75 * 3600.0},
      {"1 day", 24 * 3600.0},
      {"2 days", 48 * 3600.0},
      {"1 week", 7 * 24 * 3600.0}};
  for (const auto& [label, seconds] : landmarks) {
    table.add_row({label,
                   fmt_fixed(cdf.fraction_at_or_below(seconds), 3)});
  }
  table.print(std::cout, "\nCDF of age at access");
  std::cout << "\nMedian age: " << fmt_fixed(cdf.quantile(0.5) / 3600.0, 2)
            << " hours (paper: ~9.75 h); fraction within first day: "
            << fmt_percent(cdf.fraction_at_or_below(24 * 3600.0), 1)
            << " (paper: ~80%).\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"accesses", "files"}));
}
