// Fault-tolerance bench (extension; motivated by Section IV-B: "Replicas
// created by DARE are first-order replicas and as such they also contribute
// to increasing availability of the data in the presence of failures").
//
// Kills two workers mid-run and reports, for vanilla vs DARE: task
// re-executions, repair traffic, surviving replica counts, and the locality
// resilience during the repair window.
//
// Overrides: jobs=<n> nodes=<n> seed=<n>
#include "bench_common.h"
#include "cluster/experiment.h"
#include "metrics/availability.h"

namespace dare {
namespace {

using cluster::PolicyKind;
using cluster::SchedulerKind;

/// End-of-run replica counts per block (static + surviving dynamic).
std::vector<std::size_t> replica_counts(const cluster::Cluster& cluster) {
  std::vector<std::size_t> counts;
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      counts.push_back(nn.locations(bid).size());
    }
  }
  return counts;
}

int run(const Config& cfg) {
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 400));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  bench::banner("Fault tolerance — node failures under vanilla vs DARE",
                "extension of DARE (CLUSTER'11) Section IV-B");

  const auto wl = cluster::standard_wl1(nodes, jobs, seed);

  struct Variant {
    std::string label;
    PolicyKind policy;
    bool rereplication;
  };
  const std::vector<Variant> variants = {
      {"vanilla + repair", PolicyKind::kVanilla, true},
      {"vanilla, no repair", PolicyKind::kVanilla, false},
      {"dare-et + repair", PolicyKind::kElephantTrap, true},
      {"dare-et, no repair", PolicyKind::kElephantTrap, false},
  };

  std::vector<std::function<metrics::RunResult()>> runs;
  for (const auto& variant : variants) {
    runs.push_back([&, variant] {
      auto options = cluster::paper_defaults(net::cct_profile(nodes),
                                             SchedulerKind::kFifo,
                                             variant.policy, seed);
      options.enable_rereplication = variant.rereplication;
      // Two failures one third and two thirds into the expected run.
      options.failures.push_back({from_seconds(15.0), NodeId{3}});
      options.failures.push_back({from_seconds(30.0), NodeId{11}});
      return cluster::run_once(options, wl);
    });
  }
  const auto results = cluster::run_parallel(runs);

  AsciiTable table({"configuration", "locality %", "GMTT (s)",
                    "task re-executions", "repaired blocks", "blocks lost"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].label, fmt_fixed(r.locality * 100.0, 1),
                   fmt_fixed(r.gmtt_s, 2),
                   std::to_string(r.task_reexecutions),
                   std::to_string(r.rereplicated_blocks),
                   std::to_string(r.blocks_lost)});
  }
  table.print(std::cout,
              "\nTwo node failures (t=15s, t=30s), FIFO scheduler, wl1");
  std::cout << "\nExpected: every run completes with zero lost blocks "
               "(replication 3 tolerates 2 failures);\nDARE keeps locality "
               "higher through the failures, and its dynamic replicas add "
               "availability\nheadroom even without the repair pipeline.\n";

  // Analytic availability (Section IV-B): run vanilla and DARE WITHOUT
  // failures, then ask — if k random nodes failed right now, how many
  // blocks would be expected to lose every replica?
  cluster::Cluster vanilla_cluster(cluster::paper_defaults(
      net::cct_profile(nodes), SchedulerKind::kFifo, PolicyKind::kVanilla,
      seed));
  cluster::Cluster dare_cluster(cluster::paper_defaults(
      net::cct_profile(nodes), SchedulerKind::kFifo,
      PolicyKind::kElephantTrap, seed));
  (void)vanilla_cluster.run(wl);
  (void)dare_cluster.run(wl);
  const auto vanilla_counts = replica_counts(vanilla_cluster);
  const auto dare_counts = replica_counts(dare_cluster);

  AsciiTable avail({"simultaneous failures k",
                    "E[lost blocks] vanilla", "E[lost blocks] with DARE",
                    "P(any loss) vanilla", "P(any loss) with DARE"});
  const std::size_t workers = nodes - 1;
  for (std::size_t k : {3u, 4u, 5u, 6u}) {
    const auto v =
        metrics::availability_under_failures(workers, vanilla_counts, k);
    const auto d =
        metrics::availability_under_failures(workers, dare_counts, k);
    avail.add_row({std::to_string(k), fmt_fixed(v.expected_lost, 3),
                   fmt_fixed(d.expected_lost, 3),
                   fmt_fixed(v.any_loss_probability, 3),
                   fmt_fixed(d.any_loss_probability, 3)});
  }
  avail.print(std::cout,
              "\nAnalytic availability at end of run (no failures injected; "
              "k random nodes fail simultaneously)");
  std::cout << "\nExpected: DARE's dynamic replicas strictly reduce the "
               "expected loss — they are first-order\nreplicas (Section "
               "IV-B), not a cache.\n";
  return 0;
}

}  // namespace
}  // namespace dare

int main(int argc, char** argv) {
  return dare::run(dare::bench::parse_args(argc, argv, {"jobs"}));
}
