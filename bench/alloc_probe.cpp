// Allocation-count probe for the bench binaries: replaces the global
// operator new/delete pair with forwarding versions that bump a relaxed
// atomic counter, so benches can report allocation churn alongside CPU and
// peak RSS (see bench_common.h read_memory_stats()).
//
// Compiled into dare_bench_probe and linked into every bench target — never
// into the libraries or tests, so simulation behavior and the sanitizer
// builds are untouched. Under ASan/TSan/MSan the replacement operators are
// compiled out entirely (the sanitizer runtime owns allocation
// interposition) and allocation_count() reports 0.

#include <cstdint>

namespace dare::bench {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DARE_ALLOC_PROBE_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DARE_ALLOC_PROBE_DISABLED 1
#endif
#endif

#ifndef DARE_ALLOC_PROBE_DISABLED
// Plain (non-std::atomic) counter: the benches are single-threaded on the
// allocation path that matters, and a std::atomic here would force the
// header to pull <atomic> into replacement operators that must not throw.
// Torn reads would only skew a telemetry number, never a fingerprint.
std::uint64_t g_allocations = 0;
#endif

}  // namespace

std::uint64_t allocation_count() {
#ifndef DARE_ALLOC_PROBE_DISABLED
  return g_allocations;
#else
  return 0;
#endif
}

}  // namespace dare::bench

#ifndef DARE_ALLOC_PROBE_DISABLED

#include <cstdlib>
#include <new>

void* operator new(std::size_t size) {
  ++dare::bench::g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++dare::bench::g_allocations;
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

void* operator new[](std::size_t size) { return operator new(size); }
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return operator new(size, t);
}
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

#endif  // DARE_ALLOC_PROBE_DISABLED
