// Observability demo: run one workload with the structured tracer and the
// phase profiler attached, then export everything a timeline viewer or a
// notebook needs:
//   trace.json      — Chrome trace-event JSON; open in chrome://tracing or
//                     https://ui.perfetto.dev (one track per worker node,
//                     plus scheduler and namenode tracks);
//   events.csv      — every event as one flat CSV row;
//   timeseries.csv  — periodic cluster gauges (backlog, slot utilization,
//                     budget occupancy, popularity cv);
// and prints the per-phase CPU attribution table.
//
// Tracing only observes: the run's metrics fingerprint is identical with
// the tracer attached or not (tested by test_trace_determinism).
//
// Usage: trace_run [jobs=N] [nodes=N] [out=trace.json] [churn=0|1]
//                  [sample_s=1.0 gauge-sampling period, 0 disables]
//                  [plus cluster overrides: policy=, scheduler=, seed=, ...]
#include <fstream>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "metrics/run_metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace_collector.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 120));
  const std::string out = cfg.get_string("out", "trace.json");

  const auto wl = cluster::standard_wl1(nodes, jobs);
  auto options = cluster::apply_overrides(
      cluster::paper_defaults(net::cct_profile(nodes),
                              cluster::SchedulerKind::kFair,
                              cluster::PolicyKind::kElephantTrap),
      cfg);
  options.trace_sample_interval = from_seconds(cfg.get_double("sample_s", 1.0));
  if (cfg.get_int("churn", 0) != 0) {
    options.faults.enabled = true;
    options.faults.mtbf_s = 120.0;
    options.faults.mttr_s = 30.0;
    options.faults.min_live_workers = 4;
  }

  obs::TraceCollector tracer;
  obs::PhaseProfiler profiler;
  options.tracer = &tracer;
  options.profiler = &profiler;

  const auto result = cluster::run_once(options, wl);

  std::ofstream json(out, std::ios::binary);
  obs::write_chrome_trace(tracer, json);
  std::ofstream csv("events.csv", std::ios::binary);
  obs::write_events_csv(tracer, csv);
  std::ofstream series("timeseries.csv", std::ios::binary);
  tracer.series().write_csv(series);

  std::cout << "ran " << jobs << " jobs on " << nodes
            << " nodes: makespan " << to_seconds(result.makespan)
            << " s, GMTT " << result.gmtt_s << " s, locality "
            << result.locality * 100.0 << " %\n"
            << "collected " << tracer.size() << " events, "
            << tracer.series().size() << " gauge samples\n"
            << "wrote " << out << " (load in chrome://tracing or "
            << "ui.perfetto.dev), events.csv, timeseries.csv\n\n";
  profiler.write_report(std::cout);
  return 0;
}
