// Observability demo: run one workload with the structured tracer and the
// phase profiler attached, then export everything a timeline viewer or a
// notebook needs:
//   trace.json      — Chrome trace-event JSON; open in chrome://tracing or
//                     https://ui.perfetto.dev (one track per worker node,
//                     plus scheduler and namenode tracks);
//   events.csv      — every event as one flat CSV row;
//   timeseries.csv  — periodic cluster gauges (backlog, slot utilization,
//                     budget occupancy, popularity cv);
// and prints the per-phase CPU attribution table.
//
// Tracing only observes: the run's metrics fingerprint is identical with
// the tracer attached or not (tested by test_trace_determinism).
//
// Usage: trace_run [jobs=N] [nodes=N] [out=trace.json] [churn=0|1]
//                  [sample_s=1.0 gauge-sampling period, 0 disables]
//                  [plus cluster overrides: policy=, scheduler=, seed=, ...]
#include <algorithm>
#include <fstream>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "metrics/run_metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace_collector.h"
#include "obs/trace_export.h"

namespace {

constexpr const char kUsage[] =
    "usage: trace_run [jobs=N] [nodes=N] [out=trace.json] [churn=0|1]\n"
    "                 [sample_s=1.0 gauge-sampling period, 0 disables]\n"
    "                 [plus cluster overrides: policy=, scheduler=, seed=,\n"
    "                  corruption=, bitrot_per_gb=, sector_mtbf_s=, ...]\n"
    "Arguments are key=value tokens; anything else is rejected.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);

  // A typo'd knob must fail loudly, not silently run the default config.
  const std::vector<std::string> local_keys = {"churn", "jobs", "nodes",
                                               "out", "sample_s"};
  std::vector<std::string> unknown = positional;
  for (const auto& key : cfg.keys()) {
    const auto& shared = cluster::override_keys();
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(local_keys.begin(), local_keys.end(), key) !=
        local_keys.end()) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << '\n' << kUsage;
    return 1;
  }

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 120));
  const std::string out = cfg.get_string("out", "trace.json");

  const auto wl = cluster::standard_wl1(nodes, jobs);
  auto options = cluster::apply_overrides(
      cluster::paper_defaults(net::cct_profile(nodes),
                              cluster::SchedulerKind::kFair,
                              cluster::PolicyKind::kElephantTrap),
      cfg);
  options.trace_sample_interval = from_seconds(cfg.get_double("sample_s", 1.0));
  if (cfg.get_int("churn", 0) != 0) {
    options.faults.enabled = true;
    options.faults.mtbf_s = 120.0;
    options.faults.mttr_s = 30.0;
    options.faults.min_live_workers = 4;
  }

  obs::TraceCollector tracer;
  obs::PhaseProfiler profiler;
  options.tracer = &tracer;
  options.profiler = &profiler;

  const auto result = cluster::run_once(options, wl);

  std::ofstream json(out, std::ios::binary);
  obs::write_chrome_trace(tracer, json);
  std::ofstream csv("events.csv", std::ios::binary);
  obs::write_events_csv(tracer, csv);
  std::ofstream series("timeseries.csv", std::ios::binary);
  tracer.series().write_csv(series);

  std::cout << "ran " << jobs << " jobs on " << nodes
            << " nodes: makespan " << to_seconds(result.makespan)
            << " s, GMTT " << result.gmtt_s << " s, locality "
            << result.locality * 100.0 << " %\n"
            << "collected " << tracer.size() << " events, "
            << tracer.series().size() << " gauge samples\n"
            << "wrote " << out << " (load in chrome://tracing or "
            << "ui.perfetto.dev), events.csv, timeseries.csv\n\n";
  profiler.write_report(std::cout);
  return 0;
}
