// Replay of SWIM-style Facebook workloads under every scheduler x policy
// combination — the paper's primary experiment (Section V-B/V-C), with the
// workload optionally persisted to / loaded from a trace file so runs are
// reproducible and editable.
//
// Usage:
//   facebook_workload [wl=wl1|wl2] [jobs=N] [nodes=N] [seed=N]
//                     [save=trace.txt] [load=trace.txt]
#include <fstream>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 500));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const std::string which = cfg.get_string("wl", "wl2");

  // Obtain the workload: either load a previously saved trace or
  // synthesize one.
  workload::Workload wl;
  const std::string load = cfg.get_string("load", "");
  if (!load.empty()) {
    std::ifstream in(load);
    if (!in) {
      std::cerr << "cannot open trace file: " << load << '\n';
      return 1;
    }
    wl = workload::read_workload(in);
    std::cout << "Loaded " << wl.jobs.size() << " jobs from " << load << "\n";
  } else if (which == "wl1") {
    wl = cluster::standard_wl1(nodes, jobs, seed);
  } else if (which == "wl2") {
    wl = cluster::standard_wl2(nodes, jobs, seed);
  } else {
    std::cerr << "unknown workload '" << which << "' (use wl1 or wl2)\n";
    return 1;
  }

  const std::string save = cfg.get_string("save", "");
  if (!save.empty()) {
    std::ofstream out(save);
    workload::write_workload(out, wl);
    std::cout << "Saved workload to " << save << "\n";
  }

  // The full scheduler x policy grid.
  AsciiTable table({"scheduler", "policy", "locality", "GMTT (s)",
                    "slowdown", "blocks/job"});
  for (const auto sched :
       {cluster::SchedulerKind::kFifo, cluster::SchedulerKind::kFair}) {
    for (const auto policy :
         {cluster::PolicyKind::kVanilla, cluster::PolicyKind::kGreedyLru,
          cluster::PolicyKind::kGreedyLfu,
          cluster::PolicyKind::kElephantTrap}) {
      const auto result = cluster::run_once(
          cluster::paper_defaults(net::cct_profile(nodes), sched, policy,
                                  seed),
          wl);
      table.add_row({cluster::scheduler_name(sched),
                     cluster::policy_name(policy),
                     fmt_percent(result.locality),
                     fmt_fixed(result.gmtt_s, 2),
                     fmt_fixed(result.mean_slowdown, 2),
                     fmt_fixed(result.blocks_created_per_job, 2)});
    }
  }
  table.print(std::cout, "Facebook-style workload '" + wl.name + "' on a " +
                             std::to_string(nodes) + "-node cluster");
  return 0;
}
