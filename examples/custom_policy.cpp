// Extending DARE: writing your own replication policy against the public
// `core::ReplicationPolicy` interface and evaluating it inside the
// simulator's storage layer.
//
// The example implements a naive "first-K" policy — replicate the first K
// distinct remotely-read blocks and never evict — and compares it with the
// paper's policies at equal budget, driving all of them with the same
// synthetic access stream. It demonstrates why admission control *and*
// eviction both matter: first-K fills its budget with whatever arrived
// first, which on a heavy-tailed stream is mostly one-off cold data.
//
// Usage: custom_policy [accesses=N] [budget_blocks=N] [seed=N]
#include <iostream>
#include <memory>

#include "common/config.h"
#include "common/distributions.h"
#include "common/table.h"
#include "core/elephant_trap.h"
#include "core/greedy_lru.h"
#include "net/profile.h"

namespace {

using namespace dare;

/// A deliberately naive policy: trap the first K blocks it sees, forever.
class FirstKPolicy final : public core::ReplicationPolicy {
 public:
  FirstKPolicy(storage::DataNode& node, Bytes budget_bytes)
      : node_(&node), budget_(budget_bytes) {}

  bool on_map_task(const storage::BlockMeta& block, bool local) override {
    if (local) return false;
    if (node_->dynamic_bytes() + block.size > budget_) return false;
    if (!node_->insert_dynamic(block)) return false;
    ++created_;
    return true;
  }

  std::string name() const override { return "first-k"; }
  std::uint64_t replicas_created() const override { return created_; }

 private:
  storage::DataNode* node_;
  Bytes budget_;
  std::uint64_t created_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);
  const auto accesses = static_cast<std::size_t>(cfg.get_int("accesses", 20000));
  const auto budget_blocks =
      static_cast<Bytes>(cfg.get_int("budget_blocks", 16));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 5));

  const Bytes block_size = 128 * kMiB;
  const Bytes budget = budget_blocks * block_size;

  // A heavy-tailed block access stream over 200 single-block files. The
  // popularity order rotates halfway through, so policies must *adapt* —
  // the scenario DARE's competitive aging is designed for.
  const std::size_t num_files = 200;
  const ZipfDistribution zipf(num_files, 1.2);

  struct Contender {
    std::string label;
    std::unique_ptr<storage::DataNode> node;
    std::unique_ptr<core::ReplicationPolicy> policy;
    std::size_t hits = 0;
  };

  Rng rng(seed);
  std::vector<Contender> contenders;
  const auto disk = net::cct_profile().disk;
  {
    Contender c;
    c.label = "first-k (naive)";
    c.node = std::make_unique<storage::DataNode>(0, disk, rng);
    c.policy = std::make_unique<FirstKPolicy>(*c.node, budget);
    contenders.push_back(std::move(c));
  }
  {
    Contender c;
    c.label = "greedy-lru";
    c.node = std::make_unique<storage::DataNode>(0, disk, rng);
    c.policy = std::make_unique<core::GreedyLruPolicy>(*c.node, budget);
    contenders.push_back(std::move(c));
  }
  {
    Contender c;
    c.label = "elephant-trap p=0.3";
    c.node = std::make_unique<storage::DataNode>(0, disk, rng);
    core::ElephantTrapParams params;
    params.p = 0.3;
    params.threshold = 1;
    c.policy = std::make_unique<core::ElephantTrapPolicy>(*c.node, budget,
                                                          params, rng);
    contenders.push_back(std::move(c));
  }

  Rng stream(seed + 1);
  for (std::size_t i = 0; i < accesses; ++i) {
    std::size_t rank = zipf.sample(stream);
    // Popularity shift: halfway through, the hot set moves.
    if (i > accesses / 2) rank = (rank + num_files / 2) % num_files;
    const storage::BlockMeta block{static_cast<BlockId>(rank),
                                   static_cast<FileId>(rank), block_size};
    for (auto& c : contenders) {
      const bool local = c.node->has_visible_block(block.id);
      if (local) ++c.hits;
      c.policy->on_map_task(block, local);
      c.node->reclaim_marked();  // lazy deletion, eagerly for the demo
    }
  }

  AsciiTable table({"policy", "local-hit rate", "replicas created",
                    "still resident"});
  for (const auto& c : contenders) {
    table.add_row({c.label,
                   fmt_percent(static_cast<double>(c.hits) /
                               static_cast<double>(accesses)),
                   std::to_string(c.policy->replicas_created()),
                   std::to_string(c.node->dynamic_blocks().size())});
  }
  table.print(std::cout,
              "Custom policy showdown — heavy-tailed stream with a "
              "popularity shift\n(budget: " +
                  std::to_string(budget_blocks) + " blocks)");
  std::cout << "\nfirst-k froze the pre-shift hot set; LRU and the "
               "ElephantTrap adapted. Implement your own\npolicy by "
               "deriving from core::ReplicationPolicy (see FirstKPolicy in "
               "this file).\n";
  return 0;
}
