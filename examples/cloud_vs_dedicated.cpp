// Dedicated cluster vs virtualized public cloud (paper Sections II-B and
// V-E): characterizes both substrates (RTT, disk and network bandwidth,
// hop distribution) and then shows that the *same* DARE configuration buys
// a larger turnaround improvement on the cloud profile, because its
// network/disk bandwidth ratio is lower.
//
// Usage: cloud_vs_dedicated [jobs=N] [nodes=N] [seed=N]
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/stats.h"
#include "common/table.h"
#include "net/measurement.h"

namespace {

using namespace dare;

void characterize(const net::ClusterProfile& profile, std::uint64_t seed,
                  AsciiTable& table) {
  Rng rng(seed);
  net::Topology topo(profile.topology, rng);
  net::Network network(profile, topo, rng);
  const std::string label = profile.name == "cct" ? "CCT" : "EC2";

  const auto rtt = summarize("rtt", net::ping_all_pairs(network, 3));
  const auto disk = summarize(
      "disk",
      net::disk_bandwidth_samples(profile, profile.topology.nodes, 20, rng));
  const auto net_bw = summarize("net", net::iperf_samples(network, 500, rng));
  table.add_row({label, fmt_fixed(rtt.mean, 2) + " ms",
                 fmt_fixed(disk.mean, 1) + " MB/s",
                 fmt_fixed(net_bw.mean, 1) + " MB/s",
                 fmt_percent(net_bw.mean / disk.mean, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 400));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  // 1. Substrate characterization (cf. Tables I-II).
  AsciiTable substrate({"cluster", "mean RTT", "disk bw", "net bw",
                        "net/disk ratio"});
  characterize(net::cct_profile(nodes), seed, substrate);
  characterize(net::ec2_profile(nodes), seed, substrate);
  substrate.print(std::cout, "Substrate characterization");
  std::cout << "\nThe lower the net/disk ratio, the more a remote read "
               "costs relative to a local one —\nand the more locality is "
               "worth.\n\n";

  // 2. Same workload, same DARE parameters, both substrates.
  const auto wl = cluster::standard_wl1(nodes, jobs, seed);
  AsciiTable results({"cluster", "policy", "locality", "GMTT (s)",
                      "slowdown"});
  double gain[2] = {0, 0};
  int idx = 0;
  for (const auto& profile :
       {net::cct_profile(nodes), net::ec2_profile(nodes)}) {
    const auto vanilla = cluster::run_once(
        cluster::paper_defaults(profile, cluster::SchedulerKind::kFifo,
                                cluster::PolicyKind::kVanilla, seed),
        wl);
    const auto dare = cluster::run_once(
        cluster::paper_defaults(profile, cluster::SchedulerKind::kFifo,
                                cluster::PolicyKind::kElephantTrap, seed),
        wl);
    const std::string label = profile.name == "cct" ? "CCT" : "EC2";
    results.add_row({label, "vanilla", fmt_percent(vanilla.locality),
                     fmt_fixed(vanilla.gmtt_s, 2),
                     fmt_fixed(vanilla.mean_slowdown, 2)});
    results.add_row({label, "dare-et", fmt_percent(dare.locality),
                     fmt_fixed(dare.gmtt_s, 2),
                     fmt_fixed(dare.mean_slowdown, 2)});
    gain[idx++] = 1.0 - dare.gmtt_s / vanilla.gmtt_s;
  }
  results.print(std::cout, "Same workload, same DARE parameters");
  std::cout << "\nGMTT reduction: CCT " << fmt_percent(gain[0]) << ", EC2 "
            << fmt_percent(gain[1]) << " — "
            << (gain[1] >= gain[0]
                    ? "the cloud profits more, as the paper found (16% vs "
                      "19%)."
                    : "close at this scale; at the paper's 100-node cloud "
                      "scale the EC2 gain pulls ahead (16% vs 19%) — see "
                      "bench_fig10_ec2.")
            << '\n';
  return 0;
}
