// Straggler demo: the same workload on a quiet cluster, on one with
// degraded-mode nodes and heavy-tailed task inflation, and then with each
// mitigation armed in turn — speculation, budgeted task cloning, and
// cloning plus progress-rate straggler detection (which also sidelines
// detected-slow nodes from launches and read/repair source selection).
//
// Usage: straggler_run [jobs=N] [nodes=N]
//                      [plus cluster overrides: stragglers=, tail_prob=,
//                       cloning=, clone_budget=, detect_stragglers=, ...]
#include <algorithm>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"

namespace {

constexpr const char kUsage[] =
    "usage: straggler_run [jobs=N] [nodes=N]\n"
    "                     [plus cluster overrides: stragglers=,\n"
    "                      degrade_mtbf_s=, degrade_duration_s=,\n"
    "                      compute_slowdown=, disk_slowdown=, tail_prob=,\n"
    "                      tail_alpha=, tail_cap=, cloning=, clone_budget=,\n"
    "                      detect_stragglers=, detect_ratio=, backoff_s=,\n"
    "                      policy=, scheduler=, seed=, ...]\n"
    "Arguments are key=value tokens; anything else is rejected.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);

  // A typo'd knob must fail loudly, not silently run the default config.
  const std::vector<std::string> local_keys = {"jobs", "nodes"};
  std::vector<std::string> unknown = positional;
  for (const auto& key : cfg.keys()) {
    const auto& shared = cluster::override_keys();
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(local_keys.begin(), local_keys.end(), key) !=
        local_keys.end()) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << '\n' << kUsage;
    return 1;
  }

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));

  const auto wl = cluster::standard_wl1(nodes, jobs);

  // Default straggler climate; every knob is overridable from the CLI.
  auto base = cluster::paper_defaults(net::ec2_profile(nodes),
                                      cluster::SchedulerKind::kFair,
                                      cluster::PolicyKind::kElephantTrap);
  base.stragglers.enabled = true;
  base.stragglers.degrade_mtbf_s = 180.0;
  base.stragglers.degrade_duration_s = 45.0;
  base.stragglers.compute_slowdown = 4.0;
  base.stragglers.disk_slowdown = 2.5;
  base.stragglers.rack_correlation = 0.2;
  base.stragglers.tail_prob = 0.1;
  base.stragglers.tail_alpha = 1.2;
  base.stragglers.tail_cap = 10.0;
  base.clone_budget_fraction = 0.15;
  base.straggler_detect_min_samples = 2;
  base = cluster::apply_overrides(base, cfg);

  struct Variant {
    const char* name;
    bool stragglers;
    bool speculation;
    bool cloning;
    bool detection;
  };
  const Variant variants[] = {
      {"quiet cluster", false, false, false, false},
      {"stragglers, no mitigation", true, false, false, false},
      {"stragglers + speculation", true, true, false, false},
      {"stragglers + cloning", true, false, true, false},
      {"stragglers + cloning + detection", true, false, true, true},
  };

  AsciiTable table({"configuration", "GMTT (s)", "locality", "degrades",
                    "inflated", "detected", "clones", "clone wins",
                    "wasted (s)", "spec launched", "failed jobs"});
  for (const auto& v : variants) {
    auto options = base;
    options.stragglers.enabled = v.stragglers;
    options.enable_speculation = v.speculation;
    options.enable_task_cloning = v.cloning;
    options.enable_straggler_detection = v.detection;
    const auto result = cluster::run_once(options, wl);
    table.add_row({v.name, fmt_fixed(result.gmtt_s, 2),
                   fmt_percent(result.locality),
                   std::to_string(result.degraded_onsets),
                   std::to_string(result.tail_inflations),
                   std::to_string(result.stragglers_detected),
                   std::to_string(result.clones_launched),
                   std::to_string(result.clone_wins),
                   fmt_fixed(result.clone_wasted_work_s, 1),
                   std::to_string(result.speculative_launched),
                   std::to_string(result.failed_jobs)});
  }
  table.print(
      std::cout,
      "Straggler demo — " + std::to_string(nodes) + "-node cluster, " +
          std::string(cluster::policy_name(base.policy)) +
          " policy, degrade MTBF " +
          std::to_string(static_cast<int>(base.stragglers.degrade_mtbf_s)) +
          " s, tail P(inflate) " +
          fmt_fixed(base.stragglers.tail_prob, 2));
  std::cout
      << "\nDegraded nodes run compute and disk slower for a while; a "
         "fraction of tasks draw a\nheavy-tailed (bounded-Pareto) service "
         "inflation. Speculation reacts to observed\nstraggling; cloning "
         "hedges launches up front inside a slot budget (first finisher\n"
         "wins, the loser is killed); detection sidelines persistently slow "
         "nodes from new\nlaunches and read/repair sources until a backoff "
         "expires.\n";
  return 0;
}
