// Replaying a SWIM-format trace (the format the paper's workloads were
// published in). If no trace file is given, the example writes a small
// synthetic trace in SWIM format first, so it is runnable out of the box;
// point `trace=` at a real SWIM file (e.g. the published Facebook samples)
// to replay production workloads.
//
// Usage: swim_replay [trace=FILE] [first=N] [count=N] [timescale=X]
//                    [plus any cluster override: policy=, scheduler=, ...]
#include <fstream>
#include <iostream>
#include <sstream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/table.h"
#include "workload/swim_import.h"

namespace {

using namespace dare;

/// Write a plausible SWIM-style sample: a stream of small jobs with
/// repeating input sizes plus periodic large scans.
std::string synthesize_swim_sample(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream out;
  out << "# synthetic trace in SWIM format: name submit interarrival "
         "input_bytes shuffle_bytes output_bytes\n";
  double t = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double gap = rng.exponential(1.0 / 6.0);
    t += gap;
    const bool large = i % 25 == 24;
    const Bytes input =
        large ? static_cast<Bytes>(rng.uniform_int(std::int64_t{12},
                                                   std::int64_t{30})) *
                    128 * kMiB
              : static_cast<Bytes>(rng.uniform_int(std::int64_t{1},
                                                   std::int64_t{4})) *
                    128 * kMiB;
    const Bytes shuffle = input / 16;
    const Bytes output = input / 32;
    out << "job" << i << ' ' << t << ' ' << gap << ' ' << input << ' '
        << shuffle << ' ' << output << '\n';
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  workload::SwimImportOptions import_opts;
  import_opts.first_job = static_cast<std::size_t>(cfg.get_int("first", 0));
  import_opts.num_jobs = static_cast<std::size_t>(cfg.get_int("count", 0));
  import_opts.time_scale = cfg.get_double("timescale", 1.0);

  workload::Workload wl;
  const std::string trace = cfg.get_string("trace", "");
  if (!trace.empty()) {
    std::ifstream in(trace);
    if (!in) {
      std::cerr << "cannot open SWIM trace: " << trace << '\n';
      return 1;
    }
    wl = workload::import_swim(in, import_opts);
    std::cout << "Imported " << wl.jobs.size() << " jobs / "
              << wl.catalog.size() << " distinct input files from " << trace
              << "\n\n";
  } else {
    const std::string sample = synthesize_swim_sample(300, 99);
    wl = workload::import_swim_string(sample, import_opts);
    std::cout << "No trace= given; synthesized a 300-row SWIM-format sample "
                 "("
              << wl.catalog.size() << " distinct input sizes).\n\n";
  }

  auto options = cluster::apply_overrides(
      cluster::paper_defaults(net::cct_profile(20),
                              cluster::SchedulerKind::kFifo,
                              cluster::PolicyKind::kElephantTrap),
      cfg);
  const auto vanilla_options = [&] {
    auto o = options;
    o.policy = cluster::PolicyKind::kVanilla;
    return o;
  }();

  const auto vanilla = cluster::run_once(vanilla_options, wl);
  const auto dare = cluster::run_once(options, wl);

  AsciiTable table({"metric", "vanilla", cluster::policy_name(options.policy)});
  table.add_row({"node locality", fmt_percent(vanilla.locality),
                 fmt_percent(dare.locality)});
  table.add_row({"rack locality", fmt_percent(vanilla.rack_locality),
                 fmt_percent(dare.rack_locality)});
  table.add_row({"GMTT", fmt_fixed(vanilla.gmtt_s, 2) + " s",
                 fmt_fixed(dare.gmtt_s, 2) + " s"});
  table.add_row({"mean slowdown", fmt_fixed(vanilla.mean_slowdown, 2),
                 fmt_fixed(dare.mean_slowdown, 2)});
  table.add_row({"blocks created/job", "0.00",
                 fmt_fixed(dare.blocks_created_per_job, 2)});
  table.print(std::cout, "SWIM replay on " +
                             std::to_string(options.profile.topology.nodes) +
                             " nodes (" +
                             std::string(cluster::scheduler_name(
                                 options.scheduler)) +
                             " scheduler)");
  return 0;
}
