// Failure drill: kill workers mid-run and watch the system recover —
// task re-execution, name-node re-replication, and the availability
// headroom DARE's extra replicas provide (paper Section IV-B).
//
// Usage: failure_drill [kills=2] [jobs=N] [nodes=N]
//                      [plus cluster overrides: policy=, scheduler=, ...]
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));
  const auto kills = static_cast<int>(cfg.get_int("kills", 2));

  const auto wl = cluster::standard_wl1(nodes, jobs);

  auto base = cluster::apply_overrides(
      cluster::paper_defaults(net::cct_profile(nodes),
                              cluster::SchedulerKind::kFifo,
                              cluster::PolicyKind::kElephantTrap),
      cfg);
  // Spread the kills over the early run, hitting distinct workers.
  for (int k = 0; k < kills; ++k) {
    base.failures.push_back(
        {from_seconds(10.0 * (k + 1)),
         static_cast<NodeId>((3 + 5 * k) % (nodes - 1))});
  }

  AsciiTable table({"configuration", "locality", "GMTT (s)",
                    "re-executions", "repaired", "lost blocks"});
  for (const bool with_failures : {false, true}) {
    auto options = base;
    if (!with_failures) options.failures.clear();
    const auto result = cluster::run_once(options, wl);
    table.add_row({with_failures
                       ? std::to_string(kills) + " node failures"
                       : "no failures",
                   fmt_percent(result.locality), fmt_fixed(result.gmtt_s, 2),
                   std::to_string(result.task_reexecutions),
                   std::to_string(result.rereplicated_blocks),
                   std::to_string(result.blocks_lost)});
  }
  table.print(std::cout,
              "Failure drill — " + std::to_string(nodes) + "-node cluster, " +
                  std::string(cluster::policy_name(base.policy)) + " policy");
  std::cout << "\nEvery job still completes: running tasks on the dead nodes "
               "are re-executed elsewhere, and\nthe name node re-replicates "
               "under-replicated blocks from the surviving copies.\n";
  return 0;
}
