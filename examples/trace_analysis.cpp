// Production-trace analytics (paper Section III): generate a Yahoo-style
// HDFS audit trace and compute every statistic the paper derives from the
// real logs — popularity-vs-rank, age-at-access CDF, and the burst-window
// distributions — in one report.
//
// Usage: trace_analysis [files=N] [accesses=N] [seed=N]
#include <cmath>
#include <iostream>

#include "analysis/trace_analysis.h"
#include "common/config.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  workload::YahooTraceOptions opts;
  opts.files = static_cast<std::size_t>(cfg.get_int("files", 1000));
  opts.total_accesses =
      static_cast<std::size_t>(cfg.get_int("accesses", 100000));
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  std::cout << "Generating a week-long audit trace: " << opts.files
            << " files, ~" << opts.total_accesses << " accesses...\n\n";
  const auto trace = workload::generate_yahoo_trace(opts);

  // --- popularity ---------------------------------------------------------
  const auto ranking = analysis::popularity_ranking(trace);
  AsciiTable pop({"rank", "file", "accesses", "blocks"});
  for (std::size_t r : {1u, 10u, 100u}) {
    if (r > ranking.size()) break;
    const auto& e = ranking[r - 1];
    pop.add_row({std::to_string(r), std::to_string(e.file),
                 std::to_string(e.accesses), std::to_string(e.blocks)});
  }
  pop.print(std::cout, "File popularity (top ranks)");
  const double decades =
      std::log10(static_cast<double>(ranking.front().accesses) /
                 std::max<double>(1.0, static_cast<double>(
                                           ranking.back().accesses)));
  std::cout << "Popularity spans " << fmt_fixed(decades, 1)
            << " decades — uniform replication cannot serve this.\n\n";

  // --- temporal locality --------------------------------------------------
  const auto age_cdf = analysis::age_at_access_cdf(trace);
  std::cout << "Age at access: 50% of accesses within "
            << fmt_fixed(age_cdf.quantile(0.5) / 3600.0, 1)
            << " hours of file creation; "
            << fmt_percent(age_cdf.fraction_at_or_below(24 * 3600.0))
            << " within the first day.\n\n";

  // --- burstiness ---------------------------------------------------------
  analysis::WindowOptions wopts;
  const auto windows = analysis::burst_window_distribution(trace, wopts);
  double bursty = 0.0;
  double daily = 0.0;
  for (std::size_t w = 1; w < windows.fraction.size(); ++w) {
    if (w <= 3) {
      bursty += windows.fraction[w];
    } else if (w >= 72) {
      daily += windows.fraction[w];
    }
  }
  std::cout << "Burst windows over the big files ("
            << windows.files_considered << " files holding 80% of "
            << "accesses):\n  " << fmt_percent(bursty)
            << " concentrate 80% of their accesses within <= 3 hours;\n  "
            << fmt_percent(daily)
            << " are accessed daily and need multi-day windows.\n\n";

  // --- concurrency (the hotspot problem) -----------------------------------
  const auto concurrency =
      analysis::peak_concurrency(trace, from_seconds(3600.0));
  AsciiTable hot({"popularity rank", "accesses", "peak accesses in 1 hour"});
  for (std::size_t r : {1u, 2u, 5u, 20u, 100u}) {
    if (r > concurrency.size()) break;
    const auto& e = concurrency[r - 1];
    hot.add_row({std::to_string(r), std::to_string(e.accesses),
                 std::to_string(e.peak_concurrency)});
  }
  hot.print(std::cout, "Peak hourly concurrency by popularity rank");
  std::cout << "\nWith 3 static replicas, a file whose hourly burst exceeds "
               "a few dozen accesses becomes a\nhotspot: its replica nodes "
               "saturate. That is the replica *allocation* problem; how "
               "DARE\nsolves it reactively is shown by examples/quickstart "
               "and bench_fig7_cct.\n\n"
            << "Consequence (the paper's motivation): popularity is both "
               "skewed and short-lived, so replication\nmust adapt "
               "continuously — which is precisely what DARE does.\n";
  return 0;
}
