// Network-fault demo: the same workload on a quiet cluster, then with rack
// partitions and degraded uplinks raging, then with the mitigation ladder
// stepped up — the plain FIFO repair queue versus the prioritized
// bandwidth-aware repair scheduler that lets critically-exposed blocks
// (one reachable replica left) jump the bulk re-replication backlog.
//
// Usage: netfault_run [jobs=N] [nodes=N]
//                     [plus cluster overrides: netfault=, part_mtbf_s=,
//                      repair_policy=, repairs_per_uplink=, ...]
#include <algorithm>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"

namespace {

constexpr const char kUsage[] =
    "usage: netfault_run [jobs=N] [nodes=N]\n"
    "                    [plus cluster overrides: netfault=, part_mtbf_s=,\n"
    "                     part_duration_s=, link_mtbf_s=, link_duration_s=,\n"
    "                     bandwidth_cut=, latency_inflation=,\n"
    "                     connect_timeout_s=, repair_policy=,\n"
    "                     repairs_per_uplink=, repair_backoff_s=,\n"
    "                     policy=, scheduler=, seed=, ...]\n"
    "Arguments are key=value tokens; anything else is rejected.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);

  // A typo'd knob must fail loudly, not silently run the default config.
  const std::vector<std::string> local_keys = {"jobs", "nodes"};
  std::vector<std::string> unknown = positional;
  for (const auto& key : cfg.keys()) {
    const auto& shared = cluster::override_keys();
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(local_keys.begin(), local_keys.end(), key) !=
        local_keys.end()) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << '\n' << kUsage;
    return 1;
  }

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));

  const auto wl = cluster::standard_wl1(nodes, jobs);

  // Default network-fault climate; every knob is overridable from the CLI.
  // Mild node churn underneath keeps the repair pipeline honest.
  auto base = cluster::paper_defaults(net::ec2_profile(nodes),
                                      cluster::SchedulerKind::kFair,
                                      cluster::PolicyKind::kElephantTrap);
  base.faults.enabled = true;
  base.faults.mtbf_s = 240.0;
  base.faults.mttr_s = 30.0;
  base.faults.permanent_fraction = 0.15;
  base.faults.min_live_workers = 4;
  base.netfault.partition_mtbf_s = 120.0;
  base.netfault.partition_duration_s = 20.0;
  base.netfault.link_degrade_mtbf_s = 90.0;
  base.netfault.link_degrade_duration_s = 40.0;
  base.rereplication_interval = from_seconds(1.0);
  base.rereplication_batch = 32;
  base = cluster::apply_overrides(base, cfg);

  struct Variant {
    const char* name;
    bool netfault;
    cluster::RepairPolicy repair;
  };
  const Variant variants[] = {
      {"quiet network", false, cluster::RepairPolicy::kFifo},
      {"partitions, fifo repair", true, cluster::RepairPolicy::kFifo},
      {"partitions, prioritized repair", true,
       cluster::RepairPolicy::kPrioritized},
  };

  AsciiTable table({"configuration", "GMTT (s)", "locality", "partitions",
                    "healed", "link degrades", "unreach reads", "retries",
                    "repaired", "1-rep windows", "1-rep (s)", "failed jobs"});
  for (const auto& v : variants) {
    auto options = base;
    options.netfault.enabled = v.netfault;
    options.repair_policy = v.repair;
    const auto result = cluster::run_once(options, wl);
    table.add_row({v.name, fmt_fixed(result.gmtt_s, 2),
                   fmt_percent(result.locality),
                   std::to_string(result.partition_episodes),
                   std::to_string(result.partitions_healed),
                   std::to_string(result.link_degrade_episodes),
                   std::to_string(result.unreachable_reads),
                   std::to_string(result.repair_retries),
                   std::to_string(result.repairs_landed),
                   std::to_string(result.one_replica_windows),
                   fmt_fixed(result.one_replica_total_s, 1),
                   std::to_string(result.failed_jobs)});
  }
  table.print(
      std::cout,
      "Network-fault demo — " + std::to_string(nodes) + "-node cluster, " +
          std::string(cluster::policy_name(base.policy)) +
          " policy, partition MTBF " +
          std::to_string(static_cast<int>(base.netfault.partition_mtbf_s)) +
          " s, episodes " +
          std::to_string(
              static_cast<int>(base.netfault.partition_duration_s)) +
          " s");
  std::cout
      << "\nA partitioned rack keeps computing but stops heartbeating: the "
         "name node declares its\nnodes dead and queues re-replication for "
         "their blocks; reads past the boundary fail\nfast after a connect "
         "timeout. When the partition heals, the nodes re-register and\n"
         "surplus repair copies are pruned. The prioritized repair "
         "scheduler drains blocks down\nto one reachable replica before any "
         "bulk backlog, shrinking the exposure windows a\nfifo queue leaves "
         "open.\n";
  return 0;
}
