// Quickstart: the smallest complete DARE experiment.
//
// Builds a 20-node dedicated cluster (1 master + 19 workers), generates a
// 200-job heavy-tailed workload, and runs it twice — once with vanilla
// Hadoop replication and once with DARE's ElephantTrap policy — printing
// the locality and turnaround improvement.
//
// Usage: quickstart [jobs=N] [nodes=N] [p=0.3] [threshold=1] [budget=0.2]
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  const Config cfg = Config::from_args(args);

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 200));

  // 1. Synthesize a workload: a long stream of small jobs whose input files
  //    follow a heavy-tailed popularity distribution (the paper's wl1).
  const workload::Workload wl = cluster::standard_wl1(nodes, jobs);

  // 2. Configure the cluster. `paper_defaults` gives the paper's standard
  //    DARE parameters (p=0.3, threshold=1, budget=0.2); individual knobs
  //    can be overridden from the command line.
  auto vanilla = cluster::paper_defaults(net::cct_profile(nodes),
                                         cluster::SchedulerKind::kFifo,
                                         cluster::PolicyKind::kVanilla);
  auto dare = cluster::paper_defaults(net::cct_profile(nodes),
                                      cluster::SchedulerKind::kFifo,
                                      cluster::PolicyKind::kElephantTrap);
  dare.trap.p = cfg.get_double("p", dare.trap.p);
  dare.trap.threshold = static_cast<std::uint32_t>(
      cfg.get_int("threshold", dare.trap.threshold));
  dare.budget_fraction = cfg.get_double("budget", dare.budget_fraction);

  // 3. Run both configurations on the same workload.
  const auto before = cluster::run_once(vanilla, wl);
  const auto after = cluster::run_once(dare, wl);

  // 4. Report.
  AsciiTable table({"metric", "vanilla Hadoop", "with DARE"});
  table.add_row({"map-task data locality", fmt_percent(before.locality),
                 fmt_percent(after.locality)});
  table.add_row({"geometric mean turnaround",
                 fmt_fixed(before.gmtt_s, 2) + " s",
                 fmt_fixed(after.gmtt_s, 2) + " s"});
  table.add_row({"mean slowdown", fmt_fixed(before.mean_slowdown, 2),
                 fmt_fixed(after.mean_slowdown, 2)});
  table.add_row({"dynamic replicas created", "0",
                 std::to_string(after.dynamic_replicas_created)});
  table.print(std::cout,
              "DARE quickstart — " + std::to_string(nodes) + "-node cluster, " +
                  std::to_string(jobs) + " jobs (FIFO scheduler)");
  std::cout << "\nLocality improved "
            << fmt_fixed(after.locality / before.locality, 1)
            << "x; turnaround reduced "
            << fmt_percent(1.0 - after.gmtt_s / before.gmtt_s)
            << ". Try fair scheduling with the facebook_workload example.\n";
  return 0;
}
