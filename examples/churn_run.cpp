// Churn demo: the same workload on a quiet cluster and on one where nodes
// continuously fail and rejoin. Shows heartbeat-timeout detection, rejoin
// reconciliation (stale replicas pruned when repair won the race), task
// retry limits, and that every job is still terminally accounted.
//
// Usage: churn_run [jobs=N] [nodes=N] [mtbf_s=S] [mttr_s=S]
//                  [plus cluster overrides: policy=, scheduler=, seed=, ...]
#include <algorithm>
#include <iostream>

#include "cluster/experiment.h"
#include "common/config.h"
#include "common/table.h"

namespace {

constexpr const char kUsage[] =
    "usage: churn_run [jobs=N] [nodes=N] [mtbf_s=S] [mttr_s=S]\n"
    "                 [plus cluster overrides: policy=, scheduler=, seed=,\n"
    "                  corruption=, bitrot_per_gb=, sector_mtbf_s=, ...]\n"
    "Arguments are key=value tokens; anything else is rejected.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dare;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  const Config cfg = Config::from_args(args, &positional);

  // A typo'd knob must fail loudly, not silently run the default config.
  const std::vector<std::string> local_keys = {"jobs", "nodes"};
  std::vector<std::string> unknown = positional;
  for (const auto& key : cfg.keys()) {
    const auto& shared = cluster::override_keys();
    if (std::find(shared.begin(), shared.end(), key) != shared.end()) continue;
    if (std::find(local_keys.begin(), local_keys.end(), key) !=
        local_keys.end()) {
      continue;
    }
    unknown.push_back(key + "=...");
  }
  if (!unknown.empty()) {
    std::cerr << "error: unrecognized argument(s):";
    for (const auto& u : unknown) std::cerr << ' ' << u;
    std::cerr << '\n' << kUsage;
    return 1;
  }

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 300));

  const auto wl = cluster::standard_wl1(nodes, jobs);

  auto base = cluster::apply_overrides(
      cluster::paper_defaults(net::ec2_profile(nodes),
                              cluster::SchedulerKind::kFair,
                              cluster::PolicyKind::kElephantTrap),
      cfg);
  base.faults.mtbf_s = cfg.get_double("mtbf_s", 120.0);
  base.faults.mttr_s = cfg.get_double("mttr_s", 30.0);
  base.faults.permanent_fraction = 0.2;
  base.faults.rack_correlation = 0.2;
  base.faults.task_failure_prob = 0.005;
  base.faults.min_live_workers = 4;
  base.rereplication_interval = from_seconds(2.0);

  AsciiTable table({"configuration", "locality", "GMTT (s)", "failures",
                    "detected", "mean detect (s)", "rejoins", "re-executed",
                    "repaired", "pruned", "corrupt reads", "data loss",
                    "unavail (s)", "failed jobs"});
  for (const bool with_churn : {false, true}) {
    auto options = base;
    options.faults.enabled = with_churn;
    const auto result = cluster::run_once(options, wl);
    table.add_row({with_churn ? "stochastic churn" : "quiet cluster",
                   fmt_percent(result.locality), fmt_fixed(result.gmtt_s, 2),
                   std::to_string(result.node_failures),
                   std::to_string(result.failures_detected),
                   fmt_fixed(result.mean_detection_latency_s, 2),
                   std::to_string(result.node_rejoins),
                   std::to_string(result.task_reexecutions),
                   std::to_string(result.rereplicated_blocks),
                   std::to_string(result.overreplication_prunes),
                   std::to_string(result.corrupt_reads),
                   std::to_string(result.data_loss_events),
                   fmt_fixed(result.unavailability_total_s, 1),
                   std::to_string(result.failed_jobs)});
  }
  table.print(std::cout,
              "Churn demo — " + std::to_string(nodes) + "-node cluster, " +
                  std::string(cluster::policy_name(base.policy)) +
                  " policy, MTBF " +
                  std::to_string(static_cast<int>(base.faults.mtbf_s)) +
                  " s / MTTR " +
                  std::to_string(static_cast<int>(base.faults.mttr_s)) + " s");
  std::cout << "\nThe name node only learns of a death after 3 missed "
               "heartbeats (9 s), re-replicates the\ndead node's blocks, and "
               "when the node rejoins it reconciles: surplus stale replicas "
               "are\npruned, the replication policies rebuild from the "
               "surviving disk, and interrupted tasks\nretry elsewhere (up "
               "to 4 attempts before the job fails cleanly).\n";
  return 0;
}
