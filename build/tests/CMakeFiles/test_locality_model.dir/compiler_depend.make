# Empty compiler generated dependencies file for test_locality_model.
# This may be replaced when dependencies are built.
