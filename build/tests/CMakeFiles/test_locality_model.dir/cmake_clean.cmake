file(REMOVE_RECURSE
  "CMakeFiles/test_locality_model.dir/test_locality_model.cpp.o"
  "CMakeFiles/test_locality_model.dir/test_locality_model.cpp.o.d"
  "test_locality_model"
  "test_locality_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locality_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
