# Empty compiler generated dependencies file for test_datanode.
# This may be replaced when dependencies are built.
