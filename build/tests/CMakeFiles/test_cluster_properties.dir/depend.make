# Empty dependencies file for test_cluster_properties.
# This may be replaced when dependencies are built.
