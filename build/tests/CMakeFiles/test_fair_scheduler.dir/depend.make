# Empty dependencies file for test_fair_scheduler.
# This may be replaced when dependencies are built.
