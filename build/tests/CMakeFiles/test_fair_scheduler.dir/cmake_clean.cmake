file(REMOVE_RECURSE
  "CMakeFiles/test_fair_scheduler.dir/test_fair_scheduler.cpp.o"
  "CMakeFiles/test_fair_scheduler.dir/test_fair_scheduler.cpp.o.d"
  "test_fair_scheduler"
  "test_fair_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fair_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
