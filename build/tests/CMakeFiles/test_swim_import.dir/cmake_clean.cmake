file(REMOVE_RECURSE
  "CMakeFiles/test_swim_import.dir/test_swim_import.cpp.o"
  "CMakeFiles/test_swim_import.dir/test_swim_import.cpp.o.d"
  "test_swim_import"
  "test_swim_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swim_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
