# Empty dependencies file for test_swim_import.
# This may be replaced when dependencies are built.
