# Empty dependencies file for test_scarlett.
# This may be replaced when dependencies are built.
