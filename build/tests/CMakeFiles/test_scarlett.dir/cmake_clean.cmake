file(REMOVE_RECURSE
  "CMakeFiles/test_scarlett.dir/test_scarlett.cpp.o"
  "CMakeFiles/test_scarlett.dir/test_scarlett.cpp.o.d"
  "test_scarlett"
  "test_scarlett.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scarlett.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
