file(REMOVE_RECURSE
  "CMakeFiles/test_job_table.dir/test_job_table.cpp.o"
  "CMakeFiles/test_job_table.dir/test_job_table.cpp.o.d"
  "test_job_table"
  "test_job_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
