# Empty dependencies file for test_job_table.
# This may be replaced when dependencies are built.
