file(REMOVE_RECURSE
  "CMakeFiles/test_yahoo_trace.dir/test_yahoo_trace.cpp.o"
  "CMakeFiles/test_yahoo_trace.dir/test_yahoo_trace.cpp.o.d"
  "test_yahoo_trace"
  "test_yahoo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yahoo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
