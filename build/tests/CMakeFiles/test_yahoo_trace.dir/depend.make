# Empty dependencies file for test_yahoo_trace.
# This may be replaced when dependencies are built.
