
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_heartbeat_pipeline.cpp" "tests/CMakeFiles/test_heartbeat_pipeline.dir/test_heartbeat_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_heartbeat_pipeline.dir/test_heartbeat_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dare_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dare_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dare_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dare_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
