file(REMOVE_RECURSE
  "CMakeFiles/test_heartbeat_pipeline.dir/test_heartbeat_pipeline.cpp.o"
  "CMakeFiles/test_heartbeat_pipeline.dir/test_heartbeat_pipeline.cpp.o.d"
  "test_heartbeat_pipeline"
  "test_heartbeat_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heartbeat_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
