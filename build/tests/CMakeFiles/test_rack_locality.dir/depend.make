# Empty dependencies file for test_rack_locality.
# This may be replaced when dependencies are built.
