file(REMOVE_RECURSE
  "CMakeFiles/test_rack_locality.dir/test_rack_locality.cpp.o"
  "CMakeFiles/test_rack_locality.dir/test_rack_locality.cpp.o.d"
  "test_rack_locality"
  "test_rack_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rack_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
