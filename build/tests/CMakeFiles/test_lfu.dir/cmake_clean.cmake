file(REMOVE_RECURSE
  "CMakeFiles/test_lfu.dir/test_lfu.cpp.o"
  "CMakeFiles/test_lfu.dir/test_lfu.cpp.o.d"
  "test_lfu"
  "test_lfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
