# Empty compiler generated dependencies file for test_lfu.
# This may be replaced when dependencies are built.
