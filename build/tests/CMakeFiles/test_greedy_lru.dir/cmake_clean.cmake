file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_lru.dir/test_greedy_lru.cpp.o"
  "CMakeFiles/test_greedy_lru.dir/test_greedy_lru.cpp.o.d"
  "test_greedy_lru"
  "test_greedy_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
