# Empty compiler generated dependencies file for test_greedy_lru.
# This may be replaced when dependencies are built.
