file(REMOVE_RECURSE
  "CMakeFiles/test_namenode.dir/test_namenode.cpp.o"
  "CMakeFiles/test_namenode.dir/test_namenode.cpp.o.d"
  "test_namenode"
  "test_namenode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_namenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
