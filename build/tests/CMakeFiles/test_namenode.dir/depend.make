# Empty dependencies file for test_namenode.
# This may be replaced when dependencies are built.
