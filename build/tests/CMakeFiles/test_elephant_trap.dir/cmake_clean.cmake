file(REMOVE_RECURSE
  "CMakeFiles/test_elephant_trap.dir/test_elephant_trap.cpp.o"
  "CMakeFiles/test_elephant_trap.dir/test_elephant_trap.cpp.o.d"
  "test_elephant_trap"
  "test_elephant_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elephant_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
