# Empty compiler generated dependencies file for test_fifo_scheduler.
# This may be replaced when dependencies are built.
