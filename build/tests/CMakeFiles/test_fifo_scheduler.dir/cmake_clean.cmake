file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_scheduler.dir/test_fifo_scheduler.cpp.o"
  "CMakeFiles/test_fifo_scheduler.dir/test_fifo_scheduler.cpp.o.d"
  "test_fifo_scheduler"
  "test_fifo_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
