# Empty dependencies file for test_fuzz_policies.
# This may be replaced when dependencies are built.
