file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_policies.dir/test_fuzz_policies.cpp.o"
  "CMakeFiles/test_fuzz_policies.dir/test_fuzz_policies.cpp.o.d"
  "test_fuzz_policies"
  "test_fuzz_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
