file(REMOVE_RECURSE
  "CMakeFiles/swim2trace.dir/swim2trace.cpp.o"
  "CMakeFiles/swim2trace.dir/swim2trace.cpp.o.d"
  "swim2trace"
  "swim2trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swim2trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
