# Empty dependencies file for swim2trace.
# This may be replaced when dependencies are built.
