file(REMOVE_RECURSE
  "CMakeFiles/dare_sched.dir/fair_scheduler.cpp.o"
  "CMakeFiles/dare_sched.dir/fair_scheduler.cpp.o.d"
  "CMakeFiles/dare_sched.dir/fifo_scheduler.cpp.o"
  "CMakeFiles/dare_sched.dir/fifo_scheduler.cpp.o.d"
  "CMakeFiles/dare_sched.dir/job_table.cpp.o"
  "CMakeFiles/dare_sched.dir/job_table.cpp.o.d"
  "libdare_sched.a"
  "libdare_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
