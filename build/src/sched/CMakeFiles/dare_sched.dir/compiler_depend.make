# Empty compiler generated dependencies file for dare_sched.
# This may be replaced when dependencies are built.
