
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/fair_scheduler.cpp" "src/sched/CMakeFiles/dare_sched.dir/fair_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dare_sched.dir/fair_scheduler.cpp.o.d"
  "/root/repo/src/sched/fifo_scheduler.cpp" "src/sched/CMakeFiles/dare_sched.dir/fifo_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dare_sched.dir/fifo_scheduler.cpp.o.d"
  "/root/repo/src/sched/job_table.cpp" "src/sched/CMakeFiles/dare_sched.dir/job_table.cpp.o" "gcc" "src/sched/CMakeFiles/dare_sched.dir/job_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dare_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dare_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dare_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
