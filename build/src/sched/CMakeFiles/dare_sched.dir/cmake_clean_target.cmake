file(REMOVE_RECURSE
  "libdare_sched.a"
)
