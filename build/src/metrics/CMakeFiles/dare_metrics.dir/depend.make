# Empty dependencies file for dare_metrics.
# This may be replaced when dependencies are built.
