file(REMOVE_RECURSE
  "CMakeFiles/dare_metrics.dir/availability.cpp.o"
  "CMakeFiles/dare_metrics.dir/availability.cpp.o.d"
  "CMakeFiles/dare_metrics.dir/fairness.cpp.o"
  "CMakeFiles/dare_metrics.dir/fairness.cpp.o.d"
  "CMakeFiles/dare_metrics.dir/locality_model.cpp.o"
  "CMakeFiles/dare_metrics.dir/locality_model.cpp.o.d"
  "CMakeFiles/dare_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/dare_metrics.dir/run_metrics.cpp.o.d"
  "libdare_metrics.a"
  "libdare_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
