file(REMOVE_RECURSE
  "libdare_metrics.a"
)
