
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/availability.cpp" "src/metrics/CMakeFiles/dare_metrics.dir/availability.cpp.o" "gcc" "src/metrics/CMakeFiles/dare_metrics.dir/availability.cpp.o.d"
  "/root/repo/src/metrics/fairness.cpp" "src/metrics/CMakeFiles/dare_metrics.dir/fairness.cpp.o" "gcc" "src/metrics/CMakeFiles/dare_metrics.dir/fairness.cpp.o.d"
  "/root/repo/src/metrics/locality_model.cpp" "src/metrics/CMakeFiles/dare_metrics.dir/locality_model.cpp.o" "gcc" "src/metrics/CMakeFiles/dare_metrics.dir/locality_model.cpp.o.d"
  "/root/repo/src/metrics/run_metrics.cpp" "src/metrics/CMakeFiles/dare_metrics.dir/run_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/dare_metrics.dir/run_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
