file(REMOVE_RECURSE
  "CMakeFiles/dare_analysis.dir/trace_analysis.cpp.o"
  "CMakeFiles/dare_analysis.dir/trace_analysis.cpp.o.d"
  "libdare_analysis.a"
  "libdare_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
