# Empty dependencies file for dare_analysis.
# This may be replaced when dependencies are built.
