file(REMOVE_RECURSE
  "libdare_analysis.a"
)
