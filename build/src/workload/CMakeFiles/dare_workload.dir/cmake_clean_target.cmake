file(REMOVE_RECURSE
  "libdare_workload.a"
)
