file(REMOVE_RECURSE
  "CMakeFiles/dare_workload.dir/catalog.cpp.o"
  "CMakeFiles/dare_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/dare_workload.dir/swim_import.cpp.o"
  "CMakeFiles/dare_workload.dir/swim_import.cpp.o.d"
  "CMakeFiles/dare_workload.dir/trace_io.cpp.o"
  "CMakeFiles/dare_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/dare_workload.dir/workload.cpp.o"
  "CMakeFiles/dare_workload.dir/workload.cpp.o.d"
  "CMakeFiles/dare_workload.dir/workload_stats.cpp.o"
  "CMakeFiles/dare_workload.dir/workload_stats.cpp.o.d"
  "CMakeFiles/dare_workload.dir/yahoo_trace.cpp.o"
  "CMakeFiles/dare_workload.dir/yahoo_trace.cpp.o.d"
  "libdare_workload.a"
  "libdare_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
