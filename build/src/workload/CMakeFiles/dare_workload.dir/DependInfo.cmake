
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/dare_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/swim_import.cpp" "src/workload/CMakeFiles/dare_workload.dir/swim_import.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/swim_import.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/dare_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/dare_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/workload.cpp.o.d"
  "/root/repo/src/workload/workload_stats.cpp" "src/workload/CMakeFiles/dare_workload.dir/workload_stats.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/workload_stats.cpp.o.d"
  "/root/repo/src/workload/yahoo_trace.cpp" "src/workload/CMakeFiles/dare_workload.dir/yahoo_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dare_workload.dir/yahoo_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dare_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dare_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dare_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
