# Empty compiler generated dependencies file for dare_workload.
# This may be replaced when dependencies are built.
