file(REMOVE_RECURSE
  "libdare_common.a"
)
