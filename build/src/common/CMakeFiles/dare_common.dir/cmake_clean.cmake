file(REMOVE_RECURSE
  "CMakeFiles/dare_common.dir/config.cpp.o"
  "CMakeFiles/dare_common.dir/config.cpp.o.d"
  "CMakeFiles/dare_common.dir/csv.cpp.o"
  "CMakeFiles/dare_common.dir/csv.cpp.o.d"
  "CMakeFiles/dare_common.dir/distributions.cpp.o"
  "CMakeFiles/dare_common.dir/distributions.cpp.o.d"
  "CMakeFiles/dare_common.dir/logging.cpp.o"
  "CMakeFiles/dare_common.dir/logging.cpp.o.d"
  "CMakeFiles/dare_common.dir/rng.cpp.o"
  "CMakeFiles/dare_common.dir/rng.cpp.o.d"
  "CMakeFiles/dare_common.dir/stats.cpp.o"
  "CMakeFiles/dare_common.dir/stats.cpp.o.d"
  "CMakeFiles/dare_common.dir/table.cpp.o"
  "CMakeFiles/dare_common.dir/table.cpp.o.d"
  "CMakeFiles/dare_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dare_common.dir/thread_pool.cpp.o.d"
  "libdare_common.a"
  "libdare_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
