# Empty compiler generated dependencies file for dare_common.
# This may be replaced when dependencies are built.
