file(REMOVE_RECURSE
  "libdare_cluster.a"
)
