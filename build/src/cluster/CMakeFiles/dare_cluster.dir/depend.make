# Empty dependencies file for dare_cluster.
# This may be replaced when dependencies are built.
