file(REMOVE_RECURSE
  "CMakeFiles/dare_cluster.dir/cluster.cpp.o"
  "CMakeFiles/dare_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/dare_cluster.dir/experiment.cpp.o"
  "CMakeFiles/dare_cluster.dir/experiment.cpp.o.d"
  "libdare_cluster.a"
  "libdare_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
