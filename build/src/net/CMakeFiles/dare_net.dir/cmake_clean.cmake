file(REMOVE_RECURSE
  "CMakeFiles/dare_net.dir/measurement.cpp.o"
  "CMakeFiles/dare_net.dir/measurement.cpp.o.d"
  "CMakeFiles/dare_net.dir/network.cpp.o"
  "CMakeFiles/dare_net.dir/network.cpp.o.d"
  "CMakeFiles/dare_net.dir/profile.cpp.o"
  "CMakeFiles/dare_net.dir/profile.cpp.o.d"
  "CMakeFiles/dare_net.dir/topology.cpp.o"
  "CMakeFiles/dare_net.dir/topology.cpp.o.d"
  "libdare_net.a"
  "libdare_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
