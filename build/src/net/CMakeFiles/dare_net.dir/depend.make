# Empty dependencies file for dare_net.
# This may be replaced when dependencies are built.
