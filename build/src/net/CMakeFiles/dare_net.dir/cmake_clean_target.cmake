file(REMOVE_RECURSE
  "libdare_net.a"
)
