file(REMOVE_RECURSE
  "libdare_sim.a"
)
