file(REMOVE_RECURSE
  "CMakeFiles/dare_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dare_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dare_sim.dir/simulation.cpp.o"
  "CMakeFiles/dare_sim.dir/simulation.cpp.o.d"
  "libdare_sim.a"
  "libdare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
