
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/datanode.cpp" "src/storage/CMakeFiles/dare_storage.dir/datanode.cpp.o" "gcc" "src/storage/CMakeFiles/dare_storage.dir/datanode.cpp.o.d"
  "/root/repo/src/storage/namenode.cpp" "src/storage/CMakeFiles/dare_storage.dir/namenode.cpp.o" "gcc" "src/storage/CMakeFiles/dare_storage.dir/namenode.cpp.o.d"
  "/root/repo/src/storage/placement.cpp" "src/storage/CMakeFiles/dare_storage.dir/placement.cpp.o" "gcc" "src/storage/CMakeFiles/dare_storage.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dare_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
