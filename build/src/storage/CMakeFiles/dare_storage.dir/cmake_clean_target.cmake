file(REMOVE_RECURSE
  "libdare_storage.a"
)
