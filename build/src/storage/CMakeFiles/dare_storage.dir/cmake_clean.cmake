file(REMOVE_RECURSE
  "CMakeFiles/dare_storage.dir/datanode.cpp.o"
  "CMakeFiles/dare_storage.dir/datanode.cpp.o.d"
  "CMakeFiles/dare_storage.dir/namenode.cpp.o"
  "CMakeFiles/dare_storage.dir/namenode.cpp.o.d"
  "CMakeFiles/dare_storage.dir/placement.cpp.o"
  "CMakeFiles/dare_storage.dir/placement.cpp.o.d"
  "libdare_storage.a"
  "libdare_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
