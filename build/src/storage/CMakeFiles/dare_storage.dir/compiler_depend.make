# Empty compiler generated dependencies file for dare_storage.
# This may be replaced when dependencies are built.
