
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/elephant_trap.cpp" "src/core/CMakeFiles/dare_core.dir/elephant_trap.cpp.o" "gcc" "src/core/CMakeFiles/dare_core.dir/elephant_trap.cpp.o.d"
  "/root/repo/src/core/greedy_lru.cpp" "src/core/CMakeFiles/dare_core.dir/greedy_lru.cpp.o" "gcc" "src/core/CMakeFiles/dare_core.dir/greedy_lru.cpp.o.d"
  "/root/repo/src/core/lfu.cpp" "src/core/CMakeFiles/dare_core.dir/lfu.cpp.o" "gcc" "src/core/CMakeFiles/dare_core.dir/lfu.cpp.o.d"
  "/root/repo/src/core/scarlett.cpp" "src/core/CMakeFiles/dare_core.dir/scarlett.cpp.o" "gcc" "src/core/CMakeFiles/dare_core.dir/scarlett.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dare_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dare_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dare_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
