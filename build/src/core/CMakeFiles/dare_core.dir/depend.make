# Empty dependencies file for dare_core.
# This may be replaced when dependencies are built.
