file(REMOVE_RECURSE
  "CMakeFiles/dare_core.dir/elephant_trap.cpp.o"
  "CMakeFiles/dare_core.dir/elephant_trap.cpp.o.d"
  "CMakeFiles/dare_core.dir/greedy_lru.cpp.o"
  "CMakeFiles/dare_core.dir/greedy_lru.cpp.o.d"
  "CMakeFiles/dare_core.dir/lfu.cpp.o"
  "CMakeFiles/dare_core.dir/lfu.cpp.o.d"
  "CMakeFiles/dare_core.dir/scarlett.cpp.o"
  "CMakeFiles/dare_core.dir/scarlett.cpp.o.d"
  "libdare_core.a"
  "libdare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
