# Empty dependencies file for bench_fig4_windows.
# This may be replaced when dependencies are built.
