file(REMOVE_RECURSE
  "CMakeFiles/bench_model_check.dir/bench_model_check.cpp.o"
  "CMakeFiles/bench_model_check.dir/bench_model_check.cpp.o.d"
  "bench_model_check"
  "bench_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
