# Empty dependencies file for bench_map_times.
# This may be replaced when dependencies are built.
