file(REMOVE_RECURSE
  "CMakeFiles/bench_map_times.dir/bench_map_times.cpp.o"
  "CMakeFiles/bench_map_times.dir/bench_map_times.cpp.o.d"
  "bench_map_times"
  "bench_map_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_map_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
