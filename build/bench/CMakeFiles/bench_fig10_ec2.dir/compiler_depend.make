# Empty compiler generated dependencies file for bench_fig10_ec2.
# This may be replaced when dependencies are built.
