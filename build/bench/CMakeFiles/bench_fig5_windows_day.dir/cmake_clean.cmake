file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_windows_day.dir/bench_fig5_windows_day.cpp.o"
  "CMakeFiles/bench_fig5_windows_day.dir/bench_fig5_windows_day.cpp.o.d"
  "bench_fig5_windows_day"
  "bench_fig5_windows_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_windows_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
