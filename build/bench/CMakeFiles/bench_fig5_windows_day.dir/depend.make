# Empty dependencies file for bench_fig5_windows_day.
# This may be replaced when dependencies are built.
