file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cct.dir/bench_fig7_cct.cpp.o"
  "CMakeFiles/bench_fig7_cct.dir/bench_fig7_cct.cpp.o.d"
  "bench_fig7_cct"
  "bench_fig7_cct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
