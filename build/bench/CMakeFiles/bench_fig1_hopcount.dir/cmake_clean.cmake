file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hopcount.dir/bench_fig1_hopcount.cpp.o"
  "CMakeFiles/bench_fig1_hopcount.dir/bench_fig1_hopcount.cpp.o.d"
  "bench_fig1_hopcount"
  "bench_fig1_hopcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hopcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
