# Empty dependencies file for bench_fig1_hopcount.
# This may be replaced when dependencies are built.
