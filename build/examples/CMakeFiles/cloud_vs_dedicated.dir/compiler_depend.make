# Empty compiler generated dependencies file for cloud_vs_dedicated.
# This may be replaced when dependencies are built.
