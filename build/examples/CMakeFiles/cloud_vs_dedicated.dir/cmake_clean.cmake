file(REMOVE_RECURSE
  "CMakeFiles/cloud_vs_dedicated.dir/cloud_vs_dedicated.cpp.o"
  "CMakeFiles/cloud_vs_dedicated.dir/cloud_vs_dedicated.cpp.o.d"
  "cloud_vs_dedicated"
  "cloud_vs_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_vs_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
