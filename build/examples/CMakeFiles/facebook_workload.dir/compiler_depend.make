# Empty compiler generated dependencies file for facebook_workload.
# This may be replaced when dependencies are built.
