file(REMOVE_RECURSE
  "CMakeFiles/facebook_workload.dir/facebook_workload.cpp.o"
  "CMakeFiles/facebook_workload.dir/facebook_workload.cpp.o.d"
  "facebook_workload"
  "facebook_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facebook_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
