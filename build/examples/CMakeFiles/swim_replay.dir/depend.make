# Empty dependencies file for swim_replay.
# This may be replaced when dependencies are built.
