#include "sched/job_table.h"

#include <gtest/gtest.h>

#include <set>

namespace dare::sched {
namespace {

JobSpec make_job(JobId id, std::size_t maps, std::size_t reduces = 1,
                 BlockId first_block = 100) {
  JobSpec spec;
  spec.id = id;
  spec.arrival = 10 * id;
  spec.input_file = id;
  for (std::size_t i = 0; i < maps; ++i) {
    spec.maps.push_back(
        MapTaskSpec{first_block + static_cast<BlockId>(i), 128, 1000});
  }
  spec.reduces = reduces;
  return spec;
}

/// Locator marking a fixed set of blocks local to every node.
class FakeLocator final : public BlockLocator {
 public:
  explicit FakeLocator(std::set<BlockId> local) : local_(std::move(local)) {}
  bool is_local(NodeId, BlockId block) const override {
    return local_.count(block) != 0;
  }

 private:
  std::set<BlockId> local_;
};

TEST(JobTable, AddJobInitializesState) {
  JobTable table;
  table.add_job(make_job(1, 3, 2));
  const auto& rt = table.job(1);
  EXPECT_EQ(rt.pending_maps.size(), 3u);
  EXPECT_EQ(rt.pending_reduces, 2u);
  EXPECT_EQ(rt.running_maps, 0u);
  EXPECT_FALSE(rt.maps_done());
  EXPECT_FALSE(rt.done());
  EXPECT_EQ(table.total_pending_maps(), 3u);
  EXPECT_EQ(table.total_pending_reduces(), 2u);
  EXPECT_FALSE(table.all_done());
}

TEST(JobTable, DuplicateAndInvalidJobsRejected) {
  JobTable table;
  table.add_job(make_job(1, 1));
  EXPECT_THROW(table.add_job(make_job(1, 1)), std::logic_error);
  JobSpec no_maps = make_job(2, 1);
  no_maps.maps.clear();
  EXPECT_THROW(table.add_job(no_maps), std::invalid_argument);
  JobSpec bad_id = make_job(kInvalidJob, 1);
  EXPECT_THROW(table.add_job(bad_id), std::invalid_argument);
}

TEST(JobTable, MapLifecycle) {
  JobTable table;
  table.add_job(make_job(1, 2, 1));
  const std::size_t idx = table.launch_map(1, 0, Locality::kNodeLocal);
  EXPECT_LT(idx, 2u);
  EXPECT_EQ(table.job(1).running_maps, 1u);
  EXPECT_EQ(table.job(1).local_launches, 1u);
  EXPECT_EQ(table.total_pending_maps(), 1u);
  table.complete_map(1, 50);
  EXPECT_EQ(table.job(1).completed_maps, 1u);
  EXPECT_FALSE(table.job(1).maps_done());
  table.launch_map(1, 0, Locality::kOffRack);
  EXPECT_EQ(table.job(1).remote_launches, 1u);
  table.complete_map(1, 60);
  EXPECT_TRUE(table.job(1).maps_done());
}

TEST(JobTable, ReduceGatedOnMapsDone) {
  JobTable table;
  table.add_job(make_job(1, 1, 1));
  EXPECT_THROW(table.launch_reduce(1), std::logic_error);
  table.launch_map(1, 0, Locality::kNodeLocal);
  table.complete_map(1, 5);
  table.launch_reduce(1);
  EXPECT_EQ(table.job(1).running_reduces, 1u);
  table.complete_reduce(1, 42);
  EXPECT_TRUE(table.job(1).done());
  EXPECT_EQ(table.job(1).completion, 42);
  EXPECT_TRUE(table.all_done());
}

TEST(JobTable, ZeroReduceJobCompletesWithLastMap) {
  JobTable table;
  table.add_job(make_job(1, 1, /*reduces=*/0));
  table.launch_map(1, 0, Locality::kNodeLocal);
  table.complete_map(1, 33);
  EXPECT_TRUE(table.job(1).done());
  EXPECT_EQ(table.job(1).completion, 33);
  EXPECT_TRUE(table.active_jobs().empty());
}

TEST(JobTable, ActiveJobsShrinkOnCompletion) {
  JobTable table;
  table.add_job(make_job(1, 1, 1));
  table.add_job(make_job(2, 1, 1));
  EXPECT_EQ(table.active_jobs().size(), 2u);
  table.launch_map(1, 0, Locality::kNodeLocal);
  table.complete_map(1, 1);
  table.launch_reduce(1);
  table.complete_reduce(1, 2);
  ASSERT_EQ(table.active_jobs().size(), 1u);
  EXPECT_EQ(table.active_jobs().front(), 2);
  EXPECT_EQ(table.all_jobs().size(), 2u);
}

TEST(JobTable, ReduceReadyTracksTransitions) {
  JobTable table;
  table.add_job(make_job(1, 1, /*reduces=*/2));
  table.add_job(make_job(2, 1, /*reduces=*/1));
  EXPECT_TRUE(table.reduce_ready().empty());

  // Job 2 finishes its map first but must sort after job 1 when job 1
  // becomes ready too (arrival order).
  table.launch_map(2, 0, Locality::kNodeLocal);
  table.complete_map(2, 1);
  ASSERT_EQ(table.reduce_ready().size(), 1u);
  EXPECT_EQ(table.reduce_ready().begin()->second->spec.id, 2);

  table.launch_map(1, 0, Locality::kNodeLocal);
  table.complete_map(1, 2);
  ASSERT_EQ(table.reduce_ready().size(), 2u);
  EXPECT_EQ(table.reduce_ready().begin()->second->spec.id, 1);

  // Launching the last pending reduce drops the job; a requeue re-adds it.
  table.launch_reduce(2);
  EXPECT_EQ(table.reduce_ready().size(), 1u);
  table.requeue_running_reduce(2);
  EXPECT_EQ(table.reduce_ready().size(), 2u);
  table.launch_reduce(2);

  // Job 1 keeps one pending reduce after the first launch, so it stays.
  table.launch_reduce(1);
  ASSERT_EQ(table.reduce_ready().size(), 1u);
  EXPECT_EQ(table.reduce_ready().begin()->second->spec.id, 1);
  table.launch_reduce(1);
  EXPECT_TRUE(table.reduce_ready().empty());

  // Retirement (here via fail) erases any residual membership.
  table.requeue_running_reduce(1);
  EXPECT_EQ(table.reduce_ready().size(), 1u);
  table.fail_job(1, 9);
  EXPECT_TRUE(table.reduce_ready().empty());
}

TEST(JobTable, FindLocalMapUsesLocator) {
  JobTable table;
  table.add_job(make_job(1, 3, 1, /*first_block=*/100));
  const FakeLocator locator({101});
  const auto found = table.find_local_map(1, 0, locator);
  ASSERT_TRUE(found.has_value());
  const auto& rt = table.job(1);
  EXPECT_EQ(rt.spec.maps[rt.pending_maps[*found]].block, 101);
}

TEST(JobTable, FindLocalMapReturnsNulloptWhenNoneLocal) {
  JobTable table;
  table.add_job(make_job(1, 3, 1, 100));
  const FakeLocator locator({999});
  EXPECT_FALSE(table.find_local_map(1, 0, locator).has_value());
}

TEST(JobTable, FindAnyMapEmptyWhenAllLaunched) {
  JobTable table;
  table.add_job(make_job(1, 1, 1));
  EXPECT_TRUE(table.find_any_map(1).has_value());
  table.launch_map(1, 0, Locality::kNodeLocal);
  EXPECT_FALSE(table.find_any_map(1).has_value());
}

TEST(JobTable, CountersNeverUnderflow) {
  JobTable table;
  table.add_job(make_job(1, 1, 1));
  EXPECT_THROW(table.complete_map(1, 0), std::logic_error);
  EXPECT_THROW(table.complete_reduce(1, 0), std::logic_error);
  EXPECT_THROW(table.launch_map(1, 5, Locality::kNodeLocal), std::out_of_range);
}

TEST(JobTable, UnknownJobThrows) {
  JobTable table;
  EXPECT_THROW(table.job(9), std::out_of_range);
  EXPECT_FALSE(table.has_job(9));
}

TEST(JobTable, RunningTotalsTrackAllJobs) {
  JobTable table;
  table.add_job(make_job(1, 2, 1));
  table.add_job(make_job(2, 2, 1, 200));
  table.launch_map(1, 0, Locality::kNodeLocal);
  table.launch_map(2, 0, Locality::kOffRack);
  EXPECT_EQ(table.total_running(), 2u);
  EXPECT_EQ(table.total_pending_maps(), 2u);
  table.complete_map(1, 1);
  EXPECT_EQ(table.total_running(), 1u);
}

}  // namespace
}  // namespace dare::sched
