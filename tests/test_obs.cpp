// Unit tests for the observability layer: TraceCollector event recording,
// the Chrome-trace / CSV exporters, the time series, and the PhaseProfiler.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/invariant.h"
#include "obs/phase_profiler.h"
#include "obs/time_series.h"
#include "obs/trace_collector.h"
#include "obs/trace_event.h"
#include "obs/trace_export.h"

namespace dare::obs {
namespace {

TEST(TraceCollector, StampsEventsWithInjectedClock) {
  SimTime now = 0;
  TraceCollector trace([&now] { return now; });
  trace.job_submitted(7, 4, 2);
  now = from_seconds(1.5);
  trace.map_launched(3, 7, 0, 1, /*speculative=*/false);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].t, 0);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kJobSubmitted);
  EXPECT_EQ(trace.events()[0].detail, 4);  // maps
  EXPECT_EQ(trace.events()[1].t, from_seconds(1.5));
  EXPECT_EQ(trace.events()[1].kind, EventKind::kMapLaunched);
  EXPECT_EQ(trace.events()[1].node, 3);
  EXPECT_EQ(trace.events()[1].detail, 1);  // locality tier
}

TEST(TraceCollector, DefaultConstructedClockReadsZeroUntilRebound) {
  TraceCollector trace;
  trace.heartbeat(0);
  EXPECT_EQ(trace.events().back().t, 0);
  SimTime now = from_seconds(2.0);
  trace.set_clock([&now] { return now; });
  trace.heartbeat(1);
  EXPECT_EQ(trace.events().back().t, from_seconds(2.0));
  EXPECT_THROW(trace.set_clock(nullptr), std::invalid_argument);
}

TEST(TraceCollector, NullClockThrows) {
  EXPECT_THROW(TraceCollector(TraceCollector::Clock{}),
               std::invalid_argument);
}

TEST(TraceCollector, SpeculativeLaunchUsesItsOwnKind) {
  TraceCollector trace([] { return SimTime{0}; });
  trace.map_launched(1, 2, 3, 0, /*speculative=*/true);
  EXPECT_EQ(trace.events().back().kind, EventKind::kMapSpeculated);
}

TEST(TraceCollector, ClearDropsEventsAndSamples) {
  TraceCollector trace([] { return SimTime{0}; });
  trace.heartbeat(0);
  trace.series().add(TimeSeriesSample{});
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.series().size(), 0u);
}

#if DARE_INVARIANTS_ENABLED
TEST(TraceCollector, RecordFromSecondThreadTripsOwnerInvariant) {
  // The collector is deliberately lock-free (one simulation == one thread);
  // sharing one across sweep workers is a misuse tsan only catches under an
  // unlucky interleaving. The owner-pin invariant makes it deterministic.
  const auto prev = set_invariant_handler(
      [](const InvariantViolation& violation) -> void {
        throw std::logic_error(violation.message);
      });
  TraceCollector trace([] { return SimTime{0}; });
  trace.heartbeat(0);  // pins this thread as owner
  bool threw = false;
  std::thread other([&trace, &threw] {
    try {
      trace.heartbeat(1);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw);
  // clear() unpins: a fresh run may legally record from a new thread.
  trace.clear();
  std::thread fresh([&trace] { trace.heartbeat(2); });
  fresh.join();
  EXPECT_EQ(trace.size(), 1u);
  set_invariant_handler(prev);
}
#endif

TEST(TraceEvent, KindNamesAreStableAndExhaustive) {
  EXPECT_STREQ(kind_name(EventKind::kMapLaunched), "map_launched");
  EXPECT_STREQ(kind_name(EventKind::kReplicaSkipped), "replica_skipped");
  EXPECT_STREQ(kind_name(EventKind::kDelayWait), "delay_wait");
  for (int k = 0; k < static_cast<int>(EventKind::kKindCount); ++k) {
    EXPECT_STRNE(kind_name(static_cast<EventKind>(k)), "unknown");
  }
  EXPECT_STREQ(skip_reason_name(SkipReason::kCoinFailed), "coin_failed");
}

TEST(TraceEvent, TrackMapping) {
  EXPECT_EQ(kind_track(EventKind::kJobSubmitted), Track::kScheduler);
  EXPECT_EQ(kind_track(EventKind::kSchedulerDecision), Track::kScheduler);
  EXPECT_EQ(kind_track(EventKind::kHeartbeat), Track::kNameNode);
  EXPECT_EQ(kind_track(EventKind::kNodeDeclaredDead), Track::kNameNode);
  EXPECT_EQ(kind_track(EventKind::kMapLaunched), Track::kNode);
  EXPECT_EQ(kind_track(EventKind::kReplicaEvicted), Track::kNode);
}

/// A tiny hand-built trace: one job, one map that finishes, one map still
/// running at export time, a heartbeat, and one gauge sample.
TraceCollector make_sample_trace() {
  SimTime now = 0;
  TraceCollector trace;
  trace.set_clock([&now] { return now; });
  trace.job_submitted(1, 2, 0);
  trace.map_launched(0, 1, 0, 0, false);
  trace.map_launched(2, 1, 1, 2, false);  // never finishes
  now = from_seconds(1.0);
  trace.heartbeat(0);
  now = from_seconds(2.0);
  trace.map_finished(0, 1, 0, 2.0, false);
  trace.job_finished(1, 2.0);
  TimeSeriesSample s;
  s.t = from_seconds(1.0);
  s.pending_maps = 1;
  s.slot_utilization = 0.25;
  trace.series().add(s);
  return trace;
}

TEST(ChromeTraceExport, PairsLaunchAndFinishIntoSlices) {
  const auto trace = make_sample_trace();
  std::ostringstream out;
  write_chrome_trace(trace, out);
  const std::string json = out.str();
  // The completed map becomes an X slice of the full duration...
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":" + std::to_string(from_seconds(2.0))),
            std::string::npos);
  // ...the never-finished one is flushed as an instant, not lost.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Tracks: scheduler + namenode metadata plus both node tracks.
  EXPECT_NE(json.find("\"name\":\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"namenode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node-0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node-2\""), std::string::npos);
  // Gauges export as counter events.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"pending_maps\":1"), std::string::npos);
}

TEST(ChromeTraceExport, DeterministicAcrossCalls) {
  const auto trace = make_sample_trace();
  std::ostringstream a;
  std::ostringstream b;
  write_chrome_trace(trace, a);
  write_chrome_trace(trace, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(EventsCsvExport, OneRowPerEventWithHeader) {
  const auto trace = make_sample_trace();
  std::ostringstream out;
  write_events_csv(trace, out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("t_us,kind,node,job,task,detail,value\n", 0), 0u);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + trace.size());
  EXPECT_NE(csv.find("map_finished"), std::string::npos);
}

TEST(TimeSeries, CsvHasHeaderAndSeconds) {
  TimeSeries series;
  TimeSeriesSample s;
  s.t = from_seconds(2.5);
  s.pending_maps = 3;
  s.budget_occupancy = 0.5;
  series.add(s);
  std::ostringstream out;
  series.write_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("t_s,", 0), 0u);
  EXPECT_NE(csv.find("2.5,3,"), std::string::npos);
  EXPECT_NE(csv.find("0.5"), std::string::npos);
}

TEST(PhaseProfiler, AccumulatesPerPhase) {
  PhaseProfiler prof;
  prof.add(Phase::kSchedule, 100);
  prof.add(Phase::kSchedule, 50);
  prof.add(Phase::kChurn, 7);
  EXPECT_EQ(prof.total_ns(Phase::kSchedule), 150);
  EXPECT_EQ(prof.calls(Phase::kSchedule), 2u);
  EXPECT_EQ(prof.total_ns(Phase::kChurn), 7);
  EXPECT_EQ(prof.total_ns(Phase::kSampling), 0);
  prof.reset();
  EXPECT_EQ(prof.total_ns(Phase::kSchedule), 0);
  EXPECT_EQ(prof.calls(Phase::kSchedule), 0u);
}

TEST(PhaseProfiler, ScopeCreditsElapsedCpu) {
  PhaseProfiler prof;
  {
    PhaseScope scope(&prof, Phase::kEventLoop);
    // Burn a little CPU so the scope has something to measure.
    volatile double x = 1.0;
    for (int i = 0; i < 10000; ++i) x = x * 1.0000001 + 0.5;
  }
  EXPECT_EQ(prof.calls(Phase::kEventLoop), 1u);
  EXPECT_GE(prof.total_ns(Phase::kEventLoop), 0);
}

TEST(PhaseProfiler, NullScopeIsNoop) {
  PhaseScope scope(nullptr, Phase::kSchedule);  // must not crash or read clocks
  SUCCEED();
}

TEST(PhaseProfiler, ReportListsEveryPhase) {
  PhaseProfiler prof;
  prof.add(Phase::kHeartbeat, 1000);
  std::ostringstream out;
  prof.write_report(out);
  const std::string report = out.str();
  for (std::size_t p = 0; p < PhaseProfiler::kPhases; ++p) {
    EXPECT_NE(report.find(phase_name(static_cast<Phase>(p))),
              std::string::npos);
  }
}

TEST(PhaseProfiler, ProcessCpuClockIsMonotonic) {
  const auto a = PhaseProfiler::process_cpu_ns();
  volatile double x = 1.0;
  for (int i = 0; i < 10000; ++i) x = x * 1.0000001 + 0.5;
  const auto b = PhaseProfiler::process_cpu_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace dare::obs
