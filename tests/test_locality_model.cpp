#include "metrics/locality_model.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/experiment.h"

namespace dare::metrics {
namespace {

TEST(LocalityModel, HandComputedCases) {
  // One block, 3 replicas, 19 workers: 3/19.
  EXPECT_NEAR(expected_fifo_locality({1.0}, {3}, 19), 3.0 / 19.0, 1e-12);
  // Fully replicated block: probability 1 regardless of weight.
  EXPECT_NEAR(expected_fifo_locality({5.0}, {19}, 19), 1.0, 1e-12);
  // Replicas exceeding workers clamp to 1.
  EXPECT_NEAR(expected_fifo_locality({1.0}, {40}, 19), 1.0, 1e-12);
  // Weighted mixture: 0.75 * 1 + 0.25 * 0.5.
  EXPECT_NEAR(expected_fifo_locality({3.0, 1.0}, {4, 2}, 4), 0.875, 1e-12);
}

TEST(LocalityModel, ZeroWeightBlocksIgnored) {
  EXPECT_NEAR(expected_fifo_locality({0.0, 1.0}, {1, 2}, 4), 0.5, 1e-12);
}

TEST(LocalityModel, EdgeAndErrorCases) {
  EXPECT_EQ(expected_fifo_locality({}, {}, 4), 0.0);
  EXPECT_EQ(expected_fifo_locality({0.0}, {3}, 4), 0.0);
  EXPECT_THROW(expected_fifo_locality({1.0}, {1, 2}, 4),
               std::invalid_argument);
  EXPECT_THROW(expected_fifo_locality({1.0}, {1}, 0), std::invalid_argument);
  EXPECT_THROW(expected_fifo_locality({-1.0}, {1}, 4), std::invalid_argument);
  EXPECT_THROW(expected_fifo_locality({1.0}, {0}, 4), std::invalid_argument);
}

/// Cross-validation against the simulator: a measured FIFO run must land
/// between the model evaluated on initial replica counts (lower bound) and
/// on final replica counts (upper bound).
TEST(LocalityModel, BracketsSimulatedFifoRuns) {
  for (const cluster::PolicyKind policy :
       {cluster::PolicyKind::kVanilla, cluster::PolicyKind::kGreedyLru,
        cluster::PolicyKind::kElephantTrap}) {
    const auto wl = cluster::standard_wl1(20, 400, 6);
    cluster::Cluster sim(cluster::paper_defaults(
        net::cct_profile(20), cluster::SchedulerKind::kFifo, policy));
    const auto result = sim.run(wl);

    // Per-block access weights (each job access reads every block of its
    // file once) and initial/final replica counts.
    const auto counts = wl.file_access_counts();
    std::vector<double> weights;
    std::vector<std::size_t> initial;
    std::vector<std::size_t> final_counts;
    const auto& nn = sim.name_node();
    const auto files = nn.all_files();
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (BlockId bid : nn.file(files[i]).blocks) {
        weights.push_back(static_cast<double>(counts[i]));
        initial.push_back(3);
        final_counts.push_back(nn.locations(bid).size());
      }
    }
    const double lower =
        expected_fifo_locality(weights, initial, sim.worker_count());
    const double upper =
        expected_fifo_locality(weights, final_counts, sim.worker_count());

    // Tolerances: the freed-slot-is-uniform assumption is approximate (the
    // rotation and light-load intervals give slight extra locality), so
    // allow a margin around the band.
    EXPECT_GE(result.locality, lower - 0.08)
        << "policy " << static_cast<int>(policy);
    EXPECT_LE(result.locality, upper + 0.08)
        << "policy " << static_cast<int>(policy);
    if (policy == cluster::PolicyKind::kVanilla) {
      // No dynamic replication: the band collapses to a point estimate.
      EXPECT_NEAR(result.locality, lower, 0.1);
      EXPECT_NEAR(upper, lower, 1e-9);
    } else {
      EXPECT_GT(upper, lower);  // replication widened the band
    }
  }
}

}  // namespace
}  // namespace dare::metrics
