// The observability layer's core contract, enforced end-to-end:
//
//  1. Tracing only observes. Attaching a TraceCollector (and PhaseProfiler)
//     to a run must leave metrics::fingerprint bit-identical to the same
//     seeded run without them — for the CCT and EC2 profiles, and under
//     stochastic churn. A tracer that consumed an RNG draw, perturbed float
//     summation order, or extended the event horizon would show up here.
//
//  2. Traced runs are themselves deterministic: two same-seed runs export
//     byte-identical Chrome-trace JSON and events CSV (timestamps are
//     sim-time only; dare_lint bans wall clocks in src/obs).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/experiment.h"
#include "metrics/run_metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace_collector.h"
#include "obs/trace_export.h"

namespace dare::cluster {
namespace {

constexpr std::size_t kNodes = 10;
constexpr std::size_t kJobs = 60;

std::uint64_t untraced_digest(const ClusterOptions& options,
                              const workload::Workload& wl) {
  return metrics::fingerprint(run_once(options, wl));
}

std::uint64_t traced_digest(ClusterOptions options,
                            const workload::Workload& wl,
                            obs::TraceCollector* tracer,
                            obs::PhaseProfiler* profiler = nullptr) {
  options.tracer = tracer;
  options.profiler = profiler;
  return metrics::fingerprint(run_once(options, wl));
}

void expect_tracing_is_pure(const ClusterOptions& options) {
  const auto wl = standard_wl1(kNodes, kJobs);
  const auto bare = untraced_digest(options, wl);

  obs::TraceCollector tracer;
  obs::PhaseProfiler profiler;
  EXPECT_EQ(traced_digest(options, wl, &tracer, &profiler), bare)
      << "attaching the tracer changed the metrics fingerprint";
  EXPECT_GT(tracer.size(), 0u) << "tracer attached but saw no events";
}

TEST(TraceDeterminism, TracingDoesNotPerturbFingerprintCct) {
  expect_tracing_is_pure(paper_defaults(net::cct_profile(kNodes),
                                        SchedulerKind::kFair,
                                        PolicyKind::kElephantTrap));
}

TEST(TraceDeterminism, TracingDoesNotPerturbFingerprintEc2) {
  expect_tracing_is_pure(paper_defaults(net::ec2_profile(kNodes),
                                        SchedulerKind::kFifo,
                                        PolicyKind::kGreedyLru));
}

TEST(TraceDeterminism, TracingDoesNotPerturbFingerprintUnderChurn) {
  // Churn exercises the remaining emitters (node_failed, declared-dead,
  // rejoin, repair, attempt faults) — and is the likeliest place for an
  // accidental extra RNG draw to hide.
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kGreedyLru);
  options.faults.enabled = true;
  options.faults.mtbf_s = 80.0;
  options.faults.mttr_s = 20.0;
  options.faults.permanent_fraction = 0.2;
  options.faults.rack_correlation = 0.2;
  options.faults.task_failure_prob = 0.01;
  options.faults.min_live_workers = 4;
  options.rereplication_interval = from_seconds(2.0);
  expect_tracing_is_pure(options);
}

TEST(TraceDeterminism, SampledGaugesDoNotPerturbFingerprint) {
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.trace_sample_interval = from_seconds(1.0);
  const auto wl = standard_wl1(kNodes, kJobs);
  const auto bare = untraced_digest(options, wl);

  obs::TraceCollector tracer;
  EXPECT_EQ(traced_digest(options, wl, &tracer), bare)
      << "the gauge sampler changed the metrics fingerprint";
  EXPECT_GT(tracer.series().size(), 0u) << "sampler scheduled but never ran";
}

struct Export {
  std::string json;
  std::string events_csv;
  std::string series_csv;
  std::uint64_t digest = 0;
};

Export traced_export(const ClusterOptions& base,
                     const workload::Workload& wl) {
  auto options = base;
  obs::TraceCollector tracer;
  options.tracer = &tracer;
  Export e;
  e.digest = metrics::fingerprint(run_once(options, wl));
  std::ostringstream json;
  obs::write_chrome_trace(tracer, json);
  e.json = json.str();
  std::ostringstream csv;
  obs::write_events_csv(tracer, csv);
  e.events_csv = csv.str();
  std::ostringstream series;
  tracer.series().write_csv(series);
  e.series_csv = series.str();
  return e;
}

TEST(TraceDeterminism, SameSeedExportsAreByteIdentical) {
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.trace_sample_interval = from_seconds(1.0);
  const auto wl = standard_wl1(kNodes, kJobs);

  const auto first = traced_export(options, wl);
  const auto second = traced_export(options, wl);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.json, second.json)
      << "same seed, different Chrome-trace bytes";
  EXPECT_EQ(first.events_csv, second.events_csv)
      << "same seed, different events CSV";
  EXPECT_EQ(first.series_csv, second.series_csv)
      << "same seed, different time-series CSV";
  EXPECT_FALSE(first.json.empty());
  EXPECT_NE(first.events_csv.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace dare::cluster
