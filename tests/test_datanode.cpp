#include "storage/datanode.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/profile.h"

namespace dare::storage {
namespace {

BlockMeta blk(BlockId id, FileId file = 0, Bytes size = 128 * kMiB) {
  return BlockMeta{id, file, size};
}

class DataNodeTest : public ::testing::Test {
 protected:
  DataNodeTest() : node_(0, net::cct_profile().disk, rng_) {}
  Rng rng_{31};
  DataNode node_;
};

TEST_F(DataNodeTest, StaticBlocksAccumulate) {
  node_.add_static_block(blk(1));
  node_.add_static_block(blk(2));
  EXPECT_EQ(node_.static_bytes(), 2 * 128 * kMiB);
  EXPECT_TRUE(node_.has_static_block(1));
  EXPECT_TRUE(node_.has_visible_block(2));
  EXPECT_FALSE(node_.has_dynamic_block(1));
}

TEST_F(DataNodeTest, DuplicateStaticBlockThrows) {
  node_.add_static_block(blk(1));
  EXPECT_THROW(node_.add_static_block(blk(1)), std::logic_error);
}

TEST_F(DataNodeTest, DynamicInsertVisibleAndCounted) {
  EXPECT_TRUE(node_.insert_dynamic(blk(5)));
  EXPECT_TRUE(node_.has_dynamic_block(5));
  EXPECT_TRUE(node_.has_visible_block(5));
  EXPECT_EQ(node_.dynamic_bytes(), 128 * kMiB);
  EXPECT_EQ(node_.dynamic_insertions(), 1u);
}

TEST_F(DataNodeTest, DynamicInsertRefusesDuplicates) {
  node_.add_static_block(blk(1));
  EXPECT_FALSE(node_.insert_dynamic(blk(1)));  // already static
  EXPECT_TRUE(node_.insert_dynamic(blk(2)));
  EXPECT_FALSE(node_.insert_dynamic(blk(2)));  // already dynamic
  EXPECT_EQ(node_.dynamic_insertions(), 1u);
}

TEST_F(DataNodeTest, MarkForDeletionHidesAndReleasesBudget) {
  node_.insert_dynamic(blk(5));
  EXPECT_TRUE(node_.mark_for_deletion(5));
  EXPECT_FALSE(node_.has_visible_block(5));
  EXPECT_FALSE(node_.has_dynamic_block(5));
  EXPECT_EQ(node_.dynamic_bytes(), 0);
  EXPECT_EQ(node_.marked_count(), 1u);
  EXPECT_EQ(node_.dynamic_evictions(), 1u);
}

TEST_F(DataNodeTest, MarkedBlockStillOccupiesDiskUntilReclaim) {
  node_.insert_dynamic(blk(5));
  node_.mark_for_deletion(5);
  // The tombstoned replica is still physically present: re-insert refused.
  EXPECT_FALSE(node_.insert_dynamic(blk(5)));
  EXPECT_EQ(node_.reclaim_marked(), 1u);
  EXPECT_EQ(node_.marked_count(), 0u);
  EXPECT_TRUE(node_.insert_dynamic(blk(5)));
}

TEST_F(DataNodeTest, MarkNonexistentReturnsFalse) {
  EXPECT_FALSE(node_.mark_for_deletion(42));
  node_.add_static_block(blk(1));
  EXPECT_FALSE(node_.mark_for_deletion(1));  // statics are never evictable
}

TEST_F(DataNodeTest, DrainReportCarriesAdditionsOnce) {
  node_.insert_dynamic(blk(5));
  node_.insert_dynamic(blk(6));
  auto report = node_.drain_report();
  EXPECT_EQ(report.added.size(), 2u);
  EXPECT_TRUE(report.removed.empty());
  // Second drain is empty.
  report = node_.drain_report();
  EXPECT_TRUE(report.added.empty());
  EXPECT_TRUE(report.removed.empty());
}

TEST_F(DataNodeTest, DrainReportCancelsAddRemoveWithinInterval) {
  node_.insert_dynamic(blk(5));
  node_.mark_for_deletion(5);
  const auto report = node_.drain_report();
  EXPECT_TRUE(report.added.empty());
  EXPECT_TRUE(report.removed.empty());
}

TEST_F(DataNodeTest, DrainReportCarriesRemovalOfPreviouslyReported) {
  node_.insert_dynamic(blk(5));
  (void)node_.drain_report();  // addition reported
  node_.mark_for_deletion(5);
  const auto report = node_.drain_report();
  EXPECT_TRUE(report.added.empty());
  ASSERT_EQ(report.removed.size(), 1u);
  EXPECT_EQ(report.removed[0], 5);
}

TEST_F(DataNodeTest, DynamicBlocksListsLiveOnly) {
  node_.insert_dynamic(blk(5));
  node_.insert_dynamic(blk(6));
  node_.mark_for_deletion(5);
  const auto blocks = node_.dynamic_blocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], 6);
}

TEST_F(DataNodeTest, ReadDurationScalesWithBytes) {
  const SimDuration d1 = node_.read_duration(128 * kMiB);
  EXPECT_GT(d1, 0);
  // 128 MiB at ~157.8 MB/s is around 0.81 s.
  EXPECT_NEAR(to_seconds(d1), 0.81, 0.15);
  EXPECT_EQ(node_.read_duration(0), 0);
  EXPECT_THROW(node_.read_duration(-1), std::invalid_argument);
}

TEST_F(DataNodeTest, DiskSamplesWithinProfile) {
  const auto profile = net::cct_profile();
  for (int i = 0; i < 1000; ++i) {
    const double mbps = node_.sample_disk_mbps();
    EXPECT_GE(mbps, profile.disk.floor);
    EXPECT_LE(mbps, profile.disk.ceiling);
  }
}

TEST_F(DataNodeTest, MixedSizeBudgetAccounting) {
  node_.insert_dynamic(blk(1, 0, 10));
  node_.insert_dynamic(blk(2, 0, 20));
  node_.insert_dynamic(blk(3, 1, 30));
  EXPECT_EQ(node_.dynamic_bytes(), 60);
  node_.mark_for_deletion(2);
  EXPECT_EQ(node_.dynamic_bytes(), 40);
}

}  // namespace
}  // namespace dare::storage
