#include "workload/trace_io.h"

#include <gtest/gtest.h>

namespace dare::workload {
namespace {

TEST(TraceIo, RoundTripPreservesWorkload) {
  WorkloadOptions opts;
  opts.num_jobs = 50;
  opts.seed = 3;
  const auto original = make_wl2(opts);
  const auto text = workload_to_string(original);
  const auto parsed = workload_from_string(text);

  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.catalog_spec.block_size, original.catalog_spec.block_size);
  ASSERT_EQ(parsed.catalog.size(), original.catalog.size());
  for (std::size_t i = 0; i < parsed.catalog.size(); ++i) {
    EXPECT_EQ(parsed.catalog[i].blocks, original.catalog[i].blocks);
  }
  ASSERT_EQ(parsed.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < parsed.jobs.size(); ++i) {
    EXPECT_EQ(parsed.jobs[i].arrival, original.jobs[i].arrival);
    EXPECT_EQ(parsed.jobs[i].file_index, original.jobs[i].file_index);
    EXPECT_EQ(parsed.jobs[i].reduces, original.jobs[i].reduces);
    EXPECT_EQ(parsed.jobs[i].map_cpu, original.jobs[i].map_cpu);
    EXPECT_EQ(parsed.jobs[i].reduce_cpu, original.jobs[i].reduce_cpu);
    EXPECT_EQ(parsed.jobs[i].shuffle_bytes, original.jobs[i].shuffle_bytes);
  }
}

TEST(TraceIo, ParsesHandWrittenTrace) {
  const auto wl = workload_from_string(
      "# comment\n"
      "workload tiny\n"
      "blocksize 1048576\n"
      "file 2\n"
      "file 5\n"
      "job 1000 0 1 2000 3000 4096\n"
      "job 2000 1 2 2000 3000 8192\n");
  EXPECT_EQ(wl.name, "tiny");
  EXPECT_EQ(wl.catalog_spec.block_size, 1048576);
  ASSERT_EQ(wl.catalog.size(), 2u);
  EXPECT_EQ(wl.catalog[1].blocks, 5u);
  ASSERT_EQ(wl.jobs.size(), 2u);
  EXPECT_EQ(wl.jobs[1].file_index, 1u);
  EXPECT_EQ(wl.jobs[1].reduces, 2u);
}

TEST(TraceIo, MissingHeaderRejected) {
  EXPECT_THROW(workload_from_string("file 2\n"), std::invalid_argument);
}

TEST(TraceIo, NoFilesRejected) {
  EXPECT_THROW(workload_from_string("workload empty\n"),
               std::invalid_argument);
}

TEST(TraceIo, ForwardFileReferenceRejected) {
  EXPECT_THROW(workload_from_string("workload t\n"
                                    "job 0 0 1 1 1 1\n"
                                    "file 2\n"),
               std::invalid_argument);
}

TEST(TraceIo, MalformedRecordsRejected) {
  EXPECT_THROW(workload_from_string("workload t\nfile zero\n"),
               std::invalid_argument);
  EXPECT_THROW(workload_from_string("workload t\nfile 0\n"),
               std::invalid_argument);
  EXPECT_THROW(workload_from_string("workload t\nfile 1\njob 1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(workload_from_string("workload t\nfile 1\nbogus 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      workload_from_string("workload t\nfile 1\njob -5 0 1 1 1 1\n"),
      std::invalid_argument);
}

TEST(TraceIo, CommentsAndBlankLinesSkipped) {
  const auto wl = workload_from_string(
      "\n# full line comment\nworkload x\n\nfile 1  # trailing\n");
  EXPECT_EQ(wl.catalog.size(), 1u);
}

}  // namespace
}  // namespace dare::workload
