// Straggler & degraded-node subsystem tests: persistent degraded nodes and
// heavy-tailed task inflation on a forked RNG stream, progress-rate
// detection in the heartbeat path, budgeted proactive task cloning with
// first-finisher-wins, and graceful degradation of detected-slow nodes.
//
// Also the speculation/cloning attempt-accounting regression suite: a copy
// finishing the same tick as the original must neither double-count the
// completion nor leak a slot (the zero-noise configs below manufacture
// guaranteed same-tick ties).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "obs/trace_collector.h"

namespace dare::cluster {
namespace {

workload::Workload straggler_workload(std::size_t jobs = 100,
                                      std::uint64_t seed = 41) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 6;
  opts.catalog.large_max_blocks = 10;
  return workload::make_wl1(opts);
}

ClusterOptions base_options(SchedulerKind sched = SchedulerKind::kFifo) {
  return paper_defaults(net::cct_profile(10), sched, PolicyKind::kVanilla);
}

/// Straggler injection tuned so a ~10-node run sees several degrade
/// episodes and a fat tail of inflated tasks.
ClusterOptions injection_options(SchedulerKind sched = SchedulerKind::kFifo) {
  auto opts = base_options(sched);
  opts.stragglers.enabled = true;
  opts.stragglers.degrade_mtbf_s = 40.0;
  opts.stragglers.degrade_duration_s = 30.0;
  opts.stragglers.compute_slowdown = 4.0;
  opts.stragglers.disk_slowdown = 3.0;
  opts.stragglers.tail_prob = 0.15;
  opts.stragglers.tail_alpha = 1.2;
  opts.stragglers.tail_cap = 10.0;
  return opts;
}

/// Construction must reject the named field with a message naming it.
void expect_rejects(void (*mutate)(ClusterOptions&), const char* field) {
  auto opts = base_options();
  opts.stragglers.enabled = true;
  mutate(opts);
  try {
    Cluster cluster(opts);
    FAIL() << "expected invalid_argument for " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message \"" << e.what() << "\" does not name " << field;
  }
}

// --- parameter validation: one test per StragglerParams field -------------

TEST(StragglerValidation, RejectsNonPositiveDegradeMtbf) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.degrade_mtbf_s = 0.0; },
                 "StragglerParams.degrade_mtbf_s");
}

TEST(StragglerValidation, RejectsNonPositiveDegradeDuration) {
  expect_rejects(
      [](ClusterOptions& o) { o.stragglers.degrade_duration_s = -1.0; },
      "StragglerParams.degrade_duration_s");
}

TEST(StragglerValidation, RejectsDeflatingComputeSlowdown) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.compute_slowdown = 0.5; },
                 "StragglerParams.compute_slowdown");
}

TEST(StragglerValidation, RejectsDeflatingDiskSlowdown) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.disk_slowdown = 0.9; },
                 "StragglerParams.disk_slowdown");
}

TEST(StragglerValidation, RejectsOutOfRangeRackCorrelation) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.rack_correlation = 1.5; },
                 "StragglerParams.rack_correlation");
}

TEST(StragglerValidation, RejectsOutOfRangeTailProb) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.tail_prob = -0.1; },
                 "StragglerParams.tail_prob");
}

TEST(StragglerValidation, RejectsNonPositiveTailAlpha) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  expect_rejects([](ClusterOptions& o) { o.stragglers.tail_alpha = 0.0; },
                 "StragglerParams.tail_alpha");
  auto opts = base_options();
  opts.stragglers.tail_alpha = nan;  // NaN must fail the same check
  EXPECT_THROW(Cluster cluster(opts), std::invalid_argument);
}

TEST(StragglerValidation, RejectsTailCapAtOrBelowOne) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.tail_cap = 1.0; },
                 "StragglerParams.tail_cap");
}

TEST(StragglerValidation, RejectsNonPositiveTailSigma) {
  expect_rejects([](ClusterOptions& o) { o.stragglers.tail_sigma = 0.0; },
                 "StragglerParams.tail_sigma");
}

TEST(StragglerValidation, RejectsMitigationKnobsOutOfRange) {
  auto opts = base_options();
  opts.clone_budget_fraction = 1.5;
  EXPECT_THROW(Cluster c1(opts), std::invalid_argument);
  opts = base_options();
  opts.straggler_detect_ratio = 0.5;
  EXPECT_THROW(Cluster c2(opts), std::invalid_argument);
  opts = base_options();
  opts.straggler_detect_ewma_alpha = 0.0;
  EXPECT_THROW(Cluster c3(opts), std::invalid_argument);
  opts = base_options();
  opts.straggler_backoff = 0;
  EXPECT_THROW(Cluster c4(opts), std::invalid_argument);
}

// --- injection behavior ---------------------------------------------------

TEST(Stragglers, DisabledRunHasZeroStragglerCounters) {
  const auto result = run_once(base_options(), straggler_workload());
  EXPECT_EQ(result.degraded_onsets, 0u);
  EXPECT_EQ(result.degraded_recoveries, 0u);
  EXPECT_EQ(result.tail_inflations, 0u);
  EXPECT_EQ(result.stragglers_detected, 0u);
  EXPECT_EQ(result.clones_launched, 0u);
}

TEST(Stragglers, EnabledInjectsDegradationAndTails) {
  const auto wl = straggler_workload();
  const auto result = run_once(injection_options(), wl);
  EXPECT_GT(result.degraded_onsets, 0u);
  EXPECT_GT(result.tail_inflations, 0u);
  // Recoveries trail onsets by at most the episodes still open at run end.
  EXPECT_LE(result.degraded_recoveries, result.degraded_onsets);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_GT(jm.completion, jm.arrival);
}

TEST(Stragglers, DegradationSlowsTheRun) {
  const auto wl = straggler_workload();
  const auto quiet = run_once(base_options(), wl);
  const auto degraded = run_once(injection_options(), wl);
  EXPECT_GT(degraded.gmtt_s, quiet.gmtt_s);
}

TEST(Stragglers, RackCorrelatedOnsetsCoDegradePeers) {
  auto opts = injection_options();
  opts.stragglers.rack_correlation = 1.0;
  obs::TraceCollector tracer;
  opts.tracer = &tracer;
  Cluster cluster(opts);
  const auto result = cluster.run(straggler_workload(60));
  EXPECT_GT(result.degraded_onsets, 0u);
  std::size_t correlated = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == obs::EventKind::kNodeDegraded && ev.detail == 1) {
      ++correlated;
    }
  }
  EXPECT_GT(correlated, 0u);
}

TEST(Stragglers, LognormalTailVariantRuns) {
  auto opts = injection_options();
  opts.stragglers.tail_lognormal = true;
  opts.stragglers.tail_sigma = 1.0;
  const auto wl = straggler_workload(60);
  const auto result = run_once(opts, wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_GT(result.tail_inflations, 0u);
}

// --- detection & graceful degradation -------------------------------------

ClusterOptions detection_options(SchedulerKind sched = SchedulerKind::kFifo) {
  auto opts = injection_options(sched);
  // Long, severe episodes make degraded nodes stand out of the EWMA fast.
  opts.stragglers.degrade_duration_s = 120.0;
  opts.stragglers.compute_slowdown = 6.0;
  opts.stragglers.disk_slowdown = 4.0;
  opts.enable_straggler_detection = true;
  opts.straggler_detect_min_samples = 2;
  opts.straggler_detect_ratio = 1.6;
  opts.straggler_backoff = from_seconds(20.0);
  return opts;
}

TEST(StragglerDetection, FlagsSlowNodesFromObservedDurationsOnly) {
  obs::TraceCollector tracer;
  auto opts = detection_options();
  opts.tracer = &tracer;
  Cluster cluster(opts);
  const auto wl = straggler_workload(150);
  const auto result = cluster.run(wl);
  EXPECT_GT(result.stragglers_detected, 0u);
  for (const auto& ev : tracer.events()) {
    if (ev.kind == obs::EventKind::kStragglerDetected) {
      // The recorded EWMA ratio must clear the configured threshold.
      EXPECT_GE(ev.value, opts.straggler_detect_ratio);
    }
  }
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
}

TEST(StragglerDetection, BackoffExpiryReadmitsNodes) {
  auto opts = detection_options();
  // Short episodes + short backoff: a degraded node recovers while
  // sidelined and earns its way back.
  opts.stragglers.degrade_duration_s = 25.0;
  opts.straggler_backoff = from_seconds(10.0);
  const auto result = run_once(opts, straggler_workload(150));
  EXPECT_GT(result.stragglers_detected, 0u);
  EXPECT_GT(result.straggler_readmissions, 0u);
  // Re-admissions only ever follow detections.
  EXPECT_LE(result.straggler_readmissions, result.stragglers_detected);
}

TEST(StragglerDetection, DisabledMeansNoDetections) {
  auto opts = injection_options();
  opts.enable_straggler_detection = false;
  const auto result = run_once(opts, straggler_workload());
  EXPECT_EQ(result.stragglers_detected, 0u);
  EXPECT_EQ(result.straggler_readmissions, 0u);
}

// --- proactive task cloning -----------------------------------------------

ClusterOptions cloning_options(SchedulerKind sched = SchedulerKind::kFifo) {
  auto opts = injection_options(sched);
  opts.enable_task_cloning = true;
  opts.clone_budget_fraction = 0.2;
  return opts;
}

TEST(Cloning, DisabledMeansNoClones) {
  const auto result = run_once(injection_options(), straggler_workload());
  EXPECT_EQ(result.clones_launched, 0u);
  EXPECT_EQ(result.clone_wins, 0u);
  EXPECT_EQ(result.clones_killed, 0u);
}

TEST(Cloning, EveryCloneTerminallyWinsOrIsKilled) {
  const auto wl = straggler_workload(150);
  const auto result = run_once(cloning_options(), wl);
  EXPECT_GT(result.clones_launched, 0u);
  EXPECT_EQ(result.clone_wins + result.clones_killed, result.clones_launched);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
}

TEST(Cloning, AccountingBalancesUnderChurn) {
  auto opts = cloning_options(SchedulerKind::kFair);
  opts.faults.enabled = true;
  opts.faults.mtbf_s = 80.0;
  opts.faults.mttr_s = 20.0;
  opts.faults.permanent_fraction = 0.2;
  opts.faults.task_failure_prob = 0.01;
  opts.faults.min_live_workers = 4;
  opts.rereplication_interval = from_seconds(2.0);
  const auto wl = straggler_workload(150);
  const auto result = run_once(opts, wl);
  // Node deaths, zombie attempts, and job kills must all return the clone
  // budget: the ledger still balances exactly.
  EXPECT_EQ(result.clone_wins + result.clones_killed, result.clones_launched);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
}

TEST(Cloning, WorksUnderBothSchedulers) {
  const auto wl = straggler_workload(120);
  for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    const auto result = run_once(cloning_options(sched), wl);
    EXPECT_GT(result.clones_launched, 0u) << scheduler_name(sched);
    EXPECT_EQ(result.clone_wins + result.clones_killed,
              result.clones_launched)
        << scheduler_name(sched);
    EXPECT_EQ(result.jobs.size(), wl.jobs.size()) << scheduler_name(sched);
  }
}

TEST(Cloning, JobSizeFilterOnlyClonesSmallJobs) {
  // With clone_job_max_maps = 1, every clone must belong to a 1-map job.
  // The trace records each job's map count at submission (kJobSubmitted
  // detail), so the filter is auditable from the event stream alone.
  obs::TraceCollector tracer;
  auto opts = cloning_options();
  opts.clone_job_max_maps = 1;
  opts.tracer = &tracer;
  Cluster cluster(opts);
  cluster.run(straggler_workload(120));
  std::map<JobId, std::int64_t> maps_of;
  std::size_t clones = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == obs::EventKind::kJobSubmitted) {
      maps_of[ev.job] = ev.detail;
    } else if (ev.kind == obs::EventKind::kCloneLaunched) {
      ++clones;
      EXPECT_EQ(maps_of.at(ev.job), 1) << "clone in a multi-map job";
    }
  }
  EXPECT_GT(clones, 0u);
}

TEST(Cloning, MitigatesHeavyTailedStragglersUnderSlack) {
  // The headline claim, in miniature (the full sweep lives in
  // bench_cloning): when the cluster has slack, hedging launches with
  // budgeted clones clips the heavy tail and shortens the geometric-mean
  // turnaround. (Under saturation clones steal slots from queued work —
  // the sweep quantifies that regime too.)
  workload::WorkloadOptions wopts;
  wopts.num_jobs = 120;
  wopts.seed = 41;
  wopts.catalog.small_files = 20;
  wopts.catalog.large_files = 2;
  wopts.small_interarrival_s *= 4.0;  // sparse arrivals -> idle slots
  wopts.burst_interarrival_s *= 4.0;
  const auto wl = workload::make_wl1(wopts);

  auto slow = base_options();
  slow.stragglers.enabled = true;
  slow.stragglers.degrade_mtbf_s = 200.0;
  slow.stragglers.degrade_duration_s = 40.0;
  slow.stragglers.tail_prob = 0.3;
  slow.stragglers.tail_alpha = 1.1;
  slow.stragglers.tail_cap = 10.0;
  auto hedged = slow;
  hedged.enable_task_cloning = true;
  hedged.clone_budget_fraction = 0.5;
  const auto r_slow = run_once(slow, wl);
  const auto r_hedged = run_once(hedged, wl);
  EXPECT_GT(r_hedged.clones_launched, 0u);
  EXPECT_LT(r_hedged.gmtt_s, r_slow.gmtt_s);
}

TEST(Cloning, DeterministicAcrossRuns) {
  auto opts = cloning_options(SchedulerKind::kFair);
  opts.enable_straggler_detection = true;
  const auto wl = straggler_workload(100);
  const auto r1 = run_once(opts, wl);
  const auto r2 = run_once(opts, wl);
  EXPECT_EQ(r1.clones_launched, r2.clones_launched);
  EXPECT_EQ(r1.clone_wins, r2.clone_wins);
  EXPECT_EQ(r1.stragglers_detected, r2.stragglers_detected);
  EXPECT_DOUBLE_EQ(r1.gmtt_s, r2.gmtt_s);
  EXPECT_DOUBLE_EQ(r1.clone_wasted_work_s, r2.clone_wasted_work_s);
}

// --- same-tick tie regression (speculation/cloning attempt accounting) ----

/// Zero-noise physics: deterministic disk (no jitter, no bursts), no
/// stragglers, homogeneous nodes. Two block-local attempts of the same task
/// then have *identical* durations, so a clone launched in the same event
/// as its original finishes in the same tick — a guaranteed structural tie.
ClusterOptions zero_noise_cloning() {
  auto opts = base_options();
  opts.profile.disk.stddev = 0.0;
  opts.profile.disk.burst_probability = 0.0;
  opts.enable_task_cloning = true;
  opts.clone_budget_fraction = 1.0;
  return opts;
}

TEST(SameTickTie, CloneFinishingWithOriginalNeitherDoubleCountsNorLeaks) {
  obs::TraceCollector tracer;
  auto opts = zero_noise_cloning();
  opts.tracer = &tracer;
  Cluster cluster(opts);
  const auto wl = straggler_workload(80);
  const auto result = cluster.run(wl);

  // The run must actually exercise the tie: at least one clone was killed
  // in the very tick its original finished.
  std::size_t ties = 0;
  for (const auto& kill : tracer.events()) {
    if (kill.kind != obs::EventKind::kCloneKilled) continue;
    for (const auto& fin : tracer.events()) {
      if (fin.kind == obs::EventKind::kMapFinished && fin.t == kill.t &&
          fin.job == kill.job && fin.task == kill.task) {
        ++ties;
        break;
      }
    }
  }
  EXPECT_GT(ties, 0u) << "zero-noise run produced no same-tick ties";

  // No double-count: every job completed exactly its own tasks.
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_FALSE(jm.failed);
  EXPECT_EQ(result.clone_wins + result.clones_killed, result.clones_launched);
  // No slot leak: Cluster::validate() (invariant builds) checks every live
  // node has all slots back once the last job finishes; rerunning the same
  // config must also reproduce identical results (a leaked slot would warp
  // the second half of the schedule).
  const auto again = run_once(zero_noise_cloning(), wl);
  EXPECT_DOUBLE_EQ(again.gmtt_s, result.gmtt_s);
}

TEST(SameTickTie, SpeculativeAccountingSurvivesZeroNoiseRace) {
  // Speculation flavor of the same audit: zero-noise disks plus statically
  // slow nodes make backup-vs-original finishes land arbitrarily close
  // (including same-tick when the slowdown, threshold, and tick interval
  // line up). Whatever the tie count, completions and slots must balance.
  auto opts = base_options();
  opts.profile.disk.stddev = 0.0;
  opts.profile.disk.burst_probability = 0.0;
  opts.profile.straggler_fraction = 0.3;
  opts.profile.straggler_slowdown = 2.0;
  opts.enable_speculation = true;
  const auto wl = straggler_workload(120);
  const auto result = run_once(opts, wl);
  EXPECT_GT(result.speculative_launched, 0u);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_FALSE(jm.failed);
  // Wins plus kills never exceed launches (a backup whose original wins is
  // killed; a backup that wins kills the original, which was not a backup).
  EXPECT_LE(result.speculative_wins + result.speculative_killed,
            result.speculative_launched + result.speculative_killed);
  const auto again = run_once(opts, wl);
  EXPECT_DOUBLE_EQ(again.gmtt_s, result.gmtt_s);
  EXPECT_EQ(again.speculative_wins, result.speculative_wins);
}

// --- full-stack smoke ------------------------------------------------------

TEST(Stragglers, FullMitigationStackCompletesEverything) {
  auto opts = detection_options(SchedulerKind::kFair);
  opts.policy = PolicyKind::kElephantTrap;
  opts.enable_task_cloning = true;
  opts.clone_budget_fraction = 0.15;
  opts.enable_speculation = true;
  const auto wl = straggler_workload(150);
  const auto result = run_once(opts, wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_GT(jm.completion, jm.arrival);
  EXPECT_EQ(result.clone_wins + result.clones_killed, result.clones_launched);
  EXPECT_GT(result.dynamic_replicas_created, 0u);
}

}  // namespace
}  // namespace dare::cluster
