#include "metrics/run_metrics.h"

#include <gtest/gtest.h>

namespace dare::metrics {
namespace {

JobMetrics job(JobId id, double arrival_s, double completion_s,
               std::size_t maps, std::size_t local,
               double dedicated_s) {
  JobMetrics jm;
  jm.id = id;
  jm.arrival = from_seconds(arrival_s);
  jm.completion = from_seconds(completion_s);
  jm.maps = maps;
  jm.local_maps = local;
  jm.dedicated_runtime_s = dedicated_s;
  return jm;
}

TEST(JobMetrics, DerivedQuantities) {
  const auto jm = job(1, 10.0, 30.0, 4, 3, 10.0);
  EXPECT_DOUBLE_EQ(jm.turnaround_s(), 20.0);
  EXPECT_DOUBLE_EQ(jm.slowdown(), 2.0);
  EXPECT_DOUBLE_EQ(jm.locality(), 0.75);
}

TEST(JobMetrics, ZeroGuards) {
  JobMetrics jm;
  EXPECT_EQ(jm.locality(), 0.0);
  EXPECT_EQ(jm.slowdown(), 0.0);
}

TEST(Finalize, AggregatesAcrossJobs) {
  RunResult result;
  result.jobs.push_back(job(1, 0.0, 10.0, 2, 2, 5.0));   // TT 10, sd 2
  result.jobs.push_back(job(2, 0.0, 40.0, 2, 0, 10.0));  // TT 40, sd 4
  result.dynamic_replicas_created = 6;
  finalize(result, {1.0, 2.0, 3.0});

  EXPECT_DOUBLE_EQ(result.locality, 0.5);  // 2 local of 4 maps
  EXPECT_NEAR(result.gmtt_s, 20.0, 1e-9);  // sqrt(10*40)
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 3.0);
  EXPECT_DOUBLE_EQ(result.mean_map_time_s, 2.0);
  EXPECT_DOUBLE_EQ(result.blocks_created_per_job, 3.0);
}

TEST(Finalize, CountsJobsSkippedFromGmtt) {
  // A job whose completion equals its arrival has zero turnaround: it
  // cannot enter the log-domain geometric mean and used to vanish without
  // a trace, silently inflating GMTT. The skip count must surface it.
  RunResult result;
  result.jobs.push_back(job(1, 5.0, 5.0, 1, 1, 1.0));   // TT 0 -> skipped
  result.jobs.push_back(job(2, 0.0, 10.0, 1, 1, 5.0));  // TT 10
  finalize(result, {1.0});
  EXPECT_EQ(result.gmtt_skipped_jobs, 1u);
  EXPECT_NEAR(result.gmtt_s, 10.0, 1e-9);  // only job 2 enters the mean

  RunResult clean;
  clean.jobs.push_back(job(1, 0.0, 10.0, 1, 1, 5.0));
  finalize(clean, {1.0});
  EXPECT_EQ(clean.gmtt_skipped_jobs, 0u);
}

TEST(Fingerprint, SkippedJobsChangeDigestOnlyWhenPresent) {
  // Digest-compatibility contract: runs with no skipped jobs keep the
  // digest they had before the field existed (the committed BENCH_PR3.json
  // baselines), while a nonzero skip count must be visible in the digest.
  RunResult a;
  a.jobs.push_back(job(1, 0.0, 10.0, 1, 1, 5.0));
  finalize(a, {1.0});
  ASSERT_EQ(a.gmtt_skipped_jobs, 0u);
  const auto base = fingerprint(a);

  RunResult b = a;
  b.gmtt_skipped_jobs = 2;  // forced: same metrics, nonzero skip count
  EXPECT_NE(fingerprint(b), base);
  b.gmtt_skipped_jobs = 0;
  EXPECT_EQ(fingerprint(b), base);
}

TEST(Finalize, EmptyRunIsSafe) {
  RunResult result;
  finalize(result, std::vector<double>{});
  EXPECT_EQ(result.locality, 0.0);
  EXPECT_EQ(result.gmtt_s, 0.0);
  EXPECT_EQ(result.mean_slowdown, 0.0);
  EXPECT_EQ(result.blocks_created_per_job, 0.0);
}

TEST(PopularityIndex, WeightsSizeByPopularity) {
  const double pi =
      popularity_index({100, 200}, {2.0, 0.5});
  EXPECT_DOUBLE_EQ(pi, 100 * 2.0 + 200 * 0.5);
}

TEST(PopularityIndex, SizeMismatchThrows) {
  EXPECT_THROW(popularity_index({100}, {1.0, 2.0}), std::invalid_argument);
}

TEST(PopularityIndex, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(popularity_index({}, {}), 0.0);
}

}  // namespace
}  // namespace dare::metrics
